//! Adversarial snapshot-loading tests: every way a file can be broken
//! must surface as a structured [`SnapshotError`], never a panic, hang,
//! or out-of-bounds read.
//!
//! The strategy is brute force where it matters: build a known-good
//! snapshot, then derive broken variants (truncations at every
//! structural boundary, bit flips in every header field, corrupted
//! section bytes) and assert the loader's verdict on each.

use gapbs_graph::snapshot::{self, LoadOptions, SnapshotContents};
use gapbs_graph::{gen, Compression, Graph, GraphError, Snapshot, SnapshotError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gapsnap-robust-{}-{tag}-{id}.gsnap",
        std::process::id()
    ))
}

/// A valid snapshot's bytes plus its path (callers mutate and rewrite).
fn good_snapshot(tag: &str, compression: Compression) -> (PathBuf, Vec<u8>) {
    let graph = gen::kron(8, 8, 0x5eed);
    let path = tmp_path(tag);
    snapshot::write(
        &path,
        &SnapshotContents::graph_only(&graph, 99),
        compression,
    )
    .expect("writing a valid snapshot");
    let bytes = std::fs::read(&path).expect("reading it back");
    (path, bytes)
}

fn open_bytes(path: &PathBuf, bytes: &[u8]) -> Result<Snapshot, GraphError> {
    std::fs::write(path, bytes).expect("rewriting variant");
    Snapshot::open(path)
}

fn expect_snapshot_error(result: Result<Snapshot, GraphError>, what: &str) -> SnapshotError {
    match result {
        Err(GraphError::Snapshot(e)) => e,
        Ok(_) => panic!("{what}: loader accepted a broken file"),
        Err(other) => panic!("{what}: expected a snapshot error, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_structural_boundary_is_structured() {
    let (path, bytes) = good_snapshot("trunc", Compression::Never);
    // Probe a spread of prefix lengths: inside the header, inside the
    // section table, at section boundaries, one byte short of complete.
    let probes = [
        0,
        1,
        7,
        8,
        16,
        63,
        64,
        80,
        127,
        128,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for &len in &probes {
        if len >= bytes.len() {
            continue;
        }
        let e = expect_snapshot_error(
            open_bytes(&path, &bytes[..len]),
            &format!("truncation to {len} bytes"),
        );
        assert!(
            matches!(
                e,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Malformed { .. }
            ),
            "truncation to {len} gave unexpected error {e:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_garbage_files_are_rejected() {
    let path = tmp_path("garbage");
    let e = expect_snapshot_error(open_bytes(&path, b""), "empty file");
    assert!(matches!(e, SnapshotError::Truncated { .. }));

    let e = expect_snapshot_error(
        open_bytes(&path, &[0xabu8; 4096]),
        "4 KiB of uniform garbage",
    );
    assert!(matches!(e, SnapshotError::BadMagic { .. }));

    // A text file (the classic wrong-path mistake) long enough to pass
    // the length check and reach the magic comparison.
    let mut text = Vec::new();
    for u in 0..40 {
        text.extend_from_slice(format!("{u} {}\n", u + 1).as_bytes());
    }
    let e = expect_snapshot_error(open_bytes(&path, &text), "edge-list text");
    assert!(matches!(e, SnapshotError::BadMagic { .. }));
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_magic_and_wrong_version_are_distinguished() {
    let (path, bytes) = good_snapshot("magic", Compression::Never);

    let mut b = bytes.clone();
    b[0] ^= 0xff;
    let e = expect_snapshot_error(open_bytes(&path, &b), "flipped magic byte");
    assert!(matches!(e, SnapshotError::BadMagic { .. }));

    // A future format version must be refused with both versions named,
    // even though the rest of the file is plausible. (The header
    // checksum also covers the version; patch it so the version check
    // itself is what fires.)
    let mut b = bytes.clone();
    b[8] = 0x2a;
    patch_header_checksum(&mut b);
    let e = expect_snapshot_error(open_bytes(&path, &b), "future version");
    match e {
        SnapshotError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 0x2a);
            assert_eq!(supported, snapshot::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Recomputes the header checksum after a deliberate header edit, so
/// tests can reach the checks *behind* the checksum.
fn patch_header_checksum(bytes: &mut [u8]) {
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = 64 + section_count * 32;
    let mut covered = Vec::with_capacity(table_end - 8);
    covered.extend_from_slice(&bytes[..56]);
    covered.extend_from_slice(&bytes[64..table_end]);
    let sum = snapshot::section_checksum(&covered);
    bytes[56..64].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_single_byte_flip_in_the_header_is_caught() {
    let (path, bytes) = good_snapshot("hdrflip", Compression::Never);
    for pos in 0..64 {
        let mut b = bytes.clone();
        b[pos] ^= 0x01;
        expect_snapshot_error(open_bytes(&path, &b), &format!("header byte {pos} flipped"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn section_payload_corruption_is_a_checksum_mismatch() {
    for compression in [Compression::Never, Compression::Always] {
        let (path, bytes) = good_snapshot("payload", compression);
        // Flip one byte in each quarter of the payload area.
        let payload_start = 64 + 32 * 4; // conservative: past any table
        for frac in 1..4 {
            let mut b = bytes.clone();
            let pos = payload_start + (b.len() - payload_start) * frac / 4;
            b[pos] ^= 0x10;
            let e = expect_snapshot_error(
                open_bytes(&path, &b),
                &format!("payload byte {pos} flipped ({compression:?})"),
            );
            assert!(
                matches!(
                    e,
                    SnapshotError::ChecksumMismatch { .. } | SnapshotError::Malformed { .. }
                ),
                "payload corruption gave {e:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn implausible_counts_are_malformed_not_allocated() {
    let (path, bytes) = good_snapshot("counts", Compression::Never);
    // Claim 2^60 vertices: the loader must refuse before attempting any
    // allocation or offset arithmetic.
    let mut b = bytes.clone();
    b[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
    patch_header_checksum(&mut b);
    let e = expect_snapshot_error(open_bytes(&path, &b), "2^60 vertices");
    assert!(matches!(e, SnapshotError::Malformed { .. }), "got {e:?}");

    // Unknown flag bits must not be silently ignored.
    let mut b = bytes.clone();
    b[11] |= 0x80;
    patch_header_checksum(&mut b);
    let e = expect_snapshot_error(open_bytes(&path, &b), "unknown flags");
    assert!(matches!(e, SnapshotError::Malformed { .. }), "got {e:?}");

    // An offset width that is neither 4 nor 8.
    let mut b = bytes.clone();
    b[10] = 3;
    patch_header_checksum(&mut b);
    let e = expect_snapshot_error(open_bytes(&path, &b), "width 3");
    assert!(matches!(e, SnapshotError::Malformed { .. }), "got {e:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_width_read_is_a_structured_error_not_a_reinterpretation() {
    let graph = gen::kron(7, 6, 11);
    let path = tmp_path("width");
    snapshot::write(
        &path,
        &SnapshotContents::graph_only(&graph, 0),
        Compression::Never,
    )
    .expect("write narrow");
    let snap = Snapshot::open(&path).expect("open");
    match snap.graph::<usize>() {
        Err(GraphError::Snapshot(SnapshotError::WidthMismatch { stored, requested })) => {
            assert_eq!(stored, 4);
            assert_eq!(requested, "usize");
        }
        other => panic!("expected WidthMismatch, got {other:?}"),
    }
    // Bundle loads hit the same guard.
    match snap.bundle_in::<usize>(None) {
        Err(GraphError::Snapshot(SnapshotError::WidthMismatch { .. })) => {}
        other => panic!("expected WidthMismatch from bundle, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_bundle_sections_are_named() {
    // A graph-only snapshot cannot serve a bundle: the loader must name
    // the first missing section rather than panic on absent data.
    let graph = gen::kron(7, 6, 12);
    let path = tmp_path("missing");
    snapshot::write(
        &path,
        &SnapshotContents::graph_only(&graph, 0),
        Compression::Never,
    )
    .expect("write");
    let snap = Snapshot::open(&path).expect("open");
    match snap.bundle_in::<u32>(None) {
        Err(GraphError::Snapshot(SnapshotError::MissingSection { section })) => {
            assert!(!section.is_empty());
        }
        other => panic!("expected MissingSection, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn compressed_stream_corruption_fails_decode_not_process() {
    // Corrupt the varint stream but fix up the checksum, simulating a
    // hostile well-checksummed file: the validated decode must reject
    // it. (Byte 0x00 runs of the stream decode to in-range values, so
    // target bytes near the end where row framing breaks.)
    let graph = gen::kron(8, 8, 13);
    let path = tmp_path("hostile");
    snapshot::write(
        &path,
        &SnapshotContents::graph_only(&graph, 0),
        Compression::Always,
    )
    .expect("write");
    let mut bytes = std::fs::read(&path).expect("read");

    // Find the out_targets section row (kind 2) in the table and its
    // stored checksum slot.
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut target_row = None;
    for i in 0..section_count {
        let row = 64 + i * 32;
        let kind = u32::from_le_bytes(bytes[row..row + 4].try_into().unwrap());
        if kind == 2 {
            target_row = Some(row);
        }
    }
    let row = target_row.expect("out_targets section present");
    let off = u64::from_le_bytes(bytes[row + 8..row + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[row + 16..row + 24].try_into().unwrap()) as usize;

    // Truncate the final varint mid-sequence by setting its
    // continuation bit, then re-checksum section and header.
    bytes[off + len - 1] |= 0x80;
    let sum = snapshot::section_checksum(&bytes[off..off + len]);
    bytes[row + 24..row + 32].copy_from_slice(&sum.to_le_bytes());
    patch_header_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("rewrite");

    let snap = Snapshot::open(&path).expect("checksums now match");
    match snap.graph::<u32>() {
        Err(GraphError::Snapshot(SnapshotError::Malformed { .. })) => {}
        Err(other) => panic!("expected Malformed from decode, got {other:?}"),
        Ok(_) => panic!("hostile varint stream decoded successfully"),
    }
    std::fs::remove_file(&path).ok();
}

/// Finds the section-table row for `kind`, returning `(row_offset,
/// payload_offset, payload_len)`.
fn find_section(bytes: &[u8], kind: u32) -> (usize, usize, usize) {
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..section_count {
        let row = 64 + i * 32;
        if u32::from_le_bytes(bytes[row..row + 4].try_into().unwrap()) == kind {
            let off = u64::from_le_bytes(bytes[row + 8..row + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[row + 16..row + 24].try_into().unwrap()) as usize;
            return (row, off, len);
        }
    }
    panic!("section kind {kind} not present");
}

/// Recomputes a tampered section's checksum plus the header checksum,
/// simulating a hostile file that is internally checksum-consistent.
fn reseal(bytes: &mut [u8], row: usize, off: usize, len: usize) {
    let sum = snapshot::section_checksum(&bytes[off..off + len]);
    bytes[row + 24..row + 32].copy_from_slice(&sum.to_le_bytes());
    patch_header_checksum(bytes);
}

#[test]
fn non_monotone_offsets_fail_structurally_on_default_loads() {
    // A checksum-consistent file with offsets[k] > offsets[k + 1] used
    // to reach degree arithmetic and the parallel decoder's unsafe
    // disjoint writes; the default (non-paranoid) load must reject it
    // with a structured error under both adjacency encodings.
    for compression in [Compression::Never, Compression::Always] {
        let (path, mut bytes) = good_snapshot("nonmono", compression);
        let (row, off, len) = find_section(&bytes, 1); // out_offsets
        let offsets: Vec<u32> = bytes[off..off + len]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // Swap an interior increasing pair: first stays 0 and last
        // still matches the header's arc count, so only the new
        // monotonicity check can catch the file.
        let k = (1..offsets.len() - 2)
            .find(|&k| offsets[k] < offsets[k + 1])
            .expect("kron graph has an interior increasing offset pair");
        bytes[off + k * 4..off + k * 4 + 4].copy_from_slice(&offsets[k + 1].to_le_bytes());
        bytes[off + (k + 1) * 4..off + (k + 1) * 4 + 4].copy_from_slice(&offsets[k].to_le_bytes());
        reseal(&mut bytes, row, off, len);
        std::fs::write(&path, &bytes).expect("rewrite");

        let snap = Snapshot::open(&path).expect("checksums are consistent");
        match snap.graph::<u32>() {
            Err(GraphError::Snapshot(SnapshotError::Malformed { message })) => {
                assert!(message.contains("monotone"), "message: {message}");
            }
            other => panic!("({compression:?}) expected Malformed, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn out_of_range_raw_target_fails_structurally_on_default_loads() {
    // Kernels index (and some unsafely write) per-vertex arrays by
    // target id, so a checksum-consistent raw section holding an
    // out-of-range id must fail the default load, not flow downstream.
    let (path, mut bytes) = good_snapshot("oobtarget", Compression::Never);
    let (row, off, len) = find_section(&bytes, 2); // out_targets
    bytes[off..off + 4].copy_from_slice(&(1u32 << 20).to_le_bytes());
    reseal(&mut bytes, row, off, len);
    std::fs::write(&path, &bytes).expect("rewrite");

    let snap = Snapshot::open(&path).expect("checksums are consistent");
    match snap.graph::<u32>() {
        Err(GraphError::Snapshot(SnapshotError::Malformed { message })) => {
            assert!(message.contains("out of range"), "message: {message}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_monotone_compressed_row_index_fails_decode_not_process() {
    // Scramble the compressed section's row byte-index (blo > bhi for
    // some row) while keeping its first/last sentinels: the validated
    // decode must reject the file rather than slice out of bounds.
    let (path, mut bytes) = good_snapshot("rowindex", Compression::Always);
    let (row, off, len) = find_section(&bytes, 2); // out_targets (varint)
    let n_plus_1 = {
        let n = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        n + 1
    };
    let starts: Vec<u64> = bytes[off..off + n_plus_1 * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let k = (1..starts.len() - 2)
        .find(|&k| starts[k] < starts[k + 1])
        .expect("some row has bytes");
    bytes[off + k * 8..off + k * 8 + 8].copy_from_slice(&starts[k + 1].to_le_bytes());
    bytes[off + (k + 1) * 8..off + (k + 1) * 8 + 8].copy_from_slice(&starts[k].to_le_bytes());
    reseal(&mut bytes, row, off, len);
    std::fs::write(&path, &bytes).expect("rewrite");

    let snap = Snapshot::open(&path).expect("checksums are consistent");
    match snap.graph::<u32>() {
        Err(GraphError::Snapshot(SnapshotError::Malformed { .. })) => {}
        other => panic!("expected Malformed from decode, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn paranoid_mode_catches_semantically_invalid_but_well_checksummed_files() {
    // Swap two adjacent targets in a raw section (breaking row
    // sortedness), then fix the checksums: the default checksum-only
    // load accepts the file, the paranoid load rejects it. This is the
    // exact trust boundary docs/SNAPSHOT.md documents.
    let graph = gen::kron(8, 8, 14);
    let path = tmp_path("semantic");
    snapshot::write(
        &path,
        &SnapshotContents::graph_only(&graph, 0),
        Compression::Never,
    )
    .expect("write");
    let mut bytes = std::fs::read(&path).expect("read");

    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut target_row = None;
    for i in 0..section_count {
        let row = 64 + i * 32;
        let kind = u32::from_le_bytes(bytes[row..row + 4].try_into().unwrap());
        if kind == 2 {
            target_row = Some(row);
        }
    }
    let row = target_row.expect("out_targets present");
    let off = u64::from_le_bytes(bytes[row + 8..row + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[row + 16..row + 24].try_into().unwrap()) as usize;

    // Locate a vertex with degree ≥ 2 through the offsets section and
    // swap its first two targets — guaranteed to break within-row
    // sortedness (a boundary-straddling swap could stay valid).
    let mut offsets_row = None;
    for i in 0..section_count {
        let r = 64 + i * 32;
        if u32::from_le_bytes(bytes[r..r + 4].try_into().unwrap()) == 1 {
            offsets_row = Some(r);
        }
    }
    let or = offsets_row.expect("out_offsets present");
    let ooff = u64::from_le_bytes(bytes[or + 8..or + 16].try_into().unwrap()) as usize;
    let olen = u64::from_le_bytes(bytes[or + 16..or + 24].try_into().unwrap()) as usize;
    let offsets: Vec<u32> = bytes[ooff..ooff + olen]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let fat = (0..offsets.len() - 1)
        .find(|&u| offsets[u + 1] - offsets[u] >= 2)
        .expect("kron graph has a vertex of degree ≥ 2");
    let i = offsets[fat] as usize * 4;
    let a = u32::from_le_bytes(bytes[off + i..off + i + 4].try_into().unwrap());
    let b = u32::from_le_bytes(bytes[off + i + 4..off + i + 8].try_into().unwrap());
    assert!(a < b, "rows are sorted and duplicate-free before the swap");
    bytes[off + i..off + i + 4].copy_from_slice(&b.to_le_bytes());
    bytes[off + i + 4..off + i + 8].copy_from_slice(&a.to_le_bytes());

    let sum = snapshot::section_checksum(&bytes[off..off + len]);
    bytes[row + 24..row + 32].copy_from_slice(&sum.to_le_bytes());
    patch_header_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("rewrite");

    // Checksum-only load: the file is internally consistent, so `open`
    // accepts it — that is the documented trust boundary.
    Snapshot::open(&path).expect("checksum-only open accepts consistent bytes");

    // Paranoid load runs the full O(V+E) sweep before constructing
    // anything and rejects with the violated invariant.
    let snap = Snapshot::open_with(
        &path,
        LoadOptions {
            paranoid: true,
            force_heap: false,
        },
    )
    .expect("open itself succeeds; validation is per-structure");
    match snap.graph::<u32>() {
        Err(GraphError::Snapshot(SnapshotError::Invalid { message })) => {
            assert!(message.contains("sorted"), "message: {message}");
        }
        other => panic!("expected Invalid from paranoid load, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn heap_fallback_rejects_the_same_corruptions() {
    let (path, bytes) = good_snapshot("heapcorrupt", Compression::Never);
    let mut b = bytes.clone();
    let mid = b.len() / 2;
    b[mid] ^= 0x08;
    std::fs::write(&path, &b).expect("rewrite");
    let res = Snapshot::open_with(
        &path,
        LoadOptions {
            paranoid: false,
            force_heap: true,
        },
    );
    match res {
        Err(GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })) => {}
        other => panic!("heap path must also checksum, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn nonexistent_path_is_io_not_panic() {
    let path = tmp_path("nonexistent");
    match Snapshot::open(&path) {
        Err(GraphError::Io(_)) => {}
        other => panic!("expected io error, got {other:?}"),
    }
}

#[test]
fn good_files_still_load_after_all_that() {
    // Sanity anchor: the fixture generator itself produces loadable
    // snapshots under both encodings.
    for compression in [Compression::Never, Compression::Always, Compression::Auto] {
        let graph = gen::kron(8, 8, 0x5eed);
        let path = tmp_path("anchor");
        snapshot::write(
            &path,
            &SnapshotContents::graph_only(&graph, 99),
            compression,
        )
        .expect("write");
        let snap = Snapshot::open(&path).expect("open");
        let loaded: Graph = snap.graph().expect("load");
        assert_eq!(loaded, graph);
        std::fs::remove_file(&path).ok();
    }
}
