//! Property tests: the pooled construction pipeline must be
//! *byte-identical* to the serial reference for every thread count,
//! schedule, and adversarial input shape.
//!
//! The serial reference is twofold: a 1-thread pool run of the same
//! staged pipeline (the code path the builder takes with no pool), and
//! an independent BTreeMap/BTreeSet oracle that knows nothing about
//! CSR, scatter, or scanning.

use gapbs_graph::builder::symmetrize_graph;
use gapbs_graph::edgelist::{Edge, WEdge};
use gapbs_graph::gen;
use gapbs_graph::perm::{self, Permutation};
use gapbs_graph::types::{NodeId, Weight};
use gapbs_graph::{Builder, Graph, WGraph};
use gapbs_parallel::ThreadPool;
use std::collections::{BTreeMap, BTreeSet};

/// Thread counts the issue calls out: serial, even, odd/prime, oversubscribed.
const THREADS: [usize; 4] = [1, 2, 7, 16];

/// Adversarial edge lists: duplicates, self-loops, isolated vertices,
/// skewed degrees, and the empty list.
fn adversarial_inputs() -> Vec<(&'static str, usize, Vec<Edge>)> {
    let mut cases = Vec::new();
    cases.push(("empty", 5, Vec::new()));
    cases.push((
        "dups+loops",
        6,
        [
            (0, 1),
            (1, 0),
            (0, 1),
            (2, 2),
            (0, 1),
            (3, 4),
            (4, 3),
            (2, 2),
        ]
        .iter()
        .map(|&(a, b)| Edge::new(a, b))
        .collect(),
    ));
    // Vertices 50..64 are isolated; vertex 0 is a hub touching everyone.
    let mut skew = Vec::new();
    for v in 1..50u32 {
        skew.push(Edge::new(0, v));
        if v % 3 == 0 {
            skew.push(Edge::new(v, 0)); // reverse duplicates under symmetrize
        }
        if v % 7 == 0 {
            skew.push(Edge::new(v, v)); // sprinkled self-loops
        }
    }
    cases.push(("hub+isolated", 64, skew));
    // Pseudo-random mid-size list with collisions on purpose.
    let mut dense = Vec::new();
    let mut x = 9u64;
    for _ in 0..4000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % 61) as u32;
        let b = ((x >> 13) % 61) as u32;
        dense.push(Edge::new(a, b));
    }
    cases.push(("random61", 61, dense));
    cases
}

/// Oracle adjacency: per-vertex sorted deduped neighbor set.
fn oracle_adjacency(
    n: usize,
    edges: &[Edge],
    symmetrize: bool,
    drop_loops: bool,
) -> BTreeMap<usize, BTreeSet<NodeId>> {
    let mut adj: BTreeMap<usize, BTreeSet<NodeId>> = (0..n).map(|u| (u, BTreeSet::new())).collect();
    for e in edges {
        if drop_loops && e.src == e.dst {
            continue;
        }
        adj.get_mut(&(e.src as usize)).unwrap().insert(e.dst);
        if symmetrize {
            adj.get_mut(&(e.dst as usize)).unwrap().insert(e.src);
        }
    }
    adj
}

fn assert_matches_oracle(g: &Graph, oracle: &BTreeMap<usize, BTreeSet<NodeId>>) {
    for (&u, expected) in oracle {
        let got: Vec<NodeId> = g.out_neighbors(u as NodeId).to_vec();
        let want: Vec<NodeId> = expected.iter().copied().collect();
        assert_eq!(got, want, "adjacency of vertex {u} diverges from oracle");
    }
}

#[test]
fn pooled_build_is_identical_to_serial_and_oracle() {
    for (name, n, edges) in adversarial_inputs() {
        for symmetrize in [false, true] {
            for drop_loops in [false, true] {
                let make = |pool: Option<&ThreadPool>| {
                    let mut b = Builder::new()
                        .num_vertices(n)
                        .symmetrize(symmetrize)
                        .remove_self_loops(drop_loops);
                    if let Some(p) = pool {
                        b = b.pool(p);
                    }
                    b.build(edges.clone()).expect("in-range endpoints")
                };
                let serial = make(None);
                assert_matches_oracle(
                    &serial,
                    &oracle_adjacency(n, &edges, symmetrize, drop_loops),
                );
                for threads in THREADS {
                    let pool = ThreadPool::new(threads);
                    let pooled = make(Some(&pool));
                    assert_eq!(
                        pooled, serial,
                        "{name}: sym={symmetrize} loops={drop_loops} @ {threads} threads"
                    );
                }
            }
        }
    }
}

/// Weighted oracle: min weight wins among duplicates of the same arc.
fn oracle_weights(
    n: usize,
    edges: &[WEdge],
    symmetrize: bool,
) -> BTreeMap<(usize, NodeId), Weight> {
    let mut min: BTreeMap<(usize, NodeId), Weight> = BTreeMap::new();
    let mut add = |u: usize, v: NodeId, w: Weight| {
        min.entry((u, v))
            .and_modify(|m| *m = (*m).min(w))
            .or_insert(w);
    };
    let _ = n;
    for e in edges {
        add(e.src as usize, e.dst, e.weight);
        if symmetrize {
            add(e.dst as usize, e.src, e.weight);
        }
    }
    min
}

fn assert_weights_match_oracle(g: &WGraph, oracle: &BTreeMap<(usize, NodeId), Weight>) {
    let mut arcs = 0usize;
    for u in g.vertices() {
        for (v, w) in g.out_wcsr().neighbors_weighted(u) {
            assert_eq!(
                Some(&w),
                oracle.get(&(u as usize, v)),
                "weight of arc {u}->{v} diverges from min-weight oracle"
            );
            arcs += 1;
        }
    }
    assert_eq!(arcs, oracle.len(), "arc count diverges from oracle");
}

#[test]
fn weighted_build_keeps_min_weight_and_matches_serial() {
    // Duplicate arcs with different weights, in adversarial orders.
    let edges: Vec<WEdge> = [
        (0, 1, 9),
        (0, 1, 3),
        (1, 0, 7), // reverse dup: merges under symmetrize only
        (0, 1, 5),
        (2, 3, 2),
        (3, 2, 1),
        (4, 4, 8), // self-loop keeps its weight when loops are kept
        (4, 4, 6),
        (5, 0, 4),
    ]
    .iter()
    .map(|&(a, b, w)| WEdge::new(a, b, w))
    .collect();
    let n = 6;
    for symmetrize in [false, true] {
        let make = |pool: Option<&ThreadPool>| {
            let mut b = Builder::new().num_vertices(n).symmetrize(symmetrize);
            if let Some(p) = pool {
                b = b.pool(p);
            }
            b.build_weighted(edges.clone()).expect("valid weights")
        };
        let serial = make(None);
        assert_weights_match_oracle(&serial, &oracle_weights(n, &edges, symmetrize));
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                make(Some(&pool)),
                serial,
                "weighted sym={symmetrize} @ {threads} threads"
            );
        }
    }
}

#[test]
fn permutation_apply_is_thread_count_independent() {
    // Directed graph with hubs, isolated vertices, and a self-loop.
    let mut edges = Vec::new();
    for v in 1..40u32 {
        edges.push(Edge::new(0, v % 17));
        edges.push(Edge::new(v % 13, (v * 7) % 19));
    }
    edges.push(Edge::new(5, 5));
    for (directed, g) in [
        (
            true,
            Builder::new()
                .num_vertices(48)
                .build(edges.clone())
                .unwrap(),
        ),
        (
            false,
            Builder::new()
                .num_vertices(48)
                .symmetrize(true)
                .build(edges.clone())
                .unwrap(),
        ),
    ] {
        assert_eq!(g.is_directed(), directed);
        for p in [
            perm::degree_descending(&g),
            Permutation::identity(g.num_vertices()),
            // Reversal permutation: maximally far from identity.
            Permutation::new((0..g.num_vertices() as NodeId).rev().collect::<Vec<_>>()),
        ] {
            let serial = perm::apply(&g, &p);
            for threads in THREADS {
                let pool = ThreadPool::new(threads);
                assert_eq!(
                    perm::apply_in(&g, &p, &pool),
                    serial,
                    "directed={directed} @ {threads} threads"
                );
            }
        }
    }
}

#[test]
fn generators_are_thread_count_independent() {
    let serial = ThreadPool::new(1);
    let kron = gen::kron_edges_in(9, 8, 42, &serial);
    let urand = gen::urand_edges_in(9, 8, 42, &serial);
    let road_cfg = gen::RoadConfig::gap_like(20);
    let road = gen::road_edges_in(&road_cfg, 42, &serial);
    let weights = gen::with_uniform_weights_in(&kron, 42, &serial);
    for threads in [2, 7, 16] {
        let pool = ThreadPool::new(threads);
        assert_eq!(
            kron,
            gen::kron_edges_in(9, 8, 42, &pool),
            "kron @ {threads}"
        );
        assert_eq!(
            urand,
            gen::urand_edges_in(9, 8, 42, &pool),
            "urand @ {threads}"
        );
        assert_eq!(
            road,
            gen::road_edges_in(&road_cfg, 42, &pool),
            "road @ {threads}"
        );
        assert_eq!(
            weights,
            gen::with_uniform_weights_in(&kron, 42, &pool),
            "weights @ {threads}"
        );
    }
}

#[test]
fn symmetrize_graph_is_thread_count_independent() {
    let g = Builder::new()
        .num_vertices(40)
        .build(gen::kron_edges(5, 6, 3))
        .unwrap();
    let serial = symmetrize_graph(&g, &ThreadPool::new(1));
    assert!(!serial.is_directed());
    for threads in [2, 7, 16] {
        let pool = ThreadPool::new(threads);
        assert_eq!(symmetrize_graph(&g, &pool), serial, "@ {threads} threads");
    }
}

#[test]
fn corpus_generation_is_pool_size_independent() {
    use gapbs_graph::gen::{GraphSpec, Scale};
    let serial = ThreadPool::new(1);
    for spec in [GraphSpec::Kron, GraphSpec::Road] {
        let g1 = spec.generate_in(Scale::Tiny, &serial);
        let w1 = spec.generate_weighted_in(Scale::Tiny, &serial);
        let pool = ThreadPool::new(7);
        assert_eq!(g1, spec.generate_in(Scale::Tiny, &pool), "{spec}");
        assert_eq!(
            w1,
            spec.generate_weighted_in(Scale::Tiny, &pool),
            "{spec} weighted"
        );
    }
}
