//! Edge-list to CSR graph construction.
//!
//! The builder reproduces the construction pipeline the paper describes as
//! common to all evaluated frameworks: adjacency lists are sorted by
//! destination and duplicate edges are removed. Symmetrization (for the
//! undirected Kron and Urand inputs) and both adjacency directions are built
//! here, ahead of timing, matching GAP's rule that graph transposition is not
//! timed because the reference implementation stores both forms.
//!
//! Construction runs as a staged pipeline on a [`ThreadPool`] (mirroring
//! the GAP reference's parallel `BuilderBase`):
//!
//! 1. **count** — per-worker degree histograms over a static partition of
//!    the input (local buffers: no shared writes in the hot loop),
//! 2. **scan** — histogram merge plus a parallel exclusive prefix sum
//!    ([`gapbs_parallel::scan`]) turning degrees into row offsets,
//! 3. **scatter** — a counting-sort scatter over atomic row cursors
//!    ([`gapbs_parallel::scatter`]); symmetrized mirrors and the reversed
//!    (incoming) direction are *virtual* input items, so no second edge
//!    `Vec` is ever materialized, and self-loop filtering happens here
//!    rather than in an up-front `retain` pass,
//! 4. **sort_dedup** — chunked per-row `sort_unstable` + first-wins dedup
//!    (for weighted rows the `(dst, weight)` tuple sort makes first-wins
//!    keep the minimum weight),
//! 5. **compact** — a second scan over the kept counts and a parallel
//!    copy into the final buffer.
//!
//! Every stage is deterministic for a given input regardless of thread
//! count or schedule: scatter order within a row varies, but the sort
//! canonicalizes it. A builder without a pool runs the same pipeline on a
//! one-thread pool, which executes inline — serial construction is the
//! one-thread special case, not a separate code path.

use crate::csr::{CsrGraph, WCsrGraph};
use crate::edgelist::{Edge, WEdge};
use crate::error::BuildError;
use crate::graph::{AnyGraph, Graph, WGraph};
use crate::types::{NodeId, OffsetIndex, Weight};
use gapbs_parallel::{scan, scatter, Schedule, SharedSlice, ThreadPool};
use gapbs_telemetry::{record, trace, Counter};

/// Configurable edge-list-to-graph builder.
///
/// # Example
///
/// ```
/// use gapbs_graph::{Builder, edgelist::edges};
///
/// let g = Builder::new()
///     .symmetrize(true)
///     .build(edges([(0, 1), (1, 2), (0, 1)]))  // duplicate removed
///     .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert!(!g.is_directed());
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    num_vertices: Option<usize>,
    symmetrize: bool,
    remove_self_loops: bool,
    force_wide: bool,
    pool: Option<ThreadPool>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Creates a builder with GAP defaults: vertex count inferred from the
    /// edge list, directed output, self-loops kept, duplicates removed.
    pub fn new() -> Self {
        Builder {
            num_vertices: None,
            symmetrize: false,
            remove_self_loops: false,
            force_wide: false,
            pool: None,
        }
    }

    /// Fixes the vertex count instead of inferring `max endpoint + 1`.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// When `true`, every edge is mirrored and the result is undirected.
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// When `true`, self-loops are dropped during construction.
    pub fn remove_self_loops(mut self, yes: bool) -> Self {
        self.remove_self_loops = yes;
        self
    }

    /// Forces [`Self::build_any`] onto the wide (`usize`-offset) path even
    /// when the graph would fit compact offsets — the test hook for the
    /// fallback that real inputs only trigger at `u32::MAX` arcs.
    pub fn force_wide(mut self, yes: bool) -> Self {
        self.force_wide = yes;
        self
    }

    /// Runs construction on `pool`. Without a pool the same pipeline runs
    /// on a private one-thread pool (inline — today's serial behavior),
    /// and the output is identical either way.
    pub fn pool(mut self, pool: &ThreadPool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    fn runtime(&self) -> ThreadPool {
        self.pool.clone().unwrap_or_else(|| ThreadPool::new(1))
    }

    fn resolve_n(&self, max_endpoint: Option<NodeId>) -> Result<usize, BuildError> {
        match (self.num_vertices, max_endpoint) {
            (Some(n), Some(max)) => {
                if (max as usize) < n {
                    Ok(n)
                } else {
                    Err(BuildError::EndpointOutOfRange {
                        node: u64::from(max),
                        num_vertices: n as u64,
                    })
                }
            }
            (Some(n), None) => Ok(n),
            (None, Some(max)) => Ok(max as usize + 1),
            (None, None) => Ok(0),
        }
    }

    /// Builds an unweighted [`Graph`] with the default compact (`u32`)
    /// offsets.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EndpointOutOfRange`] if an endpoint exceeds a
    /// fixed vertex count, or [`BuildError::ArcCountOverflow`] if the arc
    /// count does not fit 32-bit offsets (use [`Self::build_any`] for
    /// inputs that may need the wide fallback).
    pub fn build(&self, edges: Vec<Edge>) -> Result<Graph, BuildError> {
        self.build_as::<u32>(edges)
    }

    /// Builds an unweighted graph, selecting the offset width at runtime:
    /// compact `u32` offsets whenever the scattered arc count fits (every
    /// in-repo graph), the `usize` fallback otherwise (or when
    /// [`Self::force_wide`] is set).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build`], minus the overflow case the
    /// wide path absorbs.
    pub fn build_any(&self, edges: Vec<Edge>) -> Result<AnyGraph, BuildError> {
        // Conservative width choice from the scattered item count (final
        // arcs only shrink from here via dedup), so the pipeline runs once.
        let scattered = edges
            .len()
            .saturating_mul(if self.symmetrize { 2 } else { 1 });
        if self.force_wide || !<u32 as OffsetIndex>::fits(scattered) {
            Ok(AnyGraph::Wide(self.build_as::<usize>(edges)?))
        } else {
            Ok(AnyGraph::Narrow(self.build_as::<u32>(edges)?))
        }
    }

    /// [`Self::build`] for an explicit offset width `O`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build`].
    pub fn build_as<O: OffsetIndex>(&self, edges: Vec<Edge>) -> Result<Graph<O>, BuildError> {
        let pool = self.runtime();
        let drop_loops = self.remove_self_loops;
        let live = |e: &Edge| !(drop_loops && e.is_self_loop());
        let max = max_endpoint(&pool, edges.len(), |i| {
            let e = edges[i];
            live(&e).then(|| e.src.max(e.dst))
        });
        let n = self.resolve_n(max)?;
        let m = edges.len();
        let edges = edges.as_slice();
        if self.symmetrize {
            // Item space: forward edges then their mirrors, both virtual.
            let item = |i: usize| {
                let e = if i < m {
                    edges[i]
                } else {
                    edges[i - m].reversed()
                };
                live(&e).then_some((e.src as usize, e.dst))
            };
            let (offsets, targets) = build_rows(&pool, n, 2 * m, &item);
            check_width::<O>(&offsets)?;
            Ok(Graph::undirected(CsrGraph::from_scan_unchecked(
                offsets, targets,
            )))
        } else {
            let out_item = |i: usize| {
                let e = edges[i];
                live(&e).then_some((e.src as usize, e.dst))
            };
            let in_item = |i: usize| {
                let e = edges[i];
                live(&e).then_some((e.dst as usize, e.src))
            };
            let (oo, ot) = build_rows(&pool, n, m, &out_item);
            check_width::<O>(&oo)?;
            let (io, it) = build_rows(&pool, n, m, &in_item);
            Ok(Graph::directed(
                CsrGraph::from_scan_unchecked(oo, ot),
                CsrGraph::from_scan_unchecked(io, it),
            ))
        }
    }

    /// Builds a weighted [`WGraph`].
    ///
    /// Duplicate `(src, dst)` pairs keep the smallest weight, a deterministic
    /// choice consistent with shortest-path semantics.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NonPositiveWeight`] for weights `<= 0` and
    /// [`BuildError::EndpointOutOfRange`] if an endpoint exceeds a fixed
    /// vertex count.
    pub fn build_weighted(&self, edges: Vec<WEdge>) -> Result<WGraph, BuildError> {
        self.build_weighted_as::<u32>(edges)
    }

    /// [`Self::build_weighted`] for an explicit offset width `O`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build_weighted`].
    pub fn build_weighted_as<O: OffsetIndex>(
        &self,
        edges: Vec<WEdge>,
    ) -> Result<WGraph<O>, BuildError> {
        let pool = self.runtime();
        let drop_loops = self.remove_self_loops;
        let live = |e: &WEdge| !(drop_loops && e.src == e.dst);
        // One extent pass validates weights (lowest offending index, so
        // the reported edge matches a serial scan) and finds the max
        // endpoint — no separate validation sweep.
        let (max, bad) = pool.reduce_index(
            edges.len(),
            Schedule::Static,
            (None, None),
            |i| {
                let e = edges[i];
                (
                    live(&e).then(|| e.src.max(e.dst)),
                    (e.weight <= 0).then_some(i),
                )
            },
            |(max_a, bad_a), (max_b, bad_b)| {
                (
                    merge_max(max_a, max_b),
                    match (bad_a, bad_b) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        (x, None) => x,
                        (None, y) => y,
                    },
                )
            },
        );
        if let Some(i) = bad {
            let e = edges[i];
            return Err(BuildError::NonPositiveWeight {
                src: u64::from(e.src),
                dst: u64::from(e.dst),
                weight: i64::from(e.weight),
            });
        }
        let n = self.resolve_n(max)?;
        let m = edges.len();
        let edges = edges.as_slice();
        if self.symmetrize {
            let item = |i: usize| {
                let e = if i < m {
                    edges[i]
                } else {
                    edges[i - m].reversed()
                };
                live(&e).then_some((e.src as usize, (e.dst, e.weight)))
            };
            let (offsets, pairs) = build_rows(&pool, n, 2 * m, &item);
            check_width::<O>(&offsets)?;
            Ok(WGraph::undirected(wcsr(&pool, offsets, &pairs)))
        } else {
            let out_item = |i: usize| {
                let e = edges[i];
                live(&e).then_some((e.src as usize, (e.dst, e.weight)))
            };
            let in_item = |i: usize| {
                let e = edges[i];
                live(&e).then_some((e.dst as usize, (e.src, e.weight)))
            };
            let (oo, op) = build_rows(&pool, n, m, &out_item);
            check_width::<O>(&oo)?;
            let (io, ip) = build_rows(&pool, n, m, &in_item);
            Ok(WGraph::directed(wcsr(&pool, oo, &op), wcsr(&pool, io, &ip)))
        }
    }
}

/// Verifies the scanned arc total fits offset width `O` before narrowing.
fn check_width<O: OffsetIndex>(offsets: &[usize]) -> Result<(), BuildError> {
    let total = offsets.last().copied().unwrap_or(0);
    if O::fits(total) {
        Ok(())
    } else {
        Err(BuildError::ArcCountOverflow {
            arcs: total as u64,
            width: O::NAME,
        })
    }
}

/// Symmetrizes a directed graph on `pool` without materializing an edge
/// list: the scatter's item space is both directions of every stored arc,
/// read straight out of the CSR.
pub fn symmetrize_graph<O: OffsetIndex>(g: &Graph<O>, pool: &ThreadPool) -> Graph<O> {
    let n = g.num_vertices();
    let csr = g.out_csr();
    let targets = csr.targets_raw();
    let m = targets.len();
    let srcs = arc_sources(pool, csr.offsets_raw(), n, m);
    let item = |i: usize| {
        let (arc, fwd) = if i < m { (i, true) } else { (i - m, false) };
        let (u, v) = (srcs[arc], targets[arc]);
        Some(if fwd {
            (u as usize, v)
        } else {
            (v as usize, u)
        })
    };
    let (offsets, adj) = build_rows(pool, n, 2 * m, &item);
    assert!(
        O::fits(offsets.last().copied().unwrap_or(0)),
        "symmetrized arc count overflows {} offsets",
        O::NAME
    );
    Graph::undirected(CsrGraph::from_scan_unchecked(offsets, adj))
}

/// Expands a CSR offset table into the per-arc source-vertex array the
/// virtual item spaces index by (`srcs[arc]` = row owning `arc`).
pub(crate) fn arc_sources<O: OffsetIndex>(
    pool: &ThreadPool,
    offsets: &[O],
    n: usize,
    m: usize,
) -> Vec<NodeId> {
    let mut srcs = vec![0 as NodeId; m];
    let shared = SharedSlice::new(&mut srcs);
    pool.for_each_index(n, Schedule::Guided, |u| {
        for arc in offsets[u].to_usize()..offsets[u + 1].to_usize() {
            // SAFETY: rows partition the arc array.
            unsafe { shared.write(arc, u as NodeId) };
        }
    });
    srcs
}

/// One scattered adjacency entry: what a row is sorted by, plus the
/// destination that duplicate detection compares.
pub(crate) trait AdjEntry: Copy + Ord + Default + Send + Sync {
    /// The destination vertex duplicates are detected on.
    fn dedup_key(self) -> NodeId;
}

impl AdjEntry for NodeId {
    fn dedup_key(self) -> NodeId {
        self
    }
}

impl AdjEntry for (NodeId, Weight) {
    fn dedup_key(self) -> NodeId {
        self.0
    }
}

fn merge_max(a: Option<NodeId>, b: Option<NodeId>) -> Option<NodeId> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn max_endpoint<F>(pool: &ThreadPool, n_items: usize, f: F) -> Option<NodeId>
where
    F: Fn(usize) -> Option<NodeId> + Sync,
{
    pool.reduce_index(n_items, Schedule::Static, None, f, merge_max)
}

/// Wraps one build stage in a session-gated trace duration event.
fn staged<R>(stage: &'static str, f: impl FnOnce() -> R) -> R {
    let start = trace::now_ns();
    let out = f();
    trace::build_stage(stage, start);
    out
}

/// The staged parallel pipeline: `item(i)` yields `(row, entry)` for every
/// live input item (`None` filters it out), and the result is the sorted,
/// deduplicated `(offsets, entries)` CSR pair. Deterministic for a given
/// item space regardless of the pool's thread count.
pub(crate) fn build_rows<T, F>(
    pool: &ThreadPool,
    n: usize,
    n_items: usize,
    item: &F,
) -> (Vec<usize>, Vec<T>)
where
    T: AdjEntry,
    F: Fn(usize) -> Option<(usize, T)> + Sync,
{
    let threads = pool.num_threads();

    // Stage 1: degree count into per-worker histograms (local buffers —
    // the hot loop touches no shared cache lines).
    let mut hists: Vec<Vec<usize>> = std::iter::repeat_with(Vec::new).take(threads).collect();
    staged("count", || {
        let slots = SharedSlice::new(&mut hists);
        pool.run(|tid| {
            let chunk = n_items.div_ceil(threads.max(1)).max(1);
            let lo = (tid * chunk).min(n_items);
            let hi = ((tid + 1) * chunk).min(n_items);
            let mut h = vec![0usize; n];
            for i in lo..hi {
                if let Some((row, _)) = item(i) {
                    h[row] += 1;
                }
            }
            // SAFETY: one writer per worker slot.
            unsafe { slots.write(tid, h) };
        });
    });

    // Stage 2: merge the histograms and scan them into row offsets.
    let mut offsets = vec![0usize; n + 1];
    let total = staged("scan", || {
        {
            let merged = SharedSlice::new(&mut offsets[..n]);
            let hists = &hists;
            pool.for_each_index(n, Schedule::Static, |v| {
                let count: usize = hists.iter().map(|h| h[v]).sum();
                // SAFETY: one writer per vertex.
                unsafe { merged.write(v, count) };
            });
        }
        scan::exclusive_scan_in_place(pool, &mut offsets)
    });
    drop(hists);

    // Stage 3: counting-sort scatter over atomic row cursors.
    let mut slots: Vec<T> = vec![T::default(); total];
    staged("scatter", || {
        let cursors = scatter::RowCursors::from_offsets(&offsets);
        scatter::scatter(pool, n_items, &cursors, &mut slots, item);
    });
    record(Counter::BuildEdgesScattered, total as u64);

    // Stage 4: canonicalize each row — sort, then first-wins dedup (for
    // weighted entries the tuple sort puts the minimum weight first).
    let mut kept = vec![0usize; n + 1];
    staged("sort_dedup", || {
        let rows = SharedSlice::new(&mut slots);
        let counts = SharedSlice::new(&mut kept[..n]);
        let offsets = &offsets;
        pool.for_each_index(n, Schedule::Guided, |u| {
            // SAFETY: rows partition the slot buffer.
            let row = unsafe { rows.range_mut(offsets[u], offsets[u + 1]) };
            row.sort_unstable();
            let mut k = 0usize;
            for i in 0..row.len() {
                if k == 0 || row[k - 1].dedup_key() != row[i].dedup_key() {
                    row[k] = row[i];
                    k += 1;
                }
            }
            // SAFETY: one writer per vertex.
            unsafe { counts.write(u, k) };
        });
    });

    // Stage 5: scan the kept counts and compact the row prefixes.
    let (new_offsets, out) = staged("compact", || {
        let final_total = scan::exclusive_scan_in_place(pool, &mut kept);
        record(Counter::BuildDupsDropped, (total - final_total) as u64);
        let mut out: Vec<T> = vec![T::default(); final_total];
        {
            let dst = SharedSlice::new(&mut out);
            let (offsets, new_offsets, slots) = (&offsets, &kept, &slots);
            pool.for_each_index(n, Schedule::Guided, |u| {
                let lo = offsets[u];
                let nlo = new_offsets[u];
                let len = new_offsets[u + 1] - nlo;
                // SAFETY: destination rows partition the output buffer.
                unsafe { dst.copy_from(nlo, &slots[lo..lo + len]) };
            });
        }
        (kept, out)
    });
    (new_offsets, out)
}

/// Splits built `(dst, weight)` rows into the parallel target/weight
/// arrays a [`WCsrGraph`] stores.
fn wcsr<O: OffsetIndex>(
    pool: &ThreadPool,
    offsets: Vec<usize>,
    pairs: &[(NodeId, Weight)],
) -> WCsrGraph<O> {
    let mut targets = vec![0 as NodeId; pairs.len()];
    let mut weights = vec![0 as Weight; pairs.len()];
    {
        let t = SharedSlice::new(&mut targets);
        let w = SharedSlice::new(&mut weights);
        pool.for_each_index(pairs.len(), Schedule::Static, |i| {
            // SAFETY: one writer per index in both arrays.
            unsafe {
                t.write(i, pairs[i].0);
                w.write(i, pairs[i].1);
            }
        });
    }
    let csr = CsrGraph::from_scan_unchecked(offsets, targets);
    WCsrGraph::from_parts(csr, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::{edges, wedges};

    #[test]
    fn builds_sorted_deduped_directed_graph() {
        let g = Builder::new()
            .build(edges([(2, 0), (0, 2), (0, 1), (0, 2), (2, 1)]))
            .unwrap();
        assert!(g.is_directed());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
    }

    #[test]
    fn symmetrize_produces_undirected() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2)]))
            .unwrap();
        assert!(!g.is_directed());
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
    }

    #[test]
    fn fixed_vertex_count_allows_isolated_vertices() {
        let g = Builder::new()
            .num_vertices(10)
            .build(edges([(0, 1)]))
            .unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn out_of_range_endpoint_is_an_error() {
        let err = Builder::new()
            .num_vertices(2)
            .build(edges([(0, 5)]))
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::EndpointOutOfRange { node: 5, .. }
        ));
    }

    #[test]
    fn self_loop_removal_is_optional() {
        let keep = Builder::new().build(edges([(1, 1)])).unwrap();
        assert_eq!(keep.num_edges(), 1);
        let drop = Builder::new()
            .remove_self_loops(true)
            .num_vertices(2)
            .build(edges([(1, 1)]))
            .unwrap();
        assert_eq!(drop.num_edges(), 0);
    }

    #[test]
    fn weighted_duplicates_keep_minimum_weight() {
        let g = Builder::new()
            .build_weighted(wedges([(0, 1, 9), (0, 1, 3), (0, 1, 7)]))
            .unwrap();
        assert_eq!(g.out_wcsr().weights(0), &[3]);
    }

    #[test]
    fn weighted_rejects_non_positive_weights() {
        let err = Builder::new()
            .build_weighted(wedges([(0, 1, 0)]))
            .unwrap_err();
        assert!(matches!(err, BuildError::NonPositiveWeight { .. }));
    }

    #[test]
    fn weighted_symmetrize_mirrors_weights() {
        let g = Builder::new()
            .symmetrize(true)
            .build_weighted(wedges([(0, 1, 4)]))
            .unwrap();
        let back: Vec<_> = g.out_neighbors_weighted(1).collect();
        assert_eq!(back, vec![(0, 4)]);
    }

    #[test]
    fn empty_edge_list_builds_empty_graph() {
        let g = Builder::new().build(Vec::new()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn pooled_build_matches_serial_build() {
        let list: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 37, (i * 7 + 3) % 53)).collect();
        let serial = Builder::new()
            .symmetrize(true)
            .build(edges(list.clone()))
            .unwrap();
        let pool = ThreadPool::new(4);
        let pooled = Builder::new()
            .symmetrize(true)
            .pool(&pool)
            .build(edges(list))
            .unwrap();
        assert_eq!(
            serial.out_csr().offsets_raw(),
            pooled.out_csr().offsets_raw()
        );
        assert_eq!(
            serial.out_csr().targets_raw(),
            pooled.out_csr().targets_raw()
        );
    }

    #[test]
    fn symmetrize_graph_matches_builder_symmetrize() {
        let list: Vec<(u32, u32)> = (0..300u32).map(|i| (i % 29, (i * 11) % 31)).collect();
        let directed = Builder::new().build(edges(list.clone())).unwrap();
        let pool = ThreadPool::new(3);
        let sym = symmetrize_graph(&directed, &pool);
        let expect = Builder::new()
            .num_vertices(directed.num_vertices())
            .symmetrize(true)
            .build(edges(list))
            .unwrap();
        assert_eq!(sym.out_csr().offsets_raw(), expect.out_csr().offsets_raw());
        assert_eq!(sym.out_csr().targets_raw(), expect.out_csr().targets_raw());
    }
}
