//! Edge-list to CSR graph construction.
//!
//! The builder reproduces the construction pipeline the paper describes as
//! common to all evaluated frameworks: adjacency lists are sorted by
//! destination and duplicate edges are removed. Symmetrization (for the
//! undirected Kron and Urand inputs) and both adjacency directions are built
//! here, ahead of timing, matching GAP's rule that graph transposition is not
//! timed because the reference implementation stores both forms.

use crate::csr::{CsrGraph, WCsrGraph};
use crate::edgelist::{Edge, WEdge};
use crate::error::BuildError;
use crate::graph::{Graph, WGraph};
use crate::types::{NodeId, Weight};

/// Configurable edge-list-to-graph builder.
///
/// # Example
///
/// ```
/// use gapbs_graph::{Builder, edgelist::edges};
///
/// let g = Builder::new()
///     .symmetrize(true)
///     .build(edges([(0, 1), (1, 2), (0, 1)]))  // duplicate removed
///     .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert!(!g.is_directed());
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    num_vertices: Option<usize>,
    symmetrize: bool,
    remove_self_loops: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Creates a builder with GAP defaults: vertex count inferred from the
    /// edge list, directed output, self-loops kept, duplicates removed.
    pub fn new() -> Self {
        Builder {
            num_vertices: None,
            symmetrize: false,
            remove_self_loops: false,
        }
    }

    /// Fixes the vertex count instead of inferring `max endpoint + 1`.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// When `true`, every edge is mirrored and the result is undirected.
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// When `true`, self-loops are dropped during construction.
    pub fn remove_self_loops(mut self, yes: bool) -> Self {
        self.remove_self_loops = yes;
        self
    }

    fn resolve_n(&self, max_endpoint: Option<NodeId>) -> Result<usize, BuildError> {
        match (self.num_vertices, max_endpoint) {
            (Some(n), Some(max)) => {
                if (max as usize) < n {
                    Ok(n)
                } else {
                    Err(BuildError::EndpointOutOfRange {
                        node: u64::from(max),
                        num_vertices: n as u64,
                    })
                }
            }
            (Some(n), None) => Ok(n),
            (None, Some(max)) => Ok(max as usize + 1),
            (None, None) => Ok(0),
        }
    }

    /// Builds an unweighted [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EndpointOutOfRange`] if an endpoint exceeds a
    /// fixed vertex count.
    pub fn build(&self, mut edges: Vec<Edge>) -> Result<Graph, BuildError> {
        if self.remove_self_loops {
            edges.retain(|e| !e.is_self_loop());
        }
        let max = edges.iter().map(|e| e.src.max(e.dst)).max();
        let n = self.resolve_n(max)?;
        if self.symmetrize {
            let mirrored: Vec<Edge> = edges.iter().map(|e| e.reversed()).collect();
            edges.extend(mirrored);
            let adj = csr_from_edges(n, &edges, |e| (e.src, e.dst));
            Ok(Graph::undirected(adj))
        } else {
            let out = csr_from_edges(n, &edges, |e| (e.src, e.dst));
            let incoming = csr_from_edges(n, &edges, |e| (e.dst, e.src));
            Ok(Graph::directed(out, incoming))
        }
    }

    /// Builds a weighted [`WGraph`].
    ///
    /// Duplicate `(src, dst)` pairs keep the smallest weight, a deterministic
    /// choice consistent with shortest-path semantics.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NonPositiveWeight`] for weights `<= 0` and
    /// [`BuildError::EndpointOutOfRange`] if an endpoint exceeds a fixed
    /// vertex count.
    pub fn build_weighted(&self, mut edges: Vec<WEdge>) -> Result<WGraph, BuildError> {
        if let Some(bad) = edges.iter().find(|e| e.weight <= 0) {
            return Err(BuildError::NonPositiveWeight {
                src: u64::from(bad.src),
                dst: u64::from(bad.dst),
                weight: i64::from(bad.weight),
            });
        }
        if self.remove_self_loops {
            edges.retain(|e| e.src != e.dst);
        }
        let max = edges.iter().map(|e| e.src.max(e.dst)).max();
        let n = self.resolve_n(max)?;
        if self.symmetrize {
            let mirrored: Vec<WEdge> = edges.iter().map(|e| e.reversed()).collect();
            edges.extend(mirrored);
            let adj = wcsr_from_edges(n, &edges, |e| (e.src, e.dst, e.weight));
            Ok(WGraph::undirected(adj))
        } else {
            let out = wcsr_from_edges(n, &edges, |e| (e.src, e.dst, e.weight));
            let incoming = wcsr_from_edges(n, &edges, |e| (e.dst, e.src, e.weight));
            Ok(WGraph::directed(out, incoming))
        }
    }
}

/// Counting-sort scatter of an edge list into a sorted, deduplicated CSR.
fn csr_from_edges<E, F>(n: usize, edges: &[E], key: F) -> CsrGraph
where
    F: Fn(&E) -> (NodeId, NodeId),
{
    let mut degree = vec![0usize; n];
    for e in edges {
        let (s, _) = key(e);
        degree[s as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = vec![0 as NodeId; edges.len()];
    let mut cursor = offsets.clone();
    for e in edges {
        let (s, d) = key(e);
        let slot = &mut cursor[s as usize];
        targets[*slot] = d;
        *slot += 1;
    }
    // Sort each row and deduplicate, compacting in place.
    let mut write = 0usize;
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0usize);
    for u in 0..n {
        let (lo, hi) = (offsets[u], offsets[u + 1]);
        let row = &mut targets[lo..hi];
        row.sort_unstable();
        let mut prev: Option<NodeId> = None;
        let mut kept = 0usize;
        for i in 0..row.len() {
            let v = row[i];
            if prev != Some(v) {
                row[kept] = v;
                kept += 1;
                prev = Some(v);
            }
        }
        // Move the kept prefix down to the write cursor.
        targets.copy_within(lo..lo + kept, write);
        write += kept;
        new_offsets.push(write);
    }
    targets.truncate(write);
    CsrGraph::from_parts_unchecked(new_offsets, targets)
}

/// Weighted variant of [`csr_from_edges`]; duplicates keep the minimum
/// weight.
fn wcsr_from_edges<E, F>(n: usize, edges: &[E], key: F) -> WCsrGraph
where
    F: Fn(&E) -> (NodeId, NodeId, Weight),
{
    let mut degree = vec![0usize; n];
    for e in edges {
        let (s, _, _) = key(e);
        degree[s as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut pairs: Vec<(NodeId, Weight)> = vec![(0, 0); edges.len()];
    let mut cursor = offsets.clone();
    for e in edges {
        let (s, d, w) = key(e);
        let slot = &mut cursor[s as usize];
        pairs[*slot] = (d, w);
        *slot += 1;
    }
    let mut write = 0usize;
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0usize);
    for u in 0..n {
        let (lo, hi) = (offsets[u], offsets[u + 1]);
        let row = &mut pairs[lo..hi];
        row.sort_unstable();
        let mut kept = 0usize;
        let mut prev: Option<NodeId> = None;
        for i in 0..row.len() {
            let (v, w) = row[i];
            if prev != Some(v) {
                row[kept] = (v, w);
                kept += 1;
                prev = Some(v);
            }
            // duplicates after sort have >= weight for same dst because the
            // tuple sort orders by (dst, weight); the first wins (minimum).
        }
        pairs.copy_within(lo..lo + kept, write);
        write += kept;
        new_offsets.push(write);
    }
    pairs.truncate(write);
    let (targets, weights): (Vec<NodeId>, Vec<Weight>) = pairs.into_iter().unzip();
    let csr = CsrGraph::from_parts_unchecked(new_offsets, targets);
    WCsrGraph::from_parts(csr, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::{edges, wedges};

    #[test]
    fn builds_sorted_deduped_directed_graph() {
        let g = Builder::new()
            .build(edges([(2, 0), (0, 2), (0, 1), (0, 2), (2, 1)]))
            .unwrap();
        assert!(g.is_directed());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
    }

    #[test]
    fn symmetrize_produces_undirected() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2)]))
            .unwrap();
        assert!(!g.is_directed());
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
    }

    #[test]
    fn fixed_vertex_count_allows_isolated_vertices() {
        let g = Builder::new()
            .num_vertices(10)
            .build(edges([(0, 1)]))
            .unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn out_of_range_endpoint_is_an_error() {
        let err = Builder::new()
            .num_vertices(2)
            .build(edges([(0, 5)]))
            .unwrap_err();
        assert!(matches!(err, BuildError::EndpointOutOfRange { node: 5, .. }));
    }

    #[test]
    fn self_loop_removal_is_optional() {
        let keep = Builder::new().build(edges([(1, 1)])).unwrap();
        assert_eq!(keep.num_edges(), 1);
        let drop = Builder::new()
            .remove_self_loops(true)
            .num_vertices(2)
            .build(edges([(1, 1)]))
            .unwrap();
        assert_eq!(drop.num_edges(), 0);
    }

    #[test]
    fn weighted_duplicates_keep_minimum_weight() {
        let g = Builder::new()
            .build_weighted(wedges([(0, 1, 9), (0, 1, 3), (0, 1, 7)]))
            .unwrap();
        assert_eq!(g.out_wcsr().weights(0), &[3]);
    }

    #[test]
    fn weighted_rejects_non_positive_weights() {
        let err = Builder::new()
            .build_weighted(wedges([(0, 1, 0)]))
            .unwrap_err();
        assert!(matches!(err, BuildError::NonPositiveWeight { .. }));
    }

    #[test]
    fn weighted_symmetrize_mirrors_weights() {
        let g = Builder::new()
            .symmetrize(true)
            .build_weighted(wedges([(0, 1, 4)]))
            .unwrap();
        let back: Vec<_> = g.out_neighbors_weighted(1).collect();
        assert_eq!(back, vec![(0, 4)]);
    }

    #[test]
    fn empty_edge_list_builds_empty_graph() {
        let g = Builder::new().build(Vec::new()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
