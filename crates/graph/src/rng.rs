//! Seeded pseudo-random numbers for the graph generators.
//!
//! The generators only need a deterministic, well-mixed stream — not
//! cryptographic quality — so this is xoshiro256++ seeded through
//! SplitMix64 (the reference seeding procedure from Blackman & Vigna).
//! Keeping the RNG in-tree pins the corpus byte-for-byte across builds:
//! the exact graphs only depend on this file, never on an external
//! crate's algorithm choice.

/// Mixes a master seed with a stream index into an independent derived
/// seed (a SplitMix64 finalizer round over the combined words).
///
/// The parallel generators carve their output into fixed-size blocks and
/// seed each block's private [`SeededRng`] with `mix64(seed, block)`, so
/// the emitted stream depends only on the seed and the block layout —
/// never on thread count or schedule. Distinct stream constants derive
/// independent sub-generators (shuffle permutations, diagonals, ...).
pub fn mix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .rotate_left(17)
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SeededRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: std::ops::RangeBounds<T>,
    {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&x) => x.to_u64(),
            Bound::Excluded(&x) => x.to_u64() + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x.to_u64() + 1,
            Bound::Excluded(&x) => x.to_u64(),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): rejects the short tail.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                low = m as u64;
            }
        }
        T::from_u64(lo + (m >> 64) as u64)
    }
}

/// Integer types [`SeededRng::gen_range`] can draw.
pub trait UniformInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling (value is in range by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::seed_from_u64(1);
        let mut b = SeededRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SeededRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let x: i32 = rng.gen_range(1..256);
            assert!((1..256).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SeededRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "8-value range left values unseen");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor spread: [{lo}, {hi}]");
    }
}
