//! Vertex relabeling (permutation) utilities.
//!
//! Several frameworks in the paper relabel vertices by degree before
//! triangle counting ("heuristic-controlled graph relabelling", Table III
//! footnote 2). The benchmark rules require such restructuring to be timed
//! inside the kernel, so relabeling lives here as a reusable, measurable
//! operation.

use crate::builder::{arc_sources, build_rows};
use crate::csr::CsrGraph;
use crate::graph::Graph;
use crate::types::{NodeId, OffsetIndex};
use gapbs_parallel::ThreadPool;

/// A bijective relabeling of vertex ids.
///
/// `new_id(old)` gives the new id of an old vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<NodeId>,
}

impl Permutation {
    /// Builds a permutation from a `new_of_old` mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not a bijection on `0..len`.
    pub fn new(new_of_old: Vec<NodeId>) -> Self {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &v in &new_of_old {
            assert!((v as usize) < n, "permutation image {v} out of range");
            assert!(!seen[v as usize], "permutation image {v} duplicated");
            seen[v as usize] = true;
        }
        Permutation { new_of_old }
    }

    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_of_old: (0..n as NodeId).collect(),
        }
    }

    /// New id of `old`.
    pub fn new_id(&self, old: NodeId) -> NodeId {
        self.new_of_old[old as usize]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// `true` when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The inverse mapping (`old_of_new`).
    pub fn inverse(&self) -> Permutation {
        let mut old_of_new = vec![0 as NodeId; self.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            old_of_new[new as usize] = old as NodeId;
        }
        Permutation {
            new_of_old: old_of_new,
        }
    }
}

/// Builds the degree-descending relabeling used by TC implementations:
/// high-degree vertices get small ids so that orientation by id bounds the
/// search work (ties broken by old id for determinism).
pub fn degree_descending<O: OffsetIndex>(g: &Graph<O>) -> Permutation {
    let mut order: Vec<NodeId> = g.vertices().collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(g.out_degree(u)), u));
    let mut new_of_old = vec![0 as NodeId; g.num_vertices()];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as NodeId;
    }
    Permutation { new_of_old }
}

/// Applies a permutation, producing the relabeled graph (adjacency is
/// re-sorted by the builder). Serial convenience wrapper over
/// [`apply_in`].
pub fn apply<O: OffsetIndex>(g: &Graph<O>, perm: &Permutation) -> Graph<O> {
    apply_in(g, perm, &ThreadPool::new(1))
}

/// Applies a permutation on `pool`, producing the relabeled graph.
///
/// The stored arcs are fed straight into the parallel build pipeline as
/// virtual items — no intermediate edge `Vec` — and the result is
/// identical to [`apply`] for every thread count. Relabeling is a *timed*
/// operation under the paper's rules, which is why it shares the
/// kernels' pool instead of staying serial.
pub fn apply_in<O: OffsetIndex>(g: &Graph<O>, perm: &Permutation, pool: &ThreadPool) -> Graph<O> {
    assert_eq!(perm.len(), g.num_vertices());
    let n = g.num_vertices();
    let csr = g.out_csr();
    let targets = csr.targets_raw();
    let m = targets.len();
    let srcs = arc_sources(pool, csr.offsets_raw(), n, m);
    let map = perm.new_of_old.as_slice();
    let out_item =
        |arc: usize| Some((map[srcs[arc] as usize] as usize, map[targets[arc] as usize]));
    let (offsets, adj) = build_rows(pool, n, m, &out_item);
    let out = CsrGraph::from_scan_unchecked(offsets, adj);
    if g.is_directed() {
        let in_item =
            |arc: usize| Some((map[targets[arc] as usize] as usize, map[srcs[arc] as usize]));
        let (in_offsets, in_adj) = build_rows(pool, n, m, &in_item);
        Graph::directed(out, CsrGraph::from_scan_unchecked(in_offsets, in_adj))
    } else {
        // The arcs were already symmetric, so the one direction is the
        // whole adjacency.
        Graph::undirected(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::edgelist::edges;

    fn star() -> Graph {
        // 0 is the hub of a 4-star, undirected.
        Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (0, 2), (0, 3), (0, 4)]))
            .unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let g = star();
        let p = Permutation::identity(g.num_vertices());
        assert_eq!(apply(&g, &p), g);
    }

    #[test]
    fn degree_descending_puts_hub_first() {
        let g = star();
        let p = degree_descending(&g);
        assert_eq!(p.new_id(0), 0, "hub should map to id 0");
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(vec![2, 0, 1]);
        let inv = p.inverse();
        for old in 0..3 {
            assert_eq!(inv.new_id(p.new_id(old)), old);
        }
    }

    #[test]
    fn relabeling_preserves_degrees_multiset() {
        let g = star();
        let p = degree_descending(&g);
        let h = apply(&g, &p);
        let mut dg: Vec<_> = g.vertices().map(|u| g.out_degree(u)).collect();
        let mut dh: Vec<_> = h.vertices().map(|u| h.out_degree(u)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
        assert_eq!(g.num_arcs(), h.num_arcs());
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn non_bijective_mapping_rejected() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn apply_in_matches_apply_for_directed_graphs() {
        let g = Builder::new()
            .build(edges([(0, 1), (1, 2), (2, 0), (3, 1), (0, 3), (4, 4)]))
            .unwrap();
        let p = degree_descending(&g);
        let serial = apply(&g, &p);
        for threads in [2, 5] {
            let pool = ThreadPool::new(threads);
            assert_eq!(apply_in(&g, &p, &pool), serial, "@ {threads} threads");
        }
    }
}
