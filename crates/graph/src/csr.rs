//! Compressed sparse row adjacency structures.
//!
//! A [`CsrGraph`] stores one direction of adjacency (all out-neighbors, or
//! all in-neighbors) of a graph. Adjacency lists are sorted by destination
//! and duplicate-free — the construction invariant the paper notes every
//! evaluated framework maintains.

use crate::types::{NodeId, Weight};

/// One direction of adjacency in compressed sparse row form.
///
/// `offsets` has `num_vertices() + 1` entries; the neighbors of vertex `u`
/// occupy `targets[offsets[u]..offsets[u + 1]]`, sorted ascending with no
/// duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]

pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotone, do not start at zero, or do
    /// not end at `targets.len()`, or if any adjacency list is unsorted or
    /// contains duplicates or out-of-range targets. These are programming
    /// errors in construction code, not user-input errors, hence panics
    /// rather than `Result`.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            targets.len(),
            "offsets must end at targets.len()"
        );
        let n = offsets.len() - 1;
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be monotone");
        }
        for u in 0..n {
            let row = &targets[offsets[u]..offsets[u + 1]];
            for pair in row.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "adjacency list of {u} must be sorted and duplicate-free"
                );
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < n, "target {last} out of range");
            }
        }
        CsrGraph { offsets, targets }
    }

    /// Builds a CSR without validating invariants.
    ///
    /// Used by the builder after it has established sortedness itself.
    pub(crate) fn from_parts_unchecked(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        CsrGraph { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored directed arcs.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u` in this direction.
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The sorted neighbor slice of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Offset of the first neighbor of `u` inside [`Self::targets_raw`].
    pub fn offset(&self, u: NodeId) -> usize {
        self.offsets[u as usize]
    }

    /// The raw offsets array (length `num_vertices() + 1`).
    pub fn offsets_raw(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw flattened target array.
    pub fn targets_raw(&self) -> &[NodeId] {
        &self.targets
    }

    /// Returns `true` if edge `(u, v)` is present, via binary search.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over `(u, v)` arcs in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_vertices() as NodeId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }
}

/// Weighted compressed sparse row adjacency.
///
/// Weights are stored in a parallel array so that unweighted kernels can walk
/// `targets` without touching weights (matching GAP's `WNode` layout intent
/// while keeping cache behaviour predictable at this scale).
#[derive(Debug, Clone, PartialEq, Eq)]

pub struct WCsrGraph {
    csr: CsrGraph,
    weights: Vec<Weight>,
}

impl WCsrGraph {
    /// Builds a weighted CSR from an unweighted CSR plus a parallel weight
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != csr.num_edges()`.
    pub fn from_parts(csr: CsrGraph, weights: Vec<Weight>) -> Self {
        assert_eq!(
            weights.len(),
            csr.num_edges(),
            "weight array must parallel the target array"
        );
        WCsrGraph { csr, weights }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of stored directed arcs.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.csr.degree(u)
    }

    /// The sorted neighbor slice of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.csr.neighbors(u)
    }

    /// The weight slice parallel to [`Self::neighbors`] for `u`.
    pub fn weights(&self, u: NodeId) -> &[Weight] {
        let lo = self.csr.offset(u);
        let hi = self.csr.offset(u + 1);
        &self.weights[lo..hi]
    }

    /// Iterates `(neighbor, weight)` pairs of `u`.
    pub fn neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.weights(u).iter().copied())
    }

    /// The unweighted view of this adjacency.
    pub fn unweighted(&self) -> &CsrGraph {
        &self.csr
    }

    /// The raw flattened weight array.
    pub fn weights_raw(&self) -> &[Weight] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> {1,2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        CsrGraph::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn edge_iteration_covers_all_arcs() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rows_rejected() {
        CsrGraph::from_parts(vec![0, 2], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_targets_rejected() {
        CsrGraph::from_parts(vec![0, 1], vec![7]);
    }

    #[test]
    fn weighted_parallel_arrays() {
        let g = diamond();
        let wg = WCsrGraph::from_parts(g, vec![10, 20, 30, 40]);
        assert_eq!(wg.weights(0), &[10, 20]);
        let pairs: Vec<_> = wg.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn weight_length_mismatch_rejected() {
        WCsrGraph::from_parts(diamond(), vec![1, 2]);
    }
}
