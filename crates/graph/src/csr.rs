//! Compressed sparse row adjacency structures.
//!
//! A [`CsrGraph`] stores one direction of adjacency (all out-neighbors, or
//! all in-neighbors) of a graph. Adjacency lists are sorted by destination
//! and duplicate-free — the construction invariant the paper notes every
//! evaluated framework maintains.
//!
//! The row-offset width is a type parameter (default `u32`): every in-repo
//! graph fits 32-bit offsets, which halves the offset array and the cache
//! lines touched per row lookup, while `CsrGraph<usize>` remains available
//! as the wide fallback the paper's 64-bit frameworks correspond to.

use crate::segment::Segment;
use crate::types::{NodeId, OffsetIndex, Weight};

/// One direction of adjacency in compressed sparse row form.
///
/// `offsets` has `num_vertices() + 1` entries; the neighbors of vertex `u`
/// occupy `targets[offsets[u]..offsets[u + 1]]`, sorted ascending with no
/// duplicates.
///
/// The arrays are [`Segment`]s: owned vectors when built from an edge
/// list, zero-copy views when loaded from an mmap'ed snapshot. Equality
/// and cloning follow the element contents either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph<O: OffsetIndex = u32> {
    offsets: Segment<O>,
    targets: Segment<NodeId>,
}

/// Checks every CSR invariant on `(offsets, targets)`: monotone offsets
/// starting at 0 and ending at `targets.len()`, sorted duplicate-free
/// rows, in-range targets. O(V + E). Returns the first violation as a
/// message; [`CsrGraph::from_parts`] panics on it, the snapshot loader's
/// paranoid mode surfaces it as a structured error.
pub(crate) fn check_parts<O: OffsetIndex>(offsets: &[O], targets: &[NodeId]) -> Result<(), String> {
    if offsets.is_empty() {
        return Err("offsets must have at least one entry".to_string());
    }
    if offsets[0].to_usize() != 0 {
        return Err("offsets must start at 0".to_string());
    }
    if offsets.last().expect("non-empty").to_usize() != targets.len() {
        return Err(format!(
            "offsets must end at targets.len() ({} != {})",
            offsets.last().expect("non-empty").to_usize(),
            targets.len()
        ));
    }
    let n = offsets.len() - 1;
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err("offsets must be monotone".to_string());
        }
    }
    for u in 0..n {
        let row = &targets[offsets[u].to_usize()..offsets[u + 1].to_usize()];
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return Err(format!(
                    "adjacency list of {u} must be sorted and duplicate-free"
                ));
            }
        }
        if let Some(&last) = row.last() {
            if last as usize >= n {
                return Err(format!("target {last} out of range"));
            }
        }
    }
    Ok(())
}

/// Panics unless `(offsets, targets)` satisfy every CSR invariant (see
/// [`check_parts`]).
fn validate_parts<O: OffsetIndex>(offsets: &[O], targets: &[NodeId]) {
    if let Err(msg) = check_parts(offsets, targets) {
        panic!("{msg}");
    }
}

impl<O: OffsetIndex> CsrGraph<O> {
    /// Builds a CSR from raw parts, validating every invariant.
    ///
    /// This is the boundary constructor for untrusted input (I/O, tests).
    /// Internal construction paths whose pipelines establish the invariants
    /// themselves use [`Self::from_parts_unchecked`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotone, do not start at zero, or do
    /// not end at `targets.len()`, or if any adjacency list is unsorted or
    /// contains duplicates or out-of-range targets. These are programming
    /// errors in construction code, not user-input errors, hence panics
    /// rather than `Result`.
    pub fn from_parts(offsets: Vec<O>, targets: Vec<NodeId>) -> Self {
        validate_parts(&offsets, &targets);
        CsrGraph {
            offsets: Segment::from_vec(offsets),
            targets: Segment::from_vec(targets),
        }
    }

    /// Builds a CSR from trusted builder output without release-mode
    /// validation. Debug builds still run the full invariant check, so
    /// every test exercises it; release rebuilds skip the O(V+E) sweep the
    /// deterministic pipeline has already paid for.
    pub(crate) fn from_parts_unchecked(offsets: Vec<O>, targets: Vec<NodeId>) -> Self {
        Self::from_segments_unchecked(Segment::from_vec(offsets), Segment::from_vec(targets))
    }

    /// Builds a CSR directly over [`Segment`] storage — the snapshot
    /// loader's boundary. Trust comes from the snapshot's section
    /// checksums (always verified on load); paranoid loads additionally
    /// run [`check_parts`] before calling this. Debug builds re-validate
    /// unconditionally, mirroring [`Self::from_parts_unchecked`].
    pub(crate) fn from_segments_unchecked(offsets: Segment<O>, targets: Segment<NodeId>) -> Self {
        #[cfg(debug_assertions)]
        validate_parts(&offsets, &targets);
        debug_assert!(!offsets.is_empty());
        CsrGraph { offsets, targets }
    }

    /// Narrows the `usize` offsets produced by the builder's scan stage
    /// into this CSR's offset width. The caller must have checked
    /// [`OffsetIndex::fits`] on the arc total.
    pub(crate) fn from_scan_unchecked(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        let offsets: Vec<O> = offsets.into_iter().map(O::from_usize).collect();
        Self::from_parts_unchecked(offsets, targets)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored directed arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u` in this direction.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1].to_usize() - self.offsets[u].to_usize()
    }

    /// The sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u].to_usize()..self.offsets[u + 1].to_usize()]
    }

    /// Offset of the first neighbor of `u` inside [`Self::targets_raw`].
    #[inline]
    pub fn offset(&self, u: NodeId) -> usize {
        self.offsets[u as usize].to_usize()
    }

    /// The raw offsets array (length `num_vertices() + 1`).
    pub fn offsets_raw(&self) -> &[O] {
        &self.offsets
    }

    /// A handle to the offsets storage (cheap for views; the snapshot
    /// loader uses this to share one offsets section between the
    /// unweighted and weighted CSRs).
    pub(crate) fn offsets_segment(&self) -> Segment<O> {
        self.offsets.clone()
    }

    /// The raw flattened target array.
    pub fn targets_raw(&self) -> &[NodeId] {
        &self.targets
    }

    /// Resident bytes of this adjacency: offsets plus targets.
    pub fn graph_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<O>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// Returns `true` if edge `(u, v)` is present, via the shared
    /// galloping probe (exponential then binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        crate::intersect::contains(self.neighbors(u), v)
    }

    /// Iterates over `(u, v)` arcs in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_vertices() as NodeId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Re-expresses this adjacency with offset width `P`, or `None` if the
    /// arc count does not fit. Targets are shared-layout (`u32` either
    /// way), so only the offset array is converted.
    pub fn to_width<P: OffsetIndex>(&self) -> Option<CsrGraph<P>> {
        if !P::fits(self.num_edges()) {
            return None;
        }
        Some(CsrGraph {
            offsets: Segment::from_vec(
                self.offsets
                    .iter()
                    .map(|&o| P::from_usize(o.to_usize()))
                    .collect(),
            ),
            targets: self.targets.clone(),
        })
    }
}

/// Weighted compressed sparse row adjacency.
///
/// Weights are stored in a parallel array so that unweighted kernels can walk
/// `targets` without touching weights (matching GAP's `WNode` layout intent
/// while keeping cache behaviour predictable at this scale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WCsrGraph<O: OffsetIndex = u32> {
    csr: CsrGraph<O>,
    weights: Segment<Weight>,
}

impl<O: OffsetIndex> WCsrGraph<O> {
    /// Builds a weighted CSR from an unweighted CSR plus a parallel weight
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != csr.num_edges()`.
    pub fn from_parts(csr: CsrGraph<O>, weights: Vec<Weight>) -> Self {
        Self::from_segments(csr, Segment::from_vec(weights))
    }

    /// [`Self::from_parts`] over [`Segment`] storage (snapshot loads).
    pub(crate) fn from_segments(csr: CsrGraph<O>, weights: Segment<Weight>) -> Self {
        assert_eq!(
            weights.len(),
            csr.num_edges(),
            "weight array must parallel the target array"
        );
        WCsrGraph { csr, weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of stored directed arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.csr.degree(u)
    }

    /// The sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.csr.neighbors(u)
    }

    /// The weight slice parallel to [`Self::neighbors`] for `u`.
    pub fn weights(&self, u: NodeId) -> &[Weight] {
        let lo = self.csr.offset(u);
        let hi = self.csr.offset(u + 1);
        &self.weights[lo..hi]
    }

    /// Iterates `(neighbor, weight)` pairs of `u`.
    pub fn neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.weights(u).iter().copied())
    }

    /// The unweighted view of this adjacency.
    pub fn unweighted(&self) -> &CsrGraph<O> {
        &self.csr
    }

    /// The raw flattened weight array.
    pub fn weights_raw(&self) -> &[Weight] {
        &self.weights
    }

    /// Resident bytes of this adjacency: offsets, targets, and weights.
    pub fn graph_bytes(&self) -> usize {
        self.csr.graph_bytes() + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Re-expresses this adjacency with offset width `P` (see
    /// [`CsrGraph::to_width`]).
    pub fn to_width<P: OffsetIndex>(&self) -> Option<WCsrGraph<P>> {
        Some(WCsrGraph {
            csr: self.csr.to_width::<P>()?,
            weights: self.weights.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> {1,2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        CsrGraph::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn edge_iteration_covers_all_arcs() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rows_rejected() {
        CsrGraph::<u32>::from_parts(vec![0, 2], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_targets_rejected() {
        CsrGraph::<u32>::from_parts(vec![0, 1], vec![7]);
    }

    #[test]
    fn wide_instantiation_matches_narrow() {
        let narrow = diamond();
        let wide: CsrGraph<usize> = narrow.to_width().expect("usize always fits");
        assert_eq!(wide.num_vertices(), narrow.num_vertices());
        assert_eq!(wide.num_edges(), narrow.num_edges());
        for u in 0..narrow.num_vertices() as NodeId {
            assert_eq!(wide.neighbors(u), narrow.neighbors(u));
        }
        let back: CsrGraph<u32> = wide.to_width().expect("small graph narrows");
        assert_eq!(back, narrow);
    }

    #[test]
    fn graph_bytes_tracks_offset_width() {
        let narrow = diamond();
        let wide: CsrGraph<usize> = narrow.to_width().unwrap();
        // 5 offsets * 4 bytes + 4 targets * 4 bytes vs 5 * 8 + 4 * 4.
        assert_eq!(narrow.graph_bytes(), 5 * 4 + 4 * 4);
        assert_eq!(wide.graph_bytes(), 5 * 8 + 4 * 4);
        assert!(narrow.graph_bytes() < wide.graph_bytes());
    }

    #[test]
    fn weighted_parallel_arrays() {
        let g = diamond();
        let wg = WCsrGraph::from_parts(g, vec![10, 20, 30, 40]);
        assert_eq!(wg.weights(0), &[10, 20]);
        let pairs: Vec<_> = wg.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
        assert_eq!(
            wg.graph_bytes(),
            wg.unweighted().graph_bytes() + 4 * std::mem::size_of::<Weight>()
        );
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn weight_length_mismatch_rejected() {
        WCsrGraph::from_parts(diamond(), vec![1, 2]);
    }
}
