//! Raw edge lists — the interchange format between generators, I/O and the
//! [`Builder`](crate::Builder).

use crate::types::{NodeId, Weight};

/// An unweighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Edge { src, dst }
    }

    /// Returns the edge with its endpoints swapped.
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Returns `true` if both endpoints are the same vertex.
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((src, dst): (NodeId, NodeId)) -> Self {
        Edge { src, dst }
    }
}

/// A weighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WEdge {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Edge weight (positive for GAP SSSP inputs).
    pub weight: Weight,
}

impl WEdge {
    /// Creates a weighted edge.
    pub fn new(src: NodeId, dst: NodeId, weight: Weight) -> Self {
        WEdge { src, dst, weight }
    }

    /// Returns the edge with endpoints swapped, keeping the weight.
    pub fn reversed(self) -> Self {
        WEdge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }

    /// Drops the weight.
    pub fn unweighted(self) -> Edge {
        Edge {
            src: self.src,
            dst: self.dst,
        }
    }
}

impl From<(NodeId, NodeId, Weight)> for WEdge {
    fn from((src, dst, weight): (NodeId, NodeId, Weight)) -> Self {
        WEdge { src, dst, weight }
    }
}

/// A list of unweighted edges.
pub type EdgeList = Vec<Edge>;

/// A list of weighted edges.
pub type WEdgeList = Vec<WEdge>;

/// Convenience: builds an [`EdgeList`] from `(src, dst)` pairs.
pub fn edges<I>(pairs: I) -> EdgeList
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    pairs.into_iter().map(Edge::from).collect()
}

/// Convenience: builds a [`WEdgeList`] from `(src, dst, weight)` triples.
pub fn wedges<I>(triples: I) -> WEdgeList
where
    I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
{
    triples.into_iter().map(WEdge::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_reversal_roundtrips() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed().reversed(), e);
        assert_eq!(e.reversed(), Edge::new(7, 3));
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(4, 4).is_self_loop());
        assert!(!Edge::new(4, 5).is_self_loop());
    }

    #[test]
    fn weighted_edge_keeps_weight_on_reversal() {
        let e = WEdge::new(1, 2, 9);
        assert_eq!(e.reversed(), WEdge::new(2, 1, 9));
        assert_eq!(e.unweighted(), Edge::new(1, 2));
    }

    #[test]
    fn builders_from_tuples() {
        let el = edges([(0, 1), (1, 2)]);
        assert_eq!(el.len(), 2);
        let wl = wedges([(0, 1, 5)]);
        assert_eq!(wl[0].weight, 5);
    }
}
