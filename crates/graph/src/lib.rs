//! Graph substrate for the GAPBS reproduction.
//!
//! This crate provides everything the six framework crates consume:
//!
//! * [`CsrGraph`] / [`WCsrGraph`] — compressed sparse row adjacency with
//!   optional edge weights,
//! * [`Graph`] / [`WGraph`] — a directed or undirected graph holding both
//!   outgoing and incoming adjacency (GAP stores both so that transposition
//!   is never timed inside a kernel),
//! * [`Builder`] — edge-list ingestion with sorting, de-duplication,
//!   symmetrization and relabeling (the paper notes all evaluated frameworks
//!   sort adjacency lists and remove duplicate edges),
//! * [`gen`] — seeded generators for the five GAP input graphs
//!   (Road, Twitter, Web, Kron, Urand) at configurable scale,
//! * [`stats`] — the topology statistics reported in Table I
//!   (degree distribution classification and an approximate diameter probe),
//! * [`io`] — GAP-compatible `.el`/`.wel` text edge lists plus a binary snapshot format.
//!
//! # Example
//!
//! ```
//! use gapbs_graph::{gen, stats};
//!
//! let graph = gen::kron(10, 16, 42); // 2^10 vertices, avg degree 16
//! let summary = stats::summarize(&graph);
//! assert!(summary.num_vertices > 0);
//! ```

pub mod builder;
pub mod csr;
pub mod edgelist;
pub mod error;
pub mod gen;
pub mod graph;
pub mod intersect;
pub mod io;
pub mod perm;
pub mod rng;
pub mod scc;
pub mod segment;
pub mod snapshot;
pub mod stats;
pub mod strips;
pub mod types;

pub use builder::Builder;
pub use csr::{CsrGraph, WCsrGraph};
pub use edgelist::{Edge, EdgeList, WEdge, WEdgeList};
pub use error::{BuildError, GraphError, SnapshotError};
pub use graph::{AnyGraph, Graph, WGraph};
pub use segment::{MapRegion, Segment};
pub use snapshot::{CompressedCsr, Compression, Snapshot, SnapshotBundle, SnapshotContents};
pub use strips::Strips;
pub use types::{NodeId, OffsetIndex, Weight};
