//! Connected and strongly connected component discovery, used by the
//! harness to pick benchmark sources with non-trivial reach.
//!
//! GAP samples sources uniformly from non-zero-degree vertices; on its
//! full-size inputs nearly every such vertex sits in a giant (strongly)
//! connected component, so every trial does real work. At reproduction
//! scale a directed power-law graph has many low-reach vertices, so the
//! harness restricts candidates to the largest SCC (directed) or largest
//! component (undirected) to preserve the benchmark's intent.

use crate::graph::Graph;
use crate::types::NodeId;

/// Vertices of the largest weakly/fully connected component (undirected
/// reachability over out+in edges).
pub fn largest_wcc(g: &Graph) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut best: (usize, usize) = (0, 0); // (size, id)
    let mut next_id = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = next_id;
        next_id += 1;
        let mut size = 0usize;
        comp[start] = id;
        stack.push(start as NodeId);
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = id;
                    stack.push(v);
                }
            }
        }
        if size > best.0 {
            best = (size, id);
        }
    }
    (0..n as NodeId)
        .filter(|&v| comp[v as usize] == best.1)
        .collect()
}

/// Vertices of the largest strongly connected component (Kosaraju's
/// algorithm, iterative).
pub fn largest_scc(g: &Graph) -> Vec<NodeId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Pass 1: finish order via iterative DFS on out-edges.
    let mut visited = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    // Stack holds (vertex, next-child-index).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for start in 0..n as NodeId {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        stack.push((start, 0));
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            let row = g.out_neighbors(u);
            if *idx < row.len() {
                let v = row[*idx];
                *idx += 1;
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, assign components in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut best: (usize, usize) = (0, 0);
    let mut next_id = 0usize;
    let mut work: Vec<NodeId> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start as usize] != usize::MAX {
            continue;
        }
        let id = next_id;
        next_id += 1;
        let mut size = 0usize;
        comp[start as usize] = id;
        work.push(start);
        while let Some(u) = work.pop() {
            size += 1;
            for &v in g.in_neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = id;
                    work.push(v);
                }
            }
        }
        if size > best.0 {
            best = (size, id);
        }
    }
    (0..n as NodeId)
        .filter(|&v| comp[v as usize] == best.1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::edges;
    use crate::{gen, Builder};

    #[test]
    fn two_cycles_give_largest_scc() {
        // cycle {0,1,2} and cycle {3,4}, bridge 2->3.
        let g = Builder::new()
            .build(edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]))
            .unwrap();
        let scc = largest_scc(&g);
        assert_eq!(scc, vec![0, 1, 2]);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let g = Builder::new().build(edges([(0, 1), (1, 2)])).unwrap();
        assert_eq!(largest_scc(&g).len(), 1);
    }

    #[test]
    fn wcc_spans_direction_blind() {
        let g = Builder::new()
            .num_vertices(4)
            .build(edges([(0, 1), (2, 1)]))
            .unwrap();
        let wcc = largest_wcc(&g);
        assert_eq!(wcc, vec![0, 1, 2]);
    }

    #[test]
    fn undirected_giant_component_is_found() {
        let g = gen::urand(9, 8, 3);
        let wcc = largest_wcc(&g);
        assert!(wcc.len() > g.num_vertices() / 2);
    }

    #[test]
    fn symmetric_directed_scc_equals_wcc() {
        let g = gen::road(&gen::RoadConfig::gap_like(16), 2);
        let scc = largest_scc(&g);
        let wcc = largest_wcc(&g);
        assert_eq!(scc, wcc, "symmetric arcs make SCCs equal WCCs");
    }

    #[test]
    fn every_scc_member_reaches_every_other() {
        let g = gen::kron(7, 6, 5);
        // kron is undirected → symmetric, so SCC == giant component.
        let scc = largest_scc(&g);
        assert!(!scc.is_empty());
        // Reachability spot check from the first member.
        let (ecc, _) = crate::stats::bfs_eccentricity(&g, scc[0]);
        let _ = ecc; // reachability proven by eccentricity not panicking
    }
}
