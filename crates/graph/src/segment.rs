//! Backing storage for CSR arrays: owned vectors, or borrowed views
//! into a reference-counted region (an mmap'ed snapshot file, or a
//! decoded buffer shared between the weighted and unweighted forms of
//! one graph).
//!
//! Every accessor on [`crate::CsrGraph`] returns plain slices, so the
//! kernels never see the distinction; the point of [`Segment`] is that
//! a snapshot load can hand the adjacency arrays straight out of the
//! page cache without copying them, while the builder keeps producing
//! ordinary `Vec`s.

use std::sync::Arc;

/// Marker for plain-old-data element types that may back a [`Segment`]
/// and be reinterpreted from raw snapshot bytes: fixed layout, no
/// padding, no drop glue, any bit pattern valid.
///
/// # Safety
///
/// Implementors must be `repr`-stable primitives with the above
/// properties.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}

/// Reinterprets a typed slice as its underlying bytes.
pub(crate) fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // Safety: T is Pod (no padding, fixed layout); the byte length
    // cannot overflow because the slice exists.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

/// A read-only byte region: an `mmap`'ed file on 64-bit unix targets,
/// or a heap buffer elsewhere (and whenever `mmap` fails). The heap
/// fallback is allocated 8-byte-aligned so typed views are valid either
/// way; file sections are 64-byte-aligned on top of that.
pub struct MapRegion {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap {
        raw: *mut core::ffi::c_void,
    },
    Heap(#[allow(dead_code)] Vec<u64>),
}

// Safety: the region is read-only for its whole lifetime; the pointer
// refers to memory owned by `backing` (the mapping or the heap buffer).
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    //! Minimal raw `mmap` bindings. The workspace carries no external
    //! crates, so the two syscalls the snapshot loader needs are
    //! declared directly against the platform libc that every unix
    //! Rust target already links.
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MapRegion {
    /// Opens `path` read-only: `mmap` where available (unless
    /// `GAPBS_NO_MMAP=1`, which forces the heap path for fallback-parity
    /// testing), a full read into an aligned heap buffer otherwise.
    pub fn open(path: &std::path::Path) -> std::io::Result<MapRegion> {
        let force_heap = std::env::var_os("GAPBS_NO_MMAP").is_some_and(|v| v == "1");
        Self::open_with(path, force_heap)
    }

    /// [`MapRegion::open`] with an explicit backing choice:
    /// `force_heap` skips `mmap` and reads the file into the aligned
    /// heap buffer (the path non-unix targets always take).
    pub fn open_with(path: &std::path::Path, force_heap: bool) -> std::io::Result<MapRegion> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file exceeds addressable memory",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Self::heap(Vec::new(), 0));
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        let _ = force_heap;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if !force_heap {
            use std::os::unix::io::AsRawFd;
            let raw = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if raw as isize != -1 {
                return Ok(MapRegion {
                    ptr: raw as *const u8,
                    len,
                    backing: Backing::Mmap { raw },
                });
            }
        }
        Self::read_heap(file, len)
    }

    /// Reads the whole file into an 8-byte-aligned heap buffer.
    fn read_heap(mut file: std::fs::File, len: usize) -> std::io::Result<MapRegion> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // Safety: the u64 buffer covers at least `len` bytes and u64 has
        // no invalid bit patterns.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(Self::heap(words, len))
    }

    fn heap(words: Vec<u64>, len: usize) -> MapRegion {
        MapRegion {
            ptr: words.as_ptr() as *const u8,
            len,
            backing: Backing::Heap(words),
        }
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: ptr/len describe the live mapping or heap buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the region is a real memory mapping (as opposed to
    /// the heap fallback).
    pub fn is_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mmap { raw } = self.backing {
            // Safety: raw/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(raw, self.len) };
        }
    }
}

impl std::fmt::Debug for MapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapRegion")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// A read-only typed array that is either owned (builder output) or a
/// view into a shared region (snapshot load, shared decode buffer).
/// Dereferences to `&[T]`; equality, ordering and hashing follow the
/// slice contents regardless of backing.
pub struct Segment<T: Pod> {
    repr: Repr<T>,
}

enum Repr<T: Pod> {
    Owned(Vec<T>),
    View {
        ptr: *const T,
        len: usize,
        /// Keeps the backing storage (a [`MapRegion`] or a shared
        /// `Vec`) alive for as long as this view exists.
        _owner: Arc<dyn std::any::Any + Send + Sync>,
    },
}

// Safety: views are immutable and their owner is Send + Sync.
unsafe impl<T: Pod> Send for Segment<T> {}
unsafe impl<T: Pod> Sync for Segment<T> {}

impl<T: Pod> Segment<T> {
    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Segment<T> {
        Segment {
            repr: Repr::Owned(v),
        }
    }

    /// A cheap view of a shared vector (used to share one decoded
    /// target array between a graph and its weighted companion).
    pub fn from_shared_vec(v: Arc<Vec<T>>) -> Segment<T> {
        let ptr = v.as_ptr();
        let len = v.len();
        Segment {
            repr: Repr::View {
                ptr,
                len,
                _owner: v,
            },
        }
    }

    /// A zero-copy view of `len` elements at `byte_offset` inside
    /// `region`. Returns `None` if the range is out of bounds or
    /// misaligned for `T`.
    pub fn from_region(
        region: &Arc<MapRegion>,
        byte_offset: usize,
        len: usize,
    ) -> Option<Segment<T>> {
        let elem = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(elem)?;
        let end = byte_offset.checked_add(byte_len)?;
        if end > region.len() {
            return None;
        }
        let ptr = unsafe { region.ptr.add(byte_offset) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Segment {
            repr: Repr::View {
                ptr: ptr as *const T,
                len,
                _owner: Arc::clone(region) as Arc<dyn std::any::Any + Send + Sync>,
            },
        })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::View { ptr, len, .. } => {
                if *len == 0 {
                    &[]
                } else {
                    // Safety: ptr/len were bounds- and alignment-checked
                    // at construction and the owner is kept alive.
                    unsafe { std::slice::from_raw_parts(*ptr, *len) }
                }
            }
        }
    }

    /// `true` when this segment borrows shared storage rather than
    /// owning its elements.
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }
}

impl<T: Pod> std::ops::Deref for Segment<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Segment<T> {
    fn from(v: Vec<T>) -> Segment<T> {
        Segment::from_vec(v)
    }
}

impl<T: Pod> Default for Segment<T> {
    fn default() -> Self {
        Segment::from_vec(Vec::new())
    }
}

impl<T: Pod> Clone for Segment<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            // Owned data is deep-copied (the pre-segment semantics);
            // views clone the pointer and bump the owner refcount.
            Repr::Owned(v) => Segment::from_vec(v.clone()),
            Repr::View { ptr, len, _owner } => Segment {
                repr: Repr::View {
                    ptr: *ptr,
                    len: *len,
                    _owner: Arc::clone(_owner),
                },
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Segment<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Segment<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_segment_behaves_like_its_vec() {
        let s = Segment::from_vec(vec![1u32, 2, 3]);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_view());
        let c = s.clone();
        assert_eq!(s, c);
    }

    #[test]
    fn shared_vec_views_alias_without_copying() {
        let v = Arc::new(vec![7u32, 8, 9]);
        let a = Segment::from_shared_vec(Arc::clone(&v));
        let b = a.clone();
        assert!(a.is_view() && b.is_view());
        assert_eq!(a.as_ptr(), b.as_ptr(), "clones alias the same storage");
        assert_eq!(&b[..], &[7, 8, 9]);
    }

    #[test]
    fn map_region_round_trips_file_bytes() {
        let dir = std::env::temp_dir().join(format!("gapbs-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let region = Arc::new(MapRegion::open(&path).unwrap());
        assert_eq!(region.as_bytes(), &payload[..]);

        // A typed view over the first 1024 u32 words matches a CPU-side
        // reinterpretation of the same bytes.
        let seg: Segment<u32> = Segment::from_region(&region, 0, 1024).unwrap();
        let expect: Vec<u32> = payload[..4096]
            .chunks_exact(4)
            .map(|c| u32::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(&seg[..], &expect[..]);

        // Out-of-bounds and misaligned views are refused.
        assert!(Segment::<u32>::from_region(&region, 0, region.len()).is_none());
        assert!(Segment::<u32>::from_region(&region, 1, 4).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_matches_mmap() {
        let dir = std::env::temp_dir().join(format!("gapbs-seg-fb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let payload: Vec<u8> = (0..999u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mapped = MapRegion::open(&path).unwrap();
        let heaped = MapRegion::open_with(&path, true).unwrap();
        assert!(!heaped.is_mmap());
        assert_eq!(mapped.as_bytes(), heaped.as_bytes());
        std::fs::remove_file(&path).ok();
    }
}
