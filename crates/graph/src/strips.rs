//! Degree-aware destination strips for pull-direction kernels.
//!
//! A pull sweep (`bottom_up_step`, PageRank's in-edge accumulation, grb's
//! `mxv`) writes each destination vertex exactly once but streams that
//! vertex's whole in-edge row. Scheduling such sweeps in fixed-size vertex
//! chunks makes chunk cost track *degree*, not count — on power-law graphs
//! one hub-heavy chunk straggles while dozens of leaf chunks finish
//! instantly, and the per-chunk working set (destination window + its
//! in-edge span) can blow past the LLC.
//!
//! [`Strips`] instead partitions the destination range by *in-edge mass*:
//! every strip spans roughly the same number of in-edges (found by binary
//! search over the CSR offsets — the GraphMat-style partitioning argument
//! from the related work), sized so a strip's streamed row bytes plus its
//! resident destination window fit an LLC budget. Strip boundaries depend
//! only on the graph, never on the thread count, and every destination is
//! written by exactly one strip — so strip-scheduled sweeps stay
//! bit-identical across thread counts and schedules.

use crate::csr::CsrGraph;
use crate::types::{NodeId, OffsetIndex};
use std::ops::Range;

/// Per-strip byte budget for the streamed in-edge targets plus the
/// resident destination window: 2 MiB, half of a typical per-core LLC
/// slice, leaving room for the source-side array the sweep reads through.
pub const STRIP_BYTES: usize = 2 << 20;

/// Bytes each in-edge target contributes to the streamed working set.
const BYTES_PER_EDGE: usize = std::mem::size_of::<NodeId>();

/// A degree-aware partition of a destination vertex range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strips {
    /// Strictly increasing vertex boundaries; strip `s` covers
    /// `bounds[s]..bounds[s + 1]`.
    bounds: Vec<u32>,
}

impl Strips {
    /// Partitions the destinations of `csr` (the *in*-adjacency a pull
    /// kernel walks) into strips of roughly [`STRIP_BYTES`] streamed
    /// bytes each.
    pub fn pull<O: OffsetIndex>(csr: &CsrGraph<O>) -> Self {
        Strips::with_budget(csr, STRIP_BYTES)
    }

    /// [`Strips::pull`] with an explicit byte budget (exposed for the
    /// layout bench's sizing experiments).
    pub fn with_budget<O: OffsetIndex>(csr: &CsrGraph<O>, budget_bytes: usize) -> Self {
        let offsets = csr.offsets_raw();
        Self::build(
            csr.num_vertices(),
            csr.num_edges(),
            budget_bytes,
            |target| offsets.partition_point(|&o| o.to_usize() <= target) - 1,
        )
    }

    /// [`Strips::pull`] over a delta-varint compressed adjacency. The
    /// compressed form keeps the ordinary element offsets, so strip
    /// boundaries (and therefore pull-sweep results) are identical to
    /// the raw layout's.
    pub fn pull_compressed<O: OffsetIndex>(comp: &crate::snapshot::CompressedCsr<O>) -> Self {
        let offsets = comp.offsets_raw();
        Self::build(
            comp.num_vertices(),
            comp.num_edges(),
            STRIP_BYTES,
            |target| offsets.partition_point(|&o| o.to_usize() <= target) - 1,
        )
    }

    /// [`Strips::pull`] over raw `u64` row offsets, for CSR-shaped
    /// structures outside this crate (grb's `GrbMatrix` keeps 64-bit
    /// offsets as the paper's index-width tax).
    pub fn pull_offsets(offsets: &[u64]) -> Self {
        let n = offsets.len().saturating_sub(1);
        let m = offsets.last().copied().unwrap_or(0) as usize;
        Self::build(n, m, STRIP_BYTES, |target| {
            offsets.partition_point(|&o| o as usize <= target) - 1
        })
    }

    fn build(
        n: usize,
        m: usize,
        budget_bytes: usize,
        last_row_at_or_before: impl Fn(usize) -> usize,
    ) -> Self {
        let edges_per_strip = (budget_bytes / BYTES_PER_EDGE).max(1);
        let num_strips = m.div_ceil(edges_per_strip).max(1);
        let mut bounds = Vec::with_capacity(num_strips + 1);
        bounds.push(0u32);
        for s in 1..num_strips {
            let target = s * edges_per_strip;
            // Last vertex whose row starts at or before the edge target:
            // strips inherit the row structure, so a single huge row is
            // never split (it simply owns its strip).
            let v = last_row_at_or_before(target);
            let v = (v as u32).min(n as u32);
            if v > *bounds.last().expect("non-empty") {
                bounds.push(v);
            }
        }
        if *bounds.last().expect("non-empty") < n as u32 || n == 0 {
            bounds.push(n as u32);
        }
        Strips { bounds }
    }

    /// A uniform fixed-width partition — the pre-layout-engine scheduling
    /// shape, kept for the layout bench's baseline arm.
    pub fn uniform(n: usize, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        let mut bounds: Vec<u32> = (0..n as u32).step_by(chunk).collect();
        if bounds.is_empty() {
            bounds.push(0);
        }
        bounds.push(n as u32);
        Strips { bounds }
    }

    /// Number of strips.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// `true` when the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.bounds.len() < 2 || *self.bounds.last().expect("non-empty") == 0
    }

    /// The destination range of strip `s`.
    #[inline]
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s] as usize..self.bounds[s + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cover_and_disjoint(strips: &Strips, n: usize) {
        let mut next = 0usize;
        for s in 0..strips.len() {
            let r = strips.range(s);
            assert_eq!(
                r.start,
                next,
                "strip {s} must start where {} ended",
                s.max(1) - 1
            );
            assert!(r.end > r.start, "strip {s} must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "strips must cover every destination");
    }

    #[test]
    fn strips_partition_every_graph_shape() {
        for g in [
            gen::kron(10, 16, 7),
            gen::urand(10, 8, 3),
            gen::road(&gen::RoadConfig::gap_like(24), 1),
        ] {
            let strips = Strips::with_budget(g.in_csr(), 4 << 10);
            cover_and_disjoint(&strips, g.num_vertices());
        }
    }

    #[test]
    fn strip_edge_mass_is_balanced() {
        let g = gen::kron(11, 16, 5);
        let csr = g.in_csr();
        let budget_edges = (8 << 10) / std::mem::size_of::<NodeId>();
        let strips = Strips::with_budget(csr, 8 << 10);
        assert!(strips.len() > 1, "scale-11 kron must need several strips");
        let max_row: usize = g.vertices().map(|v| csr.degree(v)).max().unwrap();
        for s in 0..strips.len() {
            let edges: usize = strips.range(s).map(|v| csr.degree(v as u32)).sum();
            // A strip never exceeds the budget by more than one row (rows
            // are never split).
            assert!(
                edges <= budget_edges + max_row,
                "strip {s} carries {edges} edges vs budget {budget_edges} + row {max_row}"
            );
        }
    }

    #[test]
    fn uniform_matches_fixed_chunking() {
        let strips = Strips::uniform(10, 4);
        assert_eq!(strips.len(), 3);
        assert_eq!(strips.range(0), 0..4);
        assert_eq!(strips.range(2), 8..10);
        cover_and_disjoint(&strips, 10);
    }

    #[test]
    fn empty_graph_yields_empty_partition() {
        let strips = Strips::uniform(0, 8);
        assert!(strips.is_empty());
        assert_eq!(strips.len(), 1);
        assert_eq!(strips.range(0), 0..0);
    }
}
