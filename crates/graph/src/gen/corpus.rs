//! The benchmark corpus: five graphs mirroring Table I at configurable
//! scale.
//!
//! | Name    | Stand-in for        | Directed | Degree family | Diameter regime |
//! |---------|---------------------|----------|---------------|-----------------|
//! | Road    | USA road network    | yes      | bounded (≈2.4)| huge            |
//! | Twitter | follow graph        | yes      | power law (≈24)| tiny           |
//! | Web     | .sk web crawl       | yes      | power law (≈38)| moderate (tail)|
//! | Kron    | Graph500 Kronecker  | no       | power law (≈16)| tiny           |
//! | Urand   | Erdős–Rényi         | no       | normal (≈16)  | tiny            |

use super::rmat::{rmat_edges_in, RmatConfig};
use super::road::{road_edges_in, RoadConfig};
use super::{build_graph_in, erdos, weighted_companion_in};
use crate::edgelist::Edge;
use crate::graph::{Graph, WGraph};
use crate::types::NodeId;
use gapbs_parallel::ThreadPool;

/// Identifier of one of the five benchmark graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphSpec {
    /// Road-network-like lattice: bounded degree, huge diameter.
    Road,
    /// Social-network-like R-MAT: heavy power-law skew, tiny diameter.
    Twitter,
    /// Web-crawl-like R-MAT with a high-diameter tail.
    Web,
    /// Graph500 Kronecker, undirected.
    Kron,
    /// Uniform random (Erdős–Rényi), undirected.
    Urand,
}

impl GraphSpec {
    /// All five benchmark graphs in Table IV's column order
    /// (Web, Twitter, Road, Kron, Urand).
    pub const TABLE_ORDER: [GraphSpec; 5] = [
        GraphSpec::Web,
        GraphSpec::Twitter,
        GraphSpec::Road,
        GraphSpec::Kron,
        GraphSpec::Urand,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            GraphSpec::Road => "Road",
            GraphSpec::Twitter => "Twitter",
            GraphSpec::Web => "Web",
            GraphSpec::Kron => "Kron",
            GraphSpec::Urand => "Urand",
        }
    }

    /// Whether the graph is directed (Table I's `Directed` column).
    pub fn is_directed(self) -> bool {
        matches!(self, GraphSpec::Road | GraphSpec::Twitter | GraphSpec::Web)
    }

    /// The degree-distribution family expected of this topology
    /// (Table I's `Degree Distribution` column).
    pub fn degree_family(self) -> DegreeFamily {
        match self {
            GraphSpec::Road => DegreeFamily::Bounded,
            GraphSpec::Twitter | GraphSpec::Web | GraphSpec::Kron => DegreeFamily::Power,
            GraphSpec::Urand => DegreeFamily::Normal,
        }
    }

    /// Whether the topology has a high diameter (drives algorithm selection
    /// heuristics in Galois, §V).
    pub fn high_diameter(self) -> bool {
        matches!(self, GraphSpec::Road)
    }

    /// Deterministic seed used for this graph's generator.
    pub fn seed(self) -> u64 {
        match self {
            GraphSpec::Road => 0x0c0a_d001,
            GraphSpec::Twitter => 0x7717_7e20,
            GraphSpec::Web => 0x3e5b_c4a11,
            GraphSpec::Kron => 0x6b20_4e00,
            GraphSpec::Urand => 0x02a4_d000,
        }
    }

    /// Generates the edge list, vertex count and symmetrize flag for this
    /// graph at the given scale, drawing on `pool`. The output is a pure
    /// function of the spec and scale — pool size never changes it.
    fn edges_in(self, scale: Scale, pool: &ThreadPool) -> (usize, Vec<Edge>, bool) {
        match self {
            GraphSpec::Road => {
                let cfg = RoadConfig::gap_like(scale.road_side());
                (
                    cfg.num_vertices(),
                    road_edges_in(&cfg, self.seed(), pool),
                    false,
                )
            }
            GraphSpec::Twitter => {
                let cfg = RmatConfig {
                    scale: scale.rmat_scale(),
                    edges_per_vertex: 24,
                    a: 0.65,
                    b: 0.15,
                    c: 0.15,
                    shuffle_ids: true,
                };
                (
                    cfg.num_vertices(),
                    rmat_edges_in(&cfg, self.seed(), pool),
                    false,
                )
            }
            GraphSpec::Web => {
                let cfg = RmatConfig {
                    scale: scale.rmat_scale(),
                    edges_per_vertex: 38,
                    a: 0.60,
                    b: 0.19,
                    c: 0.19,
                    shuffle_ids: true,
                };
                let mut edges = rmat_edges_in(&cfg, self.seed(), pool);
                let core_n = cfg.num_vertices();
                // High-diameter tail: a bidirectional chain of extra pages
                // hanging off page 0 stretches the diameter the way deep
                // site hierarchies do in the .sk crawl (Table I: 135 vs
                // Twitter's 14).
                let tail = 10 * scale.rmat_scale() as usize;
                let mut prev = 0 as NodeId;
                for i in 0..tail {
                    let v = (core_n + i) as NodeId;
                    edges.push(Edge::new(prev, v));
                    edges.push(Edge::new(v, prev));
                    prev = v;
                }
                (core_n + tail, edges, false)
            }
            GraphSpec::Kron => {
                let cfg = RmatConfig::graph500(scale.rmat_scale() + 1, 8);
                (
                    cfg.num_vertices(),
                    rmat_edges_in(&cfg, self.seed(), pool),
                    true,
                )
            }
            GraphSpec::Urand => {
                let s = scale.rmat_scale() + 1;
                (
                    1 << s,
                    erdos::urand_edges_in(s, 16, self.seed(), pool),
                    true,
                )
            }
        }
    }

    /// Generates the unweighted graph at the given scale.
    pub fn generate(self, scale: Scale) -> Graph {
        self.generate_in(scale, &ThreadPool::new(1))
    }

    /// [`GraphSpec::generate`] with generation and construction on `pool`.
    pub fn generate_in(self, scale: Scale, pool: &ThreadPool) -> Graph {
        let (n, edges, sym) = self.edges_in(scale, pool);
        build_graph_in(n, edges, sym, pool)
    }

    /// Generates the weighted companion (same topology, GAP-style uniform
    /// weights) at the given scale.
    pub fn generate_weighted(self, scale: Scale) -> WGraph {
        self.generate_weighted_in(scale, &ThreadPool::new(1))
    }

    /// [`GraphSpec::generate_weighted`] with generation and construction
    /// on `pool`.
    pub fn generate_weighted_in(self, scale: Scale, pool: &ThreadPool) -> WGraph {
        let (n, edges, sym) = self.edges_in(scale, pool);
        weighted_companion_in(n, &edges, sym, self.seed(), pool)
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Degree-distribution family, as classified in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeFamily {
    /// Bounded maximum degree (road networks).
    Bounded,
    /// Power-law / heavy-tailed.
    Power,
    /// Concentrated around the mean (uniform random).
    Normal,
}

impl std::fmt::Display for DegreeFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegreeFamily::Bounded => "bounded",
            DegreeFamily::Power => "power",
            DegreeFamily::Normal => "normal",
        })
    }
}

/// Corpus scale presets. The paper's graphs have 10⁸–10⁹ edges; these
/// presets shrink every graph proportionally so that the full 30-test
/// matrix runs on a laptop while preserving the topology contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Sub-second corpus for unit and property tests (≈1k vertices).
    Tiny,
    /// Seconds-scale corpus for integration tests (≈8k vertices).
    Small,
    /// Default benchmark corpus (≈16–64k vertices, 10⁵–10⁶ arcs).
    Medium,
    /// Stress corpus: ≈16× Medium edge counts (10⁶–10⁷ arcs), the tier
    /// the snapshot cache makes practical — regenerating it from
    /// scratch on every process start is what snapshots eliminate.
    Large,
}

impl Scale {
    /// log2 vertex count used for the directed R-MAT graphs.
    fn rmat_scale(self) -> u32 {
        match self {
            Scale::Tiny => 9,
            Scale::Small => 12,
            Scale::Medium => 14,
            Scale::Large => 18,
        }
    }

    /// Side length of the road lattice.
    fn road_side(self) -> usize {
        match self {
            Scale::Tiny => 24,
            Scale::Small => 64,
            Scale::Medium => 160,
            Scale::Large => 640,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        })
    }
}

/// One generated corpus member: the spec plus both graph forms.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Which benchmark graph this is.
    pub spec: GraphSpec,
    /// Unweighted form (BFS, PR, CC, BC, TC).
    pub graph: Graph,
    /// Weighted companion with identical topology (SSSP).
    pub wgraph: WGraph,
}

/// Generates the full five-graph corpus at the given scale, in Table IV
/// column order.
pub fn corpus(scale: Scale) -> Vec<CorpusEntry> {
    corpus_in(scale, &ThreadPool::new(1))
}

/// [`corpus`] with generation and construction on `pool` (identical
/// output for every pool size).
pub fn corpus_in(scale: Scale, pool: &ThreadPool) -> Vec<CorpusEntry> {
    GraphSpec::TABLE_ORDER
        .iter()
        .map(|&spec| CorpusEntry {
            spec,
            graph: spec.generate_in(scale, pool),
            wgraph: spec.generate_weighted_in(scale, pool),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_five_entries_in_table_order() {
        let c = corpus(Scale::Tiny);
        let names: Vec<_> = c.iter().map(|e| e.spec.name()).collect();
        assert_eq!(names, ["Web", "Twitter", "Road", "Kron", "Urand"]);
    }

    #[test]
    fn directedness_matches_table_one() {
        for entry in corpus(Scale::Tiny) {
            assert_eq!(
                entry.graph.is_directed(),
                entry.spec.is_directed(),
                "{}",
                entry.spec
            );
        }
    }

    #[test]
    fn weighted_and_unweighted_topologies_agree() {
        for entry in corpus(Scale::Tiny) {
            assert_eq!(entry.graph.num_vertices(), entry.wgraph.num_vertices());
            assert_eq!(entry.graph.num_arcs(), entry.wgraph.num_arcs());
            let g = &entry.graph;
            for u in g.vertices().step_by(37) {
                assert_eq!(g.out_neighbors(u), entry.wgraph.out_neighbors(u));
            }
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = GraphSpec::Kron.generate(Scale::Tiny);
        let b = GraphSpec::Kron.generate(Scale::Tiny);
        assert_eq!(a, b);
    }
}
