//! Erdős–Rényi uniform random generation (the `Urand` input).
//!
//! GAP's Urand graph is a uniform random graph with the same vertex and
//! edge counts as Kron, giving a normal(ish) degree distribution and a low
//! diameter without power-law hubs — the topology the paper uses to isolate
//! skew effects (e.g. Afforest being less effective on Urand, §V-C).

use super::{build_graph, EDGE_BLOCK};
use crate::edgelist::Edge;
use crate::graph::Graph;
use crate::rng::{mix64, SeededRng};
use crate::types::NodeId;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Generates `n * edges_per_vertex / 2` uniform random edge tuples over
/// `2^scale` vertices (serial wrapper over [`urand_edges_in`]).
pub fn urand_edges(scale: u32, edges_per_vertex: usize, seed: u64) -> Vec<Edge> {
    urand_edges_in(scale, edges_per_vertex, seed, &ThreadPool::new(1))
}

/// [`urand_edges`] on a pool: fixed-size blocks with per-block derived
/// RNG streams, so the edge list is identical for every pool size.
pub fn urand_edges_in(
    scale: u32,
    edges_per_vertex: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Vec<Edge> {
    let n = 1usize << scale;
    let m = n * (edges_per_vertex / 2);
    let mut edges = vec![Edge::new(0, 0); m];
    let out = SharedSlice::new(&mut edges);
    pool.for_each_index(m.div_ceil(EDGE_BLOCK), Schedule::Dynamic(1), |block| {
        let mut rng = SeededRng::seed_from_u64(mix64(seed, block as u64));
        let lo = block * EDGE_BLOCK;
        let hi = (lo + EDGE_BLOCK).min(m);
        for i in lo..hi {
            let src = rng.gen_range(0..n) as NodeId;
            let dst = rng.gen_range(0..n) as NodeId;
            // SAFETY: blocks partition the output.
            unsafe { out.write(i, Edge::new(src, dst)) };
        }
    });
    edges
}

/// Generates the undirected `Urand` benchmark graph with target arc degree
/// `edges_per_vertex`.
pub fn urand(scale: u32, edges_per_vertex: usize, seed: u64) -> Graph {
    let edges = urand_edges(scale, edges_per_vertex, seed);
    build_graph(1 << scale, edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urand_has_uniform_degrees() {
        let g = urand(10, 16, 9);
        assert_eq!(g.num_vertices(), 1024);
        assert!(!g.is_directed());
        let max_deg = g.vertices().map(|u| g.out_degree(u)).max().unwrap();
        let avg = g.average_degree();
        // Uniform random: max degree stays within a small factor of average.
        assert!(
            (max_deg as f64) < avg * 4.0,
            "max {max_deg} vs avg {avg} too skewed for urand"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(urand_edges(8, 8, 3), urand_edges(8, 8, 3));
        assert_ne!(urand_edges(8, 8, 3), urand_edges(8, 8, 4));
    }
}
