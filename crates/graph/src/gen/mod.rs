//! Seeded graph generators reproducing the topology classes of Table I.
//!
//! The paper's corpus cannot be redistributed here (Twitter/Web/Road are
//! multi-gigabyte downloads), so each real-world graph is replaced by a
//! synthetic generator matching the attributes GAP's workload study found
//! decisive: degree-distribution family, average degree, and diameter
//! regime. The two synthetic graphs (Kron, Urand) use the same generator
//! definitions as the originals. See DESIGN.md §2 for the substitution
//! rationale.
//!
//! All generators are deterministic given a seed.

mod erdos;
mod rmat;
mod road;

pub mod corpus;

pub use corpus::{corpus, GraphSpec, Scale};
pub use erdos::{urand, urand_edges};
pub use rmat::{kron, kron_edges, rmat_edges, RmatConfig};
pub use road::{road, road_edges, RoadConfig};

use crate::builder::Builder;
use crate::edgelist::{Edge, WEdge};
use crate::graph::{Graph, WGraph};
use crate::types::Weight;
use crate::rng::SeededRng;

/// Maximum generated edge weight, exclusive. GAP draws uniform integer
/// weights from `[1, 256)`.
pub const MAX_WEIGHT: Weight = 256;

/// Attaches uniform random weights in `[1, 256)` to an edge list, the way
/// GAP synthesizes weights for SSSP inputs.
pub fn with_uniform_weights(edges: &[Edge], seed: u64) -> Vec<WEdge> {
    let mut rng = SeededRng::seed_from_u64(seed ^ 0x5747_4150); // "GAPW"
    edges
        .iter()
        .map(|e| WEdge::new(e.src, e.dst, rng.gen_range(1..MAX_WEIGHT)))
        .collect()
}

/// Builds an unweighted graph from generated edges.
///
/// # Panics
///
/// Panics only on internal generator bugs (endpoints are generated in
/// range by construction).
pub(crate) fn build_graph(n: usize, edges: Vec<Edge>, symmetrize: bool) -> Graph {
    Builder::new()
        .num_vertices(n)
        .symmetrize(symmetrize)
        .build(edges)
        .expect("generator produced in-range endpoints")
}

/// Builds the weighted companion of a generated graph, reusing the edge
/// list so that the weighted and unweighted graphs have identical topology.
pub fn weighted_companion(n: usize, edges: &[Edge], symmetrize: bool, seed: u64) -> WGraph {
    let wedges = with_uniform_weights(edges, seed);
    Builder::new()
        .num_vertices(n)
        .symmetrize(symmetrize)
        .build_weighted(wedges)
        .expect("generator produced in-range endpoints and positive weights")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::edges;

    #[test]
    fn weights_are_in_gap_range_and_deterministic() {
        let el = edges([(0, 1), (1, 2), (2, 0)]);
        let w1 = with_uniform_weights(&el, 7);
        let w2 = with_uniform_weights(&el, 7);
        assert_eq!(w1, w2);
        assert!(w1.iter().all(|e| (1..MAX_WEIGHT).contains(&e.weight)));
        let w3 = with_uniform_weights(&el, 8);
        assert_ne!(w1, w3, "different seeds should give different weights");
    }

    #[test]
    fn weighted_companion_matches_topology() {
        let el = edges([(0, 1), (1, 2)]);
        let g = build_graph(3, el.clone(), true);
        let wg = weighted_companion(3, &el, true, 1);
        assert_eq!(g.num_vertices(), wg.num_vertices());
        assert_eq!(g.num_arcs(), wg.num_arcs());
        for u in g.vertices() {
            assert_eq!(g.out_neighbors(u), wg.out_neighbors(u));
        }
    }
}
