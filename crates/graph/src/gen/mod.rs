//! Seeded graph generators reproducing the topology classes of Table I.
//!
//! The paper's corpus cannot be redistributed here (Twitter/Web/Road are
//! multi-gigabyte downloads), so each real-world graph is replaced by a
//! synthetic generator matching the attributes GAP's workload study found
//! decisive: degree-distribution family, average degree, and diameter
//! regime. The two synthetic graphs (Kron, Urand) use the same generator
//! definitions as the originals. See DESIGN.md §2 for the substitution
//! rationale.
//!
//! All generators are deterministic given a seed.

mod erdos;
mod rmat;
mod road;

pub mod corpus;

pub use corpus::{corpus, corpus_in, GraphSpec, Scale};
pub use erdos::{urand, urand_edges, urand_edges_in};
pub use rmat::{kron, kron_edges, kron_edges_in, rmat_edges, rmat_edges_in, RmatConfig};
pub use road::{road, road_edges, road_edges_in, RoadConfig};

use crate::builder::Builder;
use crate::edgelist::{Edge, WEdge};
use crate::graph::{Graph, WGraph};
use crate::rng::mix64;
use crate::types::Weight;
use gapbs_parallel::{scatter, Schedule, ThreadPool};

/// Maximum generated edge weight, exclusive. GAP draws uniform integer
/// weights from `[1, 256)`.
pub const MAX_WEIGHT: Weight = 256;

/// Edge tuples emitted per RNG block by the parallel generators. Fixed
/// (never derived from the thread count) so the emitted stream is a pure
/// function of the seed.
pub(crate) const EDGE_BLOCK: usize = 4096;

/// Attaches uniform random weights in `[1, 256)` to an edge list, the way
/// GAP synthesizes weights for SSSP inputs (serial wrapper over
/// [`with_uniform_weights_in`]).
pub fn with_uniform_weights(edges: &[Edge], seed: u64) -> Vec<WEdge> {
    with_uniform_weights_in(edges, seed, &ThreadPool::new(1))
}

/// [`with_uniform_weights`] on a pool. Weights are *counter-based*: each
/// edge's weight is a hash of the seed, the edge's list position, and
/// its endpoints — no sequential RNG stream — so assignment is
/// order-independent, embarrassingly parallel, and identical for every
/// pool size.
pub fn with_uniform_weights_in(edges: &[Edge], seed: u64, pool: &ThreadPool) -> Vec<WEdge> {
    let base = seed ^ 0x5747_4150; // "GAPW"
    let mut out = vec![WEdge::new(0, 0, 1); edges.len()];
    scatter::fill_with(pool, &mut out, Schedule::Static, |i| {
        let e = edges[i];
        WEdge::new(e.src, e.dst, weight_at(base, i, e))
    });
    out
}

/// The counter-based weight of the edge at `index`: uniform in
/// `[1, MAX_WEIGHT)` (the modulo bias over 255 buckets of a 64-bit hash
/// is ~2^-56, far below anything the corpus statistics can see).
fn weight_at(base: u64, index: usize, e: Edge) -> Weight {
    let h = mix64(
        mix64(base, index as u64),
        (u64::from(e.src) << 32) | u64::from(e.dst),
    );
    (1 + (h % (MAX_WEIGHT as u64 - 1))) as Weight
}

/// Builds an unweighted graph from generated edges.
///
/// # Panics
///
/// Panics only on internal generator bugs (endpoints are generated in
/// range by construction).
pub(crate) fn build_graph(n: usize, edges: Vec<Edge>, symmetrize: bool) -> Graph {
    build_graph_in(n, edges, symmetrize, &ThreadPool::new(1))
}

/// [`build_graph`] with construction running on `pool`.
pub(crate) fn build_graph_in(
    n: usize,
    edges: Vec<Edge>,
    symmetrize: bool,
    pool: &ThreadPool,
) -> Graph {
    Builder::new()
        .num_vertices(n)
        .symmetrize(symmetrize)
        .pool(pool)
        .build(edges)
        .expect("generator produced in-range endpoints")
}

/// Builds the weighted companion of a generated graph, reusing the edge
/// list so that the weighted and unweighted graphs have identical topology.
pub fn weighted_companion(n: usize, edges: &[Edge], symmetrize: bool, seed: u64) -> WGraph {
    weighted_companion_in(n, edges, symmetrize, seed, &ThreadPool::new(1))
}

/// [`weighted_companion`] with weight assignment and construction on
/// `pool` (identical output for every pool size).
pub fn weighted_companion_in(
    n: usize,
    edges: &[Edge],
    symmetrize: bool,
    seed: u64,
    pool: &ThreadPool,
) -> WGraph {
    let wedges = with_uniform_weights_in(edges, seed, pool);
    Builder::new()
        .num_vertices(n)
        .symmetrize(symmetrize)
        .pool(pool)
        .build_weighted(wedges)
        .expect("generator produced in-range endpoints and positive weights")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::edges;

    #[test]
    fn weights_are_in_gap_range_and_deterministic() {
        let el = edges([(0, 1), (1, 2), (2, 0)]);
        let w1 = with_uniform_weights(&el, 7);
        let w2 = with_uniform_weights(&el, 7);
        assert_eq!(w1, w2);
        assert!(w1.iter().all(|e| (1..MAX_WEIGHT).contains(&e.weight)));
        let w3 = with_uniform_weights(&el, 8);
        assert_ne!(w1, w3, "different seeds should give different weights");
    }

    #[test]
    fn weights_are_counter_based_not_sequential() {
        // Editing one edge must leave every other edge's weight alone —
        // the property a sequential RNG stream cannot provide.
        let el = edges([(0, 1), (1, 2), (2, 0), (3, 1)]);
        let mut el2 = el.clone();
        el2[1] = Edge::new(1, 3);
        let w1 = with_uniform_weights(&el, 7);
        let w2 = with_uniform_weights(&el2, 7);
        for i in [0, 2, 3] {
            assert_eq!(w1[i], w2[i], "weight at untouched index {i} changed");
        }
    }

    #[test]
    fn weight_assignment_is_pool_size_independent() {
        let el = kron_edges(7, 8, 5);
        let serial = with_uniform_weights(&el, 11);
        for threads in [2, 7] {
            let pool = ThreadPool::new(threads);
            assert_eq!(serial, with_uniform_weights_in(&el, 11, &pool));
        }
    }

    #[test]
    fn weighted_companion_matches_topology() {
        let el = edges([(0, 1), (1, 2)]);
        let g = build_graph(3, el.clone(), true);
        let wg = weighted_companion(3, &el, true, 1);
        assert_eq!(g.num_vertices(), wg.num_vertices());
        assert_eq!(g.num_arcs(), wg.num_arcs());
        for u in g.vertices() {
            assert_eq!(g.out_neighbors(u), wg.out_neighbors(u));
        }
    }
}
