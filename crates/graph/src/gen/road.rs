//! Road-network-like generation (the `Road` input).
//!
//! GAP's Road graph (USA road network) is the outlier of the corpus:
//! bounded degree (average 2.4), enormous diameter (~6,300), directed but
//! nearly symmetric. The stand-in is a sparse 2-D lattice: each grid point
//! connects to a subset of its 4-neighborhood (random deletions keep the
//! average degree near 2.4 and stretch the diameter), plus a sprinkle of
//! diagonal "shortcut" streets. The giant component of such a lattice has
//! diameter Θ(width + height), reproducing the many-iteration behaviour
//! that makes Road hard for bulk-synchronous frameworks (§VI).

use super::build_graph;
use crate::edgelist::Edge;
use crate::graph::Graph;
use crate::rng::{mix64, SeededRng};
use crate::types::NodeId;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Diagonal shortcuts drawn per RNG block.
const DIAG_BLOCK: usize = 1024;

/// Stream constants deriving the independent sub-generators (lattice
/// rows, diagonal shortcuts, backbone stitching) from the master seed.
const ROWS_STREAM: u64 = 0x524f_5753_0000_0001;
const DIAG_STREAM: u64 = 0x4449_4147_0000_0002;
const BACK_STREAM: u64 = 0x4241_434b_0000_0003;

/// Parameters of the road-like lattice generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoadConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Percentage (0–100) of lattice edges kept.
    pub keep_percent: u32,
    /// Number of random diagonal shortcut edges per 100 vertices.
    pub diagonals_per_100: u32,
}

impl RoadConfig {
    /// A configuration matching Road's Table I attributes at a given grid
    /// side length: average degree ≈ 2.4, huge diameter.
    pub fn gap_like(side: usize) -> Self {
        RoadConfig {
            width: side,
            height: side,
            keep_percent: 62,
            diagonals_per_100: 2,
        }
    }

    /// Number of vertices in the lattice.
    pub fn num_vertices(&self) -> usize {
        self.width * self.height
    }
}

/// Generates the directed (symmetric) road-like edge list (serial
/// wrapper over [`road_edges_in`]).
pub fn road_edges(config: &RoadConfig, seed: u64) -> Vec<Edge> {
    road_edges_in(config, seed, &ThreadPool::new(1))
}

/// [`road_edges`] on a pool. Each grid row, each diagonal block, and the
/// backbone pass draw from independently derived RNG streams, so the
/// edge list depends only on the seed and the grid — never on thread
/// count or schedule.
pub fn road_edges_in(config: &RoadConfig, seed: u64, pool: &ThreadPool) -> Vec<Edge> {
    let (w, h) = (config.width, config.height);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let push_both = |edges: &mut Vec<Edge>, a: NodeId, b: NodeId| {
        edges.push(Edge::new(a, b));
        edges.push(Edge::new(b, a));
    };
    // Lattice: one derived stream per grid row, emitted into per-row
    // buckets and flattened in row order.
    let mut rows: Vec<Vec<Edge>> = vec![Vec::new(); h];
    {
        let out = SharedSlice::new(&mut rows);
        pool.for_each_index(h, Schedule::Dynamic(8), |y| {
            let mut rng = SeededRng::seed_from_u64(mix64(mix64(seed, ROWS_STREAM), y as u64));
            let mut row = Vec::new();
            for x in 0..w {
                if x + 1 < w && rng.gen_range(0..100) < config.keep_percent {
                    push_both(&mut row, id(x, y), id(x + 1, y));
                }
                if y + 1 < h && rng.gen_range(0..100) < config.keep_percent {
                    push_both(&mut row, id(x, y), id(x, y + 1));
                }
            }
            // SAFETY: one writer per row bucket.
            unsafe { out.write(y, row) };
        });
    }
    let mut edges: Vec<Edge> = rows.into_iter().flatten().collect();
    // Diagonal shortcuts: local streets cutting corners, not long-range
    // links (long-range links would collapse the diameter). Each diagonal
    // owns a fixed pair of output slots.
    let diagonals = config.num_vertices() * config.diagonals_per_100 as usize / 100;
    if diagonals > 0 && w > 1 && h > 1 {
        let mut diag = vec![Edge::new(0, 0); diagonals * 2];
        {
            let out = SharedSlice::new(&mut diag);
            pool.for_each_index(
                diagonals.div_ceil(DIAG_BLOCK),
                Schedule::Dynamic(1),
                |block| {
                    let mut rng =
                        SeededRng::seed_from_u64(mix64(mix64(seed, DIAG_STREAM), block as u64));
                    let lo = block * DIAG_BLOCK;
                    let hi = (lo + DIAG_BLOCK).min(diagonals);
                    for d in lo..hi {
                        let x = rng.gen_range(0..w - 1);
                        let y = rng.gen_range(0..h - 1);
                        // SAFETY: diagonal `d` owns slots 2d and 2d+1.
                        unsafe {
                            out.write(2 * d, Edge::new(id(x, y), id(x + 1, y + 1)));
                            out.write(2 * d + 1, Edge::new(id(x + 1, y + 1), id(x, y)));
                        }
                    }
                },
            );
        }
        edges.extend_from_slice(&diag);
    }
    // Stitch each row's first column to the next row so the giant component
    // spans the grid even with deletions (mirrors highway backbones).
    // Serial: O(height) draws from a dedicated stream.
    let mut rng = SeededRng::seed_from_u64(mix64(seed, BACK_STREAM));
    for y in 0..h.saturating_sub(1) {
        if rng.gen_range(0..100) < 80 {
            push_both(&mut edges, id(0, y), id(0, y + 1));
        }
    }
    edges
}

/// Generates the `Road` benchmark graph.
///
/// The output is *directed* (like GAP's Road) but symmetric, since roads
/// carry both directions in the source data's overwhelming majority.
pub fn road(config: &RoadConfig, seed: u64) -> Graph {
    let edges = road_edges(config, seed);
    build_graph(config.num_vertices(), edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_has_bounded_degree_and_directed_flag() {
        let g = road(&RoadConfig::gap_like(40), 11);
        assert!(g.is_directed());
        assert_eq!(g.num_vertices(), 1600);
        let avg = g.average_degree();
        assert!(
            (1.6..3.4).contains(&avg),
            "average degree {avg} outside road-like band"
        );
        let max_deg = g.vertices().map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_deg <= 8, "lattice degree bound violated: {max_deg}");
    }

    #[test]
    fn road_is_symmetric_despite_directedness() {
        let g = road(&RoadConfig::gap_like(16), 5);
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                assert!(
                    g.out_neighbors(v).contains(&u),
                    "missing reverse arc {v}->{u}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RoadConfig::gap_like(12);
        assert_eq!(road_edges(&cfg, 1), road_edges(&cfg, 1));
        assert_ne!(road_edges(&cfg, 1), road_edges(&cfg, 2));
    }
}
