//! Road-network-like generation (the `Road` input).
//!
//! GAP's Road graph (USA road network) is the outlier of the corpus:
//! bounded degree (average 2.4), enormous diameter (~6,300), directed but
//! nearly symmetric. The stand-in is a sparse 2-D lattice: each grid point
//! connects to a subset of its 4-neighborhood (random deletions keep the
//! average degree near 2.4 and stretch the diameter), plus a sprinkle of
//! diagonal "shortcut" streets. The giant component of such a lattice has
//! diameter Θ(width + height), reproducing the many-iteration behaviour
//! that makes Road hard for bulk-synchronous frameworks (§VI).

use super::build_graph;
use crate::edgelist::Edge;
use crate::graph::Graph;
use crate::types::NodeId;
use crate::rng::SeededRng;

/// Parameters of the road-like lattice generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoadConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Percentage (0–100) of lattice edges kept.
    pub keep_percent: u32,
    /// Number of random diagonal shortcut edges per 100 vertices.
    pub diagonals_per_100: u32,
}

impl RoadConfig {
    /// A configuration matching Road's Table I attributes at a given grid
    /// side length: average degree ≈ 2.4, huge diameter.
    pub fn gap_like(side: usize) -> Self {
        RoadConfig {
            width: side,
            height: side,
            keep_percent: 62,
            diagonals_per_100: 2,
        }
    }

    /// Number of vertices in the lattice.
    pub fn num_vertices(&self) -> usize {
        self.width * self.height
    }
}

/// Generates the directed (symmetric) road-like edge list.
pub fn road_edges(config: &RoadConfig, seed: u64) -> Vec<Edge> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let (w, h) = (config.width, config.height);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges = Vec::new();
    let push_both = |edges: &mut Vec<Edge>, a: NodeId, b: NodeId| {
        edges.push(Edge::new(a, b));
        edges.push(Edge::new(b, a));
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w && rng.gen_range(0..100) < config.keep_percent {
                push_both(&mut edges, id(x, y), id(x + 1, y));
            }
            if y + 1 < h && rng.gen_range(0..100) < config.keep_percent {
                push_both(&mut edges, id(x, y), id(x, y + 1));
            }
        }
    }
    // Diagonal shortcuts: local streets cutting corners, not long-range
    // links (long-range links would collapse the diameter).
    let diagonals = config.num_vertices() * config.diagonals_per_100 as usize / 100;
    for _ in 0..diagonals {
        let x = rng.gen_range(0..w.saturating_sub(1));
        let y = rng.gen_range(0..h.saturating_sub(1));
        push_both(&mut edges, id(x, y), id(x + 1, y + 1));
    }
    // Stitch each row's first column to the next row so the giant component
    // spans the grid even with deletions (mirrors highway backbones).
    for y in 0..h.saturating_sub(1) {
        if rng.gen_range(0..100) < 80 {
            push_both(&mut edges, id(0, y), id(0, y + 1));
        }
    }
    edges
}

/// Generates the `Road` benchmark graph.
///
/// The output is *directed* (like GAP's Road) but symmetric, since roads
/// carry both directions in the source data's overwhelming majority.
pub fn road(config: &RoadConfig, seed: u64) -> Graph {
    let edges = road_edges(config, seed);
    build_graph(config.num_vertices(), edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_has_bounded_degree_and_directed_flag() {
        let g = road(&RoadConfig::gap_like(40), 11);
        assert!(g.is_directed());
        assert_eq!(g.num_vertices(), 1600);
        let avg = g.average_degree();
        assert!(
            (1.6..3.4).contains(&avg),
            "average degree {avg} outside road-like band"
        );
        let max_deg = g.vertices().map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_deg <= 8, "lattice degree bound violated: {max_deg}");
    }

    #[test]
    fn road_is_symmetric_despite_directedness() {
        let g = road(&RoadConfig::gap_like(16), 5);
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                assert!(
                    g.out_neighbors(v).contains(&u),
                    "missing reverse arc {v}->{u}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RoadConfig::gap_like(12);
        assert_eq!(road_edges(&cfg, 1), road_edges(&cfg, 1));
        assert_ne!(road_edges(&cfg, 1), road_edges(&cfg, 2));
    }
}
