//! R-MAT / Kronecker edge generation (the `Kron`, `Twitter`-like and
//! `Web`-like inputs).
//!
//! The Kron graph in GAP is produced by the Graph500 Kronecker generator,
//! which is equivalent to R-MAT with partition probabilities
//! `A = 0.57, B = 0.19, C = 0.19`. The Twitter- and Web-like stand-ins use
//! the same recursive process with different skew so that their degree
//! distributions are power-law like the originals (see Table I).

use super::{build_graph, EDGE_BLOCK};
use crate::edgelist::Edge;
use crate::graph::Graph;
use crate::rng::{mix64, SeededRng};
use crate::types::NodeId;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Stream constant deriving the id-shuffle generator from the master
/// seed (far above any plausible block index, so streams never collide).
const SHUFFLE_STREAM: u64 = 0x5348_5546_464c_4531;

/// Parameters of an R-MAT recursive edge generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of generated edge tuples per vertex.
    pub edges_per_vertex: usize,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Randomly permute vertex ids afterwards, hiding locality the way
    /// Graph500 prescribes.
    pub shuffle_ids: bool,
}

impl RmatConfig {
    /// Graph500 Kronecker parameters at the given scale and edge factor.
    pub fn graph500(scale: u32, edges_per_vertex: usize) -> Self {
        RmatConfig {
            scale,
            edges_per_vertex,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            shuffle_ids: true,
        }
    }

    /// Number of vertices implied by `scale`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates a directed R-MAT edge list (serial wrapper over
/// [`rmat_edges_in`]; the output is identical for every pool size).
///
/// # Panics
///
/// Panics if the quadrant probabilities are malformed (`a + b + c >= 1`
/// must leave a positive remainder for the fourth quadrant).
pub fn rmat_edges(config: &RmatConfig, seed: u64) -> Vec<Edge> {
    rmat_edges_in(config, seed, &ThreadPool::new(1))
}

/// Generates a directed R-MAT edge list on `pool`.
///
/// The output is carved into fixed-size blocks, each drawn from its own
/// RNG stream derived as `mix64(seed, block)`, so the edge list depends
/// only on the seed — never on thread count or schedule. The Graph500
/// id shuffle uses a separately derived stream: the permutation is built
/// serially (Fisher–Yates is inherently sequential) and applied in
/// parallel.
///
/// # Panics
///
/// Panics if the quadrant probabilities are malformed.
pub fn rmat_edges_in(config: &RmatConfig, seed: u64, pool: &ThreadPool) -> Vec<Edge> {
    let d = 1.0 - config.a - config.b - config.c;
    assert!(
        d > 0.0 && config.a > 0.0 && config.b >= 0.0 && config.c >= 0.0,
        "rmat quadrant probabilities must be positive and sum below 1"
    );
    let n = config.num_vertices();
    let m = n * config.edges_per_vertex;
    let mut edges = vec![Edge::new(0, 0); m];
    {
        let out = SharedSlice::new(&mut edges);
        pool.for_each_index(m.div_ceil(EDGE_BLOCK), Schedule::Dynamic(1), |block| {
            let mut rng = SeededRng::seed_from_u64(mix64(seed, block as u64));
            let lo = block * EDGE_BLOCK;
            let hi = (lo + EDGE_BLOCK).min(m);
            for i in lo..hi {
                let (mut src, mut dst) = (0usize, 0usize);
                for _ in 0..config.scale {
                    src <<= 1;
                    dst <<= 1;
                    let r = rng.gen_f64();
                    if r < config.a {
                        // top-left: no bits set
                    } else if r < config.a + config.b {
                        dst |= 1;
                    } else if r < config.a + config.b + config.c {
                        src |= 1;
                    } else {
                        src |= 1;
                        dst |= 1;
                    }
                }
                // SAFETY: blocks partition the output.
                unsafe { out.write(i, Edge::new(src as NodeId, dst as NodeId)) };
            }
        });
    }
    if config.shuffle_ids {
        let mut rng = SeededRng::seed_from_u64(mix64(seed, SHUFFLE_STREAM));
        let perm = random_permutation(n, &mut rng);
        let perm = perm.as_slice();
        let out = SharedSlice::new(&mut edges);
        pool.for_each_index(m, Schedule::Static, |i| {
            // SAFETY: each index is read and rewritten by exactly one
            // iteration.
            unsafe {
                let e = out.read(i);
                out.write(i, Edge::new(perm[e.src as usize], perm[e.dst as usize]));
            }
        });
    }
    edges
}

fn random_permutation(n: usize, rng: &mut SeededRng) -> Vec<NodeId> {
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    // Fisher–Yates
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Generates Kron edges: Graph500 Kronecker parameters, undirected intent
/// (callers symmetrize).
pub fn kron_edges(scale: u32, edges_per_vertex: usize, seed: u64) -> Vec<Edge> {
    rmat_edges(&RmatConfig::graph500(scale, edges_per_vertex / 2), seed)
}

/// [`kron_edges`] on a pool (identical output for every pool size).
pub fn kron_edges_in(
    scale: u32,
    edges_per_vertex: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Vec<Edge> {
    rmat_edges_in(
        &RmatConfig::graph500(scale, edges_per_vertex / 2),
        seed,
        pool,
    )
}

/// Generates the undirected `Kron` benchmark graph.
///
/// `edges_per_vertex` is the target *arc* degree (Table I reports 15.7 for
/// the full-scale graph); half as many edge tuples are generated and then
/// mirrored.
pub fn kron(scale: u32, edges_per_vertex: usize, seed: u64) -> Graph {
    let edges = kron_edges(scale, edges_per_vertex, seed);
    build_graph(1 << scale, edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_is_undirected_with_requested_size() {
        let g = kron(8, 16, 42);
        assert_eq!(g.num_vertices(), 256);
        assert!(!g.is_directed());
        // Dedup and self-loop collisions shave some arcs; expect within 40%.
        let target = 256 * 16;
        assert!(g.num_arcs() > target / 2, "arcs = {}", g.num_arcs());
        assert!(g.num_arcs() <= target + target / 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = kron_edges(7, 8, 1);
        let b = kron_edges(7, 8, 1);
        assert_eq!(a, b);
        let c = kron_edges(7, 8, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_skew_creates_hubs() {
        // With heavy skew, the max degree should dwarf the average.
        let cfg = RmatConfig {
            scale: 10,
            edges_per_vertex: 8,
            a: 0.65,
            b: 0.15,
            c: 0.15,
            shuffle_ids: false,
        };
        let g = build_graph(1 << 10, rmat_edges(&cfg, 3), false);
        let max_deg = g.vertices().map(|u| g.out_degree(u)).max().unwrap();
        let avg = g.average_degree();
        assert!(
            (max_deg as f64) > avg * 8.0,
            "max {max_deg} vs avg {avg} is not skewed"
        );
    }

    #[test]
    #[should_panic(expected = "quadrant")]
    fn malformed_probabilities_panic() {
        let cfg = RmatConfig {
            scale: 4,
            edges_per_vertex: 4,
            a: 0.5,
            b: 0.3,
            c: 0.3,
            shuffle_ids: false,
        };
        let _ = rmat_edges(&cfg, 0);
    }
}
