//! Fundamental scalar types shared across the workspace.
//!
//! Like five of the six frameworks in the paper, the substrate uses 32-bit
//! vertex identifiers ("the other frameworks use 32-bit indices throughout by
//! default"). The GraphBLAS-style crate widens these to 64 bits internally to
//! reproduce the index-width tax discussed in Section V.

/// Identifier of a vertex. 32 bits, matching the GAP reference code.
pub type NodeId = u32;

/// Edge weight for weighted kernels (SSSP).
///
/// GAP generates uniform integer weights in `[1, 256)` and runs
/// delta-stepping over the min-plus (tropical) semiring on `int32`.
pub type Weight = i32;

/// Distance accumulated along a path of [`Weight`]s.
///
/// 64-bit so that path sums cannot overflow even on adversarial inputs.
pub type Distance = i64;

/// Sentinel distance meaning "unreached".
pub const INF_DIST: Distance = i64::MAX;

/// Sentinel parent meaning "not visited" in BFS parent arrays.
pub const NO_PARENT: NodeId = NodeId::MAX;

/// Floating-point score type used by PageRank and betweenness centrality.
pub type Score = f64;

/// Storage width of CSR row offsets.
///
/// Five of the six evaluated frameworks index with 32 bits; the paper's
/// Section V attributes part of SuiteSparse's traversal deficit to its
/// 64-bit indices. Parameterizing the offset width lets the substrate
/// reproduce both sides of that tax: every in-repo graph fits `u32`
/// offsets (halving the bytes touched per row lookup), while `usize`
/// remains available as the runtime fallback for arc counts at or above
/// `u32::MAX`.
pub trait OffsetIndex:
    Copy
    + Ord
    + Eq
    + Default
    + std::fmt::Debug
    + std::hash::Hash
    + Send
    + Sync
    + 'static
    + crate::segment::Pod
{
    /// Short label used in benchmark output and ledgers.
    const NAME: &'static str;
    /// Largest arc count this width can index.
    const MAX_OFFSET: usize;

    /// Converts from a `usize` offset. Debug-asserts the value fits; the
    /// builder checks [`Self::fits`] on the total before narrowing.
    fn from_usize(v: usize) -> Self;

    /// Widens to `usize` for slicing.
    fn to_usize(self) -> usize;

    /// `true` if `v` is representable in this width.
    #[inline]
    fn fits(v: usize) -> bool {
        v <= Self::MAX_OFFSET
    }
}

impl OffsetIndex for u32 {
    const NAME: &'static str = "u32";
    const MAX_OFFSET: usize = u32::MAX as usize;

    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "offset {v} exceeds u32 range");
        v as u32
    }

    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl OffsetIndex for usize {
    const NAME: &'static str = "usize";
    const MAX_OFFSET: usize = usize::MAX;

    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v
    }

    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_extreme() {
        assert_eq!(NO_PARENT, u32::MAX);
        assert!(INF_DIST > i64::from(i32::MAX) * i64::from(i32::MAX));
    }
}
