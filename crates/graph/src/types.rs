//! Fundamental scalar types shared across the workspace.
//!
//! Like five of the six frameworks in the paper, the substrate uses 32-bit
//! vertex identifiers ("the other frameworks use 32-bit indices throughout by
//! default"). The GraphBLAS-style crate widens these to 64 bits internally to
//! reproduce the index-width tax discussed in Section V.

/// Identifier of a vertex. 32 bits, matching the GAP reference code.
pub type NodeId = u32;

/// Edge weight for weighted kernels (SSSP).
///
/// GAP generates uniform integer weights in `[1, 256)` and runs
/// delta-stepping over the min-plus (tropical) semiring on `int32`.
pub type Weight = i32;

/// Distance accumulated along a path of [`Weight`]s.
///
/// 64-bit so that path sums cannot overflow even on adversarial inputs.
pub type Distance = i64;

/// Sentinel distance meaning "unreached".
pub const INF_DIST: Distance = i64::MAX;

/// Sentinel parent meaning "not visited" in BFS parent arrays.
pub const NO_PARENT: NodeId = NodeId::MAX;

/// Floating-point score type used by PageRank and betweenness centrality.
pub type Score = f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_extreme() {
        assert_eq!(NO_PARENT, u32::MAX);
        assert!(INF_DIST > i64::from(i32::MAX) * i64::from(i32::MAX));
    }
}
