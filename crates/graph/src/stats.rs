//! Topology statistics backing Table I: vertex/edge counts, average degree,
//! degree-distribution classification, and an approximate diameter probe.

use crate::gen::corpus::DegreeFamily;
use crate::graph::Graph;
use crate::types::{NodeId, OffsetIndex};
use std::collections::VecDeque;

/// Summary of a graph's topology, one row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges (GAP counting: undirected edges count once).
    pub num_edges: usize,
    /// Whether the graph is directed.
    pub directed: bool,
    /// Average arc degree.
    pub average_degree: f64,
    /// Classified degree-distribution family.
    pub degree_family: DegreeFamily,
    /// Approximate diameter from a double-sweep BFS probe.
    pub approx_diameter: usize,
    /// Resident adjacency bytes (offsets + targets across stored
    /// directions) — the footprint the compact-offset layout halves the
    /// offset share of.
    pub graph_bytes: usize,
}

/// Computes the full Table I row for a graph.
pub fn summarize<O: OffsetIndex>(g: &Graph<O>) -> GraphSummary {
    GraphSummary {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        directed: g.is_directed(),
        average_degree: g.average_degree(),
        degree_family: classify_degrees(g),
        approx_diameter: approx_diameter(g),
        graph_bytes: g.graph_bytes(),
    }
}

/// Maximum out-degree.
pub fn max_degree<O: OffsetIndex>(g: &Graph<O>) -> usize {
    g.vertices().map(|u| g.out_degree(u)).max().unwrap_or(0)
}

/// Sample variance of the out-degree distribution.
pub fn degree_variance<O: OffsetIndex>(g: &Graph<O>) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mean = g.average_degree();
    let ss: f64 = g
        .vertices()
        .map(|u| {
            let d = g.out_degree(u) as f64 - mean;
            d * d
        })
        .sum();
    ss / n as f64
}

/// Classifies the degree distribution into Table I's three families using
/// simple, robust moments:
///
/// * **bounded** — the maximum degree is a small constant (road networks);
/// * **power** — the maximum degree dwarfs the mean (heavy tail);
/// * **normal** — otherwise (degrees concentrate around the mean).
pub fn classify_degrees<O: OffsetIndex>(g: &Graph<O>) -> DegreeFamily {
    let max = max_degree(g) as f64;
    let mean = g.average_degree().max(f64::MIN_POSITIVE);
    if max <= 16.0 && max <= mean * 4.0 {
        DegreeFamily::Bounded
    } else if max >= mean * 8.0 {
        DegreeFamily::Power
    } else {
        DegreeFamily::Normal
    }
}

/// Sequential BFS returning the eccentricity (greatest finite depth) and the
/// farthest vertex reached from `source`, following out-edges.
pub fn bfs_eccentricity<O: OffsetIndex>(g: &Graph<O>, source: NodeId) -> (usize, NodeId) {
    let n = g.num_vertices();
    let mut depth = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    depth[source as usize] = 0;
    queue.push_back(source);
    let mut far = (0usize, source);
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        if du > far.0 {
            far = (du, u);
        }
        for &v in g.out_neighbors(u) {
            if depth[v as usize] == usize::MAX {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    far
}

/// Approximate diameter via the classic double-sweep heuristic, repeated
/// from a few vertices: BFS from a start vertex, then BFS again from the
/// farthest vertex found; the second eccentricity lower-bounds the diameter
/// and is usually tight on real topologies.
///
/// GAP's Table I itself reports an *approximate* diameter, so a heuristic
/// probe is faithful to the benchmark's own methodology.
pub fn approx_diameter<O: OffsetIndex>(g: &Graph<O>) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    // A few deterministic, spread-out starting points, plus the highest-
    // degree vertex (guaranteed to sit in the dense core of power-law
    // graphs, where the spread-out picks may all be low-reach).
    let max_deg_vertex = (0..n as NodeId)
        .max_by_key(|&u| g.out_degree(u))
        .unwrap_or(0);
    let starts = [0usize, n / 3, (2 * n) / 3]
        .into_iter()
        .map(|i| i.min(n - 1) as NodeId)
        .chain(std::iter::once(max_deg_vertex));
    for s in starts {
        if g.out_degree(s) == 0 {
            continue;
        }
        let (_, far) = bfs_eccentricity(g, s);
        let (ecc2, _) = bfs_eccentricity(g, far);
        best = best.max(ecc2);
    }
    best
}

/// GAP's direction-optimizing `alpha`: switch push→pull when the
/// frontier's outgoing edges exceed `1/alpha` of the unexplored edges.
pub const DO_ALPHA: u64 = 15;

/// GAP's direction-optimizing `beta`: switch pull→push when the frontier
/// shrinks below `n / beta` vertices.
pub const DO_BETA: u64 = 18;

/// GAP's push→pull test. Every direction-optimizing traversal in the
/// suite (and [`frontier_profile`]'s prediction) shares this predicate so
/// the thresholds cannot drift apart between kernels and analysis.
#[inline]
pub fn switch_to_pull(scout_edges: u64, edges_to_check: u64) -> bool {
    scout_edges > edges_to_check / DO_ALPHA
}

/// GAP's pull→push test: the awake count dropped below `n / beta` and is
/// still shrinking (or the traversal finished).
#[inline]
pub fn switch_to_push(awake: u64, prev_awake: u64, n: u64) -> bool {
    awake == 0 || (awake <= n / DO_BETA && awake < prev_awake)
}

/// One-shot per-level direction prediction for traversals (and profiles)
/// that decide each level independently instead of tracking the push/pull
/// state machine: pull when either threshold trips.
#[inline]
pub fn predict_pull(scout_edges: u64, edges_to_check: u64, frontier_len: u64, n: u64) -> bool {
    switch_to_pull(scout_edges, edges_to_check) || frontier_len > n / DO_BETA
}

/// Per-level traversal profile of a BFS — the workload-characterization
/// view behind the GAP suite's design (the paper's cited companion study
/// shows topology dominates workload behaviour).
///
/// For each level the profile records the frontier size and its outgoing
/// edge count, plus which direction a direction-optimizing traversal
/// (GAP's `alpha`/`beta` thresholds) would pick. On Road-like graphs the
/// profile is long and thin (hundreds of tiny frontiers); on power-law
/// graphs it is short and explosive (one giant level) — the contrast that
/// decides most of Table V.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierProfile {
    /// Frontier size per BFS level, starting at the source's level.
    pub frontier_sizes: Vec<usize>,
    /// Outgoing edges of each frontier.
    pub frontier_edges: Vec<usize>,
    /// Levels a direction-optimizing traversal would run bottom-up.
    pub pull_levels: Vec<bool>,
}

impl FrontierProfile {
    /// Number of levels (the traversal depth + 1).
    pub fn depth(&self) -> usize {
        self.frontier_sizes.len()
    }

    /// The largest frontier as a fraction of reached vertices.
    pub fn peak_fraction(&self) -> f64 {
        let total: usize = self.frontier_sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.frontier_sizes.iter().max().expect("non-empty") as f64 / total as f64
    }

    /// Number of levels predicted to run bottom-up.
    pub fn pull_level_count(&self) -> usize {
        self.pull_levels.iter().filter(|&&p| p).count()
    }
}

/// Computes the [`FrontierProfile`] of a BFS from `source` with GAP's
/// direction-optimizing thresholds ([`DO_ALPHA`], [`DO_BETA`]).
pub fn frontier_profile<O: OffsetIndex>(g: &Graph<O>, source: NodeId) -> FrontierProfile {
    let n = g.num_vertices();
    let mut depth = vec![usize::MAX; n];
    let mut frontier = vec![source];
    depth[source as usize] = 0;
    let mut sizes = Vec::new();
    let mut edges = Vec::new();
    let mut pulls = Vec::new();
    let mut edges_to_check = g.num_arcs();
    while !frontier.is_empty() {
        let scout: usize = frontier.iter().map(|&u| g.out_degree(u)).sum();
        sizes.push(frontier.len());
        edges.push(scout);
        pulls.push(predict_pull(
            scout as u64,
            edges_to_check as u64,
            frontier.len() as u64,
            n as u64,
        ));
        edges_to_check = edges_to_check.saturating_sub(scout);
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.out_neighbors(u) {
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    FrontierProfile {
        frontier_sizes: sizes,
        frontier_edges: edges,
        pull_levels: pulls,
    }
}

/// Histogram of out-degrees as `(degree, count)` pairs sorted by degree.
pub fn degree_histogram<O: OffsetIndex>(g: &Graph<O>) -> Vec<(usize, usize)> {
    let mut hist = std::collections::BTreeMap::new();
    for u in g.vertices() {
        *hist.entry(g.out_degree(u)).or_insert(0usize) += 1;
    }
    hist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, RoadConfig};

    #[test]
    fn path_graph_diameter_is_exact() {
        // 0 - 1 - 2 - 3 - 4 (undirected path)
        let g = crate::Builder::new()
            .symmetrize(true)
            .build(crate::edgelist::edges([(0, 1), (1, 2), (2, 3), (3, 4)]))
            .unwrap();
        assert_eq!(approx_diameter(&g), 4);
    }

    #[test]
    fn eccentricity_finds_farthest() {
        let g = crate::Builder::new()
            .symmetrize(true)
            .build(crate::edgelist::edges([(0, 1), (1, 2)]))
            .unwrap();
        let (ecc, far) = bfs_eccentricity(&g, 0);
        assert_eq!(ecc, 2);
        assert_eq!(far, 2);
    }

    #[test]
    fn road_classifies_bounded_and_deep() {
        let g = gen::road(&RoadConfig::gap_like(48), 3);
        let s = summarize(&g);
        assert_eq!(s.degree_family, DegreeFamily::Bounded);
        assert!(
            s.approx_diameter >= 48,
            "road diameter {} too small",
            s.approx_diameter
        );
    }

    #[test]
    fn kron_classifies_power_and_shallow() {
        let g = gen::kron(11, 16, 42);
        let s = summarize(&g);
        assert_eq!(s.degree_family, DegreeFamily::Power);
        assert!(
            s.approx_diameter <= 12,
            "kron diameter {} too large",
            s.approx_diameter
        );
    }

    #[test]
    fn urand_classifies_normal() {
        let g = gen::urand(11, 16, 42);
        assert_eq!(classify_degrees(&g), DegreeFamily::Normal);
    }

    #[test]
    fn frontier_profile_separates_topologies() {
        // Road: long, thin profile; Kron: short, explosive one.
        let road = gen::road(&gen::RoadConfig::gap_like(32), 2);
        let rp = frontier_profile(&road, 0);
        let kron = gen::kron(10, 16, 2);
        let kp = frontier_profile(&kron, 0);
        assert!(
            rp.depth() > 4 * kp.depth(),
            "road depth {} vs kron depth {}",
            rp.depth(),
            kp.depth()
        );
        assert!(
            kp.peak_fraction() > rp.peak_fraction(),
            "kron peak {} vs road peak {}",
            kp.peak_fraction(),
            rp.peak_fraction()
        );
    }

    #[test]
    fn frontier_profile_counts_are_consistent() {
        let g = gen::urand(9, 8, 4);
        let p = frontier_profile(&g, 0);
        let reached: usize = p.frontier_sizes.iter().sum();
        let (ecc, _) = bfs_eccentricity(&g, 0);
        assert_eq!(p.depth(), ecc + 1, "levels = eccentricity + 1");
        assert!(reached <= g.num_vertices());
        assert_eq!(p.frontier_sizes[0], 1, "level 0 is the source alone");
        // Power-law/uniform shallow graphs should predict some pull use.
        assert!(p.pull_level_count() >= 1);
    }

    #[test]
    fn direction_predicates_follow_gap_thresholds() {
        // alpha: 100 outgoing edges > 1000/15 unexplored trips the switch.
        assert!(switch_to_pull(100, 1000));
        assert!(!switch_to_pull(5, 1000));
        // beta: awake below n/18 and shrinking (or finished) goes push.
        assert!(switch_to_push(0, 10, 1000));
        assert!(switch_to_push(50, 60, 1000));
        assert!(!switch_to_push(55, 60, 180)); // not below 180/18 = 10
        assert!(!switch_to_push(50, 50, 1000)); // not shrinking
                                                // One-shot prediction trips on either threshold.
        assert!(predict_pull(100, 1000, 1, 1000));
        assert!(predict_pull(0, 1000, 500, 1000));
        assert!(!predict_pull(5, 1000, 1, 1000));
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let g = gen::urand(8, 8, 1);
        let total: usize = degree_histogram(&g).iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }
}
