//! Error types for graph construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors raised while building a graph from an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge endpoint is outside the declared vertex range.
    EndpointOutOfRange {
        /// Offending vertex id.
        node: u64,
        /// Number of vertices the builder was configured with.
        num_vertices: u64,
    },
    /// The builder was asked for a graph with zero vertices but edges exist.
    EdgesWithoutVertices,
    /// The arc count does not fit the requested offset width; callers
    /// wanting the automatic wide fallback should use
    /// [`crate::Builder::build_any`].
    ArcCountOverflow {
        /// Arc count the scan produced.
        arcs: u64,
        /// Offset-width label (`"u32"` / `"usize"`).
        width: &'static str,
    },
    /// A weighted edge carried a non-positive weight, which delta-stepping
    /// (and the GAP spec) does not permit.
    NonPositiveWeight {
        /// Source endpoint of the offending edge.
        src: u64,
        /// Destination endpoint of the offending edge.
        dst: u64,
        /// The rejected weight.
        weight: i64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EndpointOutOfRange { node, num_vertices } => write!(
                f,
                "edge endpoint {node} out of range for graph with {num_vertices} vertices"
            ),
            BuildError::EdgesWithoutVertices => {
                write!(f, "edge list is non-empty but vertex count is zero")
            }
            BuildError::ArcCountOverflow { arcs, width } => write!(
                f,
                "{arcs} arcs overflow {width} row offsets; build_any selects the wide form"
            ),
            BuildError::NonPositiveWeight { src, dst, weight } => write!(
                f,
                "edge ({src}, {dst}) has non-positive weight {weight}; GAP SSSP requires positive weights"
            ),
        }
    }
}

impl Error for BuildError {}

/// Errors raised while reading a binary graph snapshot. Every
/// malformation a hostile or truncated file can exhibit maps to a
/// variant here — the loader never panics or reads out of bounds on bad
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The format version is newer (or older) than this build supports.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// The file ends before a structure it declares.
    Truncated {
        /// What the loader was reading when it ran out of bytes.
        what: &'static str,
        /// Bytes the structure needs.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// A stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Which structure failed (`"header"` or a section name).
        section: &'static str,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the mapped bytes.
        computed: u64,
    },
    /// The snapshot's offset width differs from the requested type.
    WidthMismatch {
        /// Offset width in bytes recorded in the header.
        stored: u8,
        /// Offset-width label (`"u32"` / `"usize"`) the caller asked for.
        requested: &'static str,
    },
    /// A section the header's flags promise is absent.
    MissingSection {
        /// Section name.
        section: &'static str,
    },
    /// The snapshot was built from different generator parameters than
    /// the caller expects (stale cache entry).
    ParamsMismatch {
        /// Parameter hash recorded in the file.
        stored: u64,
        /// Parameter hash the caller derived from its generator config.
        expected: u64,
    },
    /// A structural inconsistency not covered by the variants above
    /// (bad section bounds, impossible counts, misalignment).
    Malformed {
        /// Description of the inconsistency.
        message: String,
    },
    /// Paranoid validation found a CSR invariant violation the
    /// checksums could not catch (a well-formed file describing an
    /// invalid graph).
    Invalid {
        /// The violated invariant.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?}")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build supports {supported})"
            ),
            SnapshotError::Truncated { what, needed, have } => write!(
                f,
                "snapshot truncated reading {what}: need {needed} bytes, have {have}"
            ),
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::WidthMismatch { stored, requested } => write!(
                f,
                "snapshot stores {stored}-byte offsets but {requested} offsets were requested"
            ),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::ParamsMismatch { stored, expected } => write!(
                f,
                "snapshot parameter hash {stored:#018x} does not match expected {expected:#018x}"
            ),
            SnapshotError::Malformed { message } => write!(f, "malformed snapshot: {message}"),
            SnapshotError::Invalid { message } => {
                write!(f, "snapshot describes an invalid graph: {message}")
            }
        }
    }
}

impl Error for SnapshotError {}

/// Errors raised by graph I/O routines.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The parsed edge list violated a builder invariant.
    Build(BuildError),
    /// A binary snapshot failed to load.
    Snapshot(SnapshotError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Build(e) => write!(f, "build error: {e}"),
            GraphError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Build(e) => Some(e),
            GraphError::Snapshot(e) => Some(e),
            GraphError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<BuildError> for GraphError {
    fn from(e: BuildError) -> Self {
        GraphError::Build(e)
    }
}

impl From<SnapshotError> for GraphError {
    fn from(e: SnapshotError) -> Self {
        GraphError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = BuildError::EndpointOutOfRange {
            node: 10,
            num_vertices: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains('5'));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn graph_error_sources_chain() {
        let e = GraphError::from(BuildError::EdgesWithoutVertices);
        assert!(Error::source(&e).is_some());
    }
}
