//! Error types for graph construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors raised while building a graph from an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge endpoint is outside the declared vertex range.
    EndpointOutOfRange {
        /// Offending vertex id.
        node: u64,
        /// Number of vertices the builder was configured with.
        num_vertices: u64,
    },
    /// The builder was asked for a graph with zero vertices but edges exist.
    EdgesWithoutVertices,
    /// The arc count does not fit the requested offset width; callers
    /// wanting the automatic wide fallback should use
    /// [`crate::Builder::build_any`].
    ArcCountOverflow {
        /// Arc count the scan produced.
        arcs: u64,
        /// Offset-width label (`"u32"` / `"usize"`).
        width: &'static str,
    },
    /// A weighted edge carried a non-positive weight, which delta-stepping
    /// (and the GAP spec) does not permit.
    NonPositiveWeight {
        /// Source endpoint of the offending edge.
        src: u64,
        /// Destination endpoint of the offending edge.
        dst: u64,
        /// The rejected weight.
        weight: i64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EndpointOutOfRange { node, num_vertices } => write!(
                f,
                "edge endpoint {node} out of range for graph with {num_vertices} vertices"
            ),
            BuildError::EdgesWithoutVertices => {
                write!(f, "edge list is non-empty but vertex count is zero")
            }
            BuildError::ArcCountOverflow { arcs, width } => write!(
                f,
                "{arcs} arcs overflow {width} row offsets; build_any selects the wide form"
            ),
            BuildError::NonPositiveWeight { src, dst, weight } => write!(
                f,
                "edge ({src}, {dst}) has non-positive weight {weight}; GAP SSSP requires positive weights"
            ),
        }
    }
}

impl Error for BuildError {}

/// Errors raised by graph I/O routines.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The parsed edge list violated a builder invariant.
    Build(BuildError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Build(e) => write!(f, "build error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Build(e) => Some(e),
            GraphError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<BuildError> for GraphError {
    fn from(e: BuildError) -> Self {
        GraphError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = BuildError::EndpointOutOfRange {
            node: 10,
            num_vertices: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains('5'));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn graph_error_sources_chain() {
        let e = GraphError::from(BuildError::EdgesWithoutVertices);
        assert!(Error::source(&e).is_some());
    }
}
