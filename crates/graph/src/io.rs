//! Graph I/O: GAP-compatible text edge lists (`.el` / `.wel`) and a compact
//! binary serialized-graph format (`.sg` / `.wsg`), mirroring the file kinds
//! the GAP reference code ships with.

use crate::builder::Builder;
use crate::edgelist::{Edge, WEdge};
use crate::error::GraphError;
use crate::graph::{AnyGraph, Graph, WGraph};
use crate::types::{NodeId, OffsetIndex, Weight};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Magic bytes of the binary serialized graph format.
const SG_MAGIC: &[u8; 4] = b"GSG1";

/// Parses a text edge list: one `src dst` pair per line, `#` comments and
/// blank lines ignored.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with the offending line number on
/// malformed input and [`GraphError::Io`] on read failure.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>, GraphError> {
    let mut edges = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_field(it.next(), idx, "source")?;
        let dst = parse_field(it.next(), idx, "destination")?;
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "unexpected trailing field (did you mean a .wel file?)".into(),
            });
        }
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

/// Parses a weighted text edge list: `src dst weight` per line.
///
/// # Errors
///
/// Same conditions as [`read_edge_list`].
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<Vec<WEdge>, GraphError> {
    let mut edges = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_field(it.next(), idx, "source")?;
        let dst = parse_field(it.next(), idx, "destination")?;
        let weight: Weight = match it.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid weight {tok:?}"),
            })?,
            None => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: "missing weight field".into(),
                })
            }
        };
        edges.push(WEdge::new(src, dst, weight));
    }
    Ok(edges)
}

fn parse_field(tok: Option<&str>, idx: usize, what: &str) -> Result<NodeId, GraphError> {
    match tok {
        Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
            line: idx + 1,
            message: format!("invalid {what} {tok:?}"),
        }),
        None => Err(GraphError::Parse {
            line: idx + 1,
            message: format!("missing {what} field"),
        }),
    }
}

/// Writes a graph's arcs as a text edge list.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for (u, v) in g.out_csr().iter_edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes a graph to the compact binary `.sg` format.
///
/// Layout: magic, directed flag, vertex count, arc count, offsets as `u64`,
/// targets as `u32`, all little-endian. Directed graphs store both
/// directions; undirected graphs store the symmetric adjacency once.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(SG_MAGIC)?;
    w.write_all(&[u8::from(g.is_directed())])?;
    write_csr(&mut w, g.out_csr())?;
    if g.is_directed() {
        write_csr(&mut w, g.in_csr())?;
    }
    w.flush()?;
    Ok(())
}

fn write_csr<W: Write, O: OffsetIndex>(
    w: &mut W,
    csr: &crate::CsrGraph<O>,
) -> Result<(), GraphError> {
    w.write_all(&(csr.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(csr.num_edges() as u64).to_le_bytes())?;
    for &o in csr.offsets_raw() {
        w.write_all(&(o.to_usize() as u64).to_le_bytes())?;
    }
    for &t in csr.targets_raw() {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a graph written by [`write_binary`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if the header is malformed and
/// [`GraphError::Io`] on truncated input.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    read_binary_as::<R, u32>(reader)
}

/// [`read_binary`] for an explicit offset width `O`.
///
/// # Errors
///
/// Same conditions as [`read_binary`], plus a parse error when an offset
/// overflows `O`.
pub fn read_binary_as<R: Read, O: OffsetIndex>(reader: R) -> Result<Graph<O>, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != SG_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected {SG_MAGIC:?}"),
        });
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let directed = flag[0] != 0;
    let out = read_csr(&mut r)?;
    if directed {
        let incoming = read_csr(&mut r)?;
        Ok(Graph::directed(out, incoming))
    } else {
        Ok(Graph::undirected(out))
    }
}

/// Deserializes a graph written by [`write_binary`], selecting the offset
/// width at runtime: the compact `u32` form whenever the stored arc count
/// fits, the `usize` fallback otherwise.
///
/// # Errors
///
/// Same conditions as [`read_binary`].
pub fn read_binary_any<R: Read>(mut reader: R) -> Result<AnyGraph, GraphError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    // Header: magic (4), directed flag (1), vertex count (8), arc count
    // (8). Offsets end at the arc count, so it alone decides the width.
    let arcs = match buf.get(13..21) {
        Some(bytes) => u64::from_le_bytes(bytes.try_into().expect("8-byte slice")) as usize,
        None => 0, // short input: let the narrow reader report the error
    };
    if <u32 as OffsetIndex>::fits(arcs) {
        Ok(AnyGraph::Narrow(read_binary(&buf[..])?))
    } else {
        Ok(AnyGraph::Wide(read_binary_as::<_, usize>(&buf[..])?))
    }
}

/// Reads one on-disk CSR (offsets are `u64` in the format) and rebuilds it
/// at offset width `O` through the fully validated boundary constructor.
fn read_csr<R: Read, O: OffsetIndex>(r: &mut R) -> Result<crate::CsrGraph<O>, GraphError> {
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let mut offsets: Vec<O> = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        let o = read_u64(r)? as usize;
        if !O::fits(o) {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "offset {o} overflows {} row offsets; read with read_binary_any",
                    O::NAME
                ),
            });
        }
        offsets.push(O::from_usize(o));
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        targets.push(NodeId::from_le_bytes(buf));
    }
    Ok(crate::CsrGraph::from_parts(offsets, targets))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Magic bytes of the weighted binary format (`.wsg`).
const WSG_MAGIC: &[u8; 4] = b"GSW1";

/// Serializes a weighted graph to the compact binary `.wsg` format:
/// the unweighted layout of [`write_binary`] plus a parallel `i32` weight
/// array per stored direction.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_binary_weighted<W: Write>(g: &WGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(WSG_MAGIC)?;
    w.write_all(&[u8::from(g.is_directed())])?;
    write_wcsr(&mut w, g.out_wcsr())?;
    if g.is_directed() {
        write_wcsr(&mut w, g.in_wcsr())?;
    }
    w.flush()?;
    Ok(())
}

fn write_wcsr<W: Write>(w: &mut W, csr: &crate::WCsrGraph) -> Result<(), GraphError> {
    write_csr(w, csr.unweighted())?;
    for &weight in csr.weights_raw() {
        w.write_all(&weight.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a weighted graph written by [`write_binary_weighted`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on a malformed header and
/// [`GraphError::Io`] on truncated input.
pub fn read_binary_weighted<R: Read>(reader: R) -> Result<WGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != WSG_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected {WSG_MAGIC:?}"),
        });
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let directed = flag[0] != 0;
    let out = read_wcsr(&mut r)?;
    if directed {
        let incoming = read_wcsr(&mut r)?;
        Ok(WGraph::directed(out, incoming))
    } else {
        Ok(WGraph::undirected(out))
    }
}

fn read_wcsr<R: Read>(r: &mut R) -> Result<crate::WCsrGraph, GraphError> {
    let csr = read_csr(r)?;
    let mut weights = Vec::with_capacity(csr.num_edges());
    let mut buf = [0u8; 4];
    for _ in 0..csr.num_edges() {
        r.read_exact(&mut buf)?;
        weights.push(Weight::from_le_bytes(buf));
    }
    Ok(crate::WCsrGraph::from_parts(csr, weights))
}

/// Reads an edge-list file and builds a graph, symmetrizing when
/// `symmetrize` is set (GAP symmetrizes `.el` inputs flagged undirected).
///
/// # Errors
///
/// Propagates parse, I/O, and build failures.
pub fn graph_from_el<R: Read>(reader: R, symmetrize: bool) -> Result<Graph, GraphError> {
    let edges = read_edge_list(reader)?;
    Ok(Builder::new().symmetrize(symmetrize).build(edges)?)
}

/// Reads a weighted edge-list file and builds a weighted graph.
///
/// # Errors
///
/// Propagates parse, I/O, and build failures.
pub fn wgraph_from_wel<R: Read>(reader: R, symmetrize: bool) -> Result<WGraph, GraphError> {
    let edges = read_weighted_edge_list(reader)?;
    Ok(Builder::new()
        .symmetrize(symmetrize)
        .build_weighted(edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parse_edge_list_with_comments() {
        let text = "# a comment\n0 1\n\n1 2\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("0 1\nx y\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_field_suggests_wel() {
        let err = read_edge_list("0 1 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("wel"));
    }

    #[test]
    fn weighted_parse_roundtrip() {
        let text = "0 1 10\n1 2 20\n";
        let edges = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges[1], WEdge::new(1, 2, 20));
    }

    #[test]
    fn missing_weight_is_an_error() {
        assert!(read_weighted_edge_list("0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn text_roundtrip_preserves_graph() {
        let g = gen::kron(7, 8, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = graph_from_el(&buf[..], false).unwrap();
        // Round-trips as a directed graph over the same arcs. The text
        // format carries no vertex count, so isolated vertices above the
        // highest mentioned id are dropped on read.
        assert_eq!(g.num_arcs(), g2.num_arcs());
        assert!(g2.num_vertices() <= g.num_vertices());
        for u in g2.vertices() {
            assert_eq!(g.out_neighbors(u), g2.out_neighbors(u));
        }
        for u in g2.num_vertices() as u32..g.num_vertices() as u32 {
            assert_eq!(g.out_degree(u), 0, "dropped vertex {u} was not isolated");
        }
    }

    #[test]
    fn binary_roundtrip_directed_and_undirected() {
        for g in [
            gen::road(&gen::RoadConfig::gap_like(12), 1), // directed
            gen::urand(8, 8, 1),                          // undirected
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let g2 = read_binary(&buf[..]).unwrap();
            assert_eq!(g, g2);
        }
    }

    #[test]
    fn binary_any_picks_compact_width_for_small_graphs() {
        let g = gen::urand(8, 8, 1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let any = read_binary_any(&buf[..]).unwrap();
        assert_eq!(any.offset_width(), "u32");
        assert_eq!(any.clone().into_narrow().unwrap(), g);
        // The explicit wide reader round-trips the same topology.
        let wide = read_binary_as::<_, usize>(&buf[..]).unwrap();
        assert_eq!(wide, g.widen());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE...."[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn weighted_binary_roundtrip() {
        let edges = gen::kron_edges(6, 6, 2);
        for (sym, directed) in [(true, false), (false, true)] {
            let wg = gen::weighted_companion(64, &edges, sym, 2);
            assert_eq!(wg.is_directed(), directed);
            let mut buf = Vec::new();
            write_binary_weighted(&wg, &mut buf).unwrap();
            let wg2 = read_binary_weighted(&buf[..]).unwrap();
            assert_eq!(wg, wg2);
        }
    }

    #[test]
    fn weighted_binary_rejects_unweighted_magic() {
        let g = gen::urand(6, 6, 1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert!(read_binary_weighted(&buf[..]).is_err());
    }

    #[test]
    fn truncated_weighted_input_is_an_io_error() {
        let edges = gen::kron_edges(6, 6, 3);
        let wg = gen::weighted_companion(64, &edges, true, 3);
        let mut buf = Vec::new();
        write_binary_weighted(&wg, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary_weighted(&buf[..]).is_err());
    }
}
