//! The full graph types consumed by kernels: both adjacency directions,
//! directedness, and (for [`WGraph`]) edge weights.
//!
//! Following the GAP reference implementation, a graph stores *both* its
//! outgoing and incoming adjacency so that pull-direction traversal never
//! needs an (untimed) transposition inside a kernel. For undirected graphs
//! the two directions coincide and are stored once.
//!
//! Like [`CsrGraph`], the offset width is a type parameter defaulting to
//! `u32`; [`AnyGraph`] is the runtime dispatch between the compact form and
//! the `usize` fallback for arc counts at or above `u32::MAX`.

use crate::csr::{CsrGraph, WCsrGraph};
use crate::types::{NodeId, OffsetIndex, Weight};

/// An unweighted graph with both adjacency directions available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph<O: OffsetIndex = u32> {
    out: CsrGraph<O>,
    /// `None` for undirected graphs (incoming == outgoing).
    incoming: Option<CsrGraph<O>>,
    directed: bool,
}

impl<O: OffsetIndex> Graph<O> {
    /// Creates a directed graph from its out- and in-adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the two directions disagree on vertex or edge counts.
    pub fn directed(out: CsrGraph<O>, incoming: CsrGraph<O>) -> Self {
        assert_eq!(out.num_vertices(), incoming.num_vertices());
        assert_eq!(out.num_edges(), incoming.num_edges());
        Graph {
            out,
            incoming: Some(incoming),
            directed: true,
        }
    }

    /// Creates an undirected graph from a symmetric adjacency.
    pub fn undirected(adj: CsrGraph<O>) -> Self {
        Graph {
            out: adj,
            incoming: None,
            directed: false,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored directed arcs (an undirected edge counts twice).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out.num_edges()
    }

    /// Number of edges as GAP reports them: arcs for directed graphs,
    /// arc-count / 2 for undirected graphs.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.out.num_edges()
        } else {
            self.out.num_edges() / 2
        }
    }

    /// `true` if the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_csr().degree(u)
    }

    /// Sorted out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.neighbors(u)
    }

    /// Sorted in-neighbors of `u`.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.in_csr().neighbors(u)
    }

    /// The outgoing CSR.
    pub fn out_csr(&self) -> &CsrGraph<O> {
        &self.out
    }

    /// The incoming CSR (same object as outgoing when undirected).
    #[inline]
    pub fn in_csr(&self) -> &CsrGraph<O> {
        self.incoming.as_ref().unwrap_or(&self.out)
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_vertices() as NodeId
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Resident adjacency bytes across every stored direction.
    pub fn graph_bytes(&self) -> usize {
        self.out.graph_bytes() + self.incoming.as_ref().map_or(0, CsrGraph::graph_bytes)
    }

    /// Re-expresses the graph with offset width `P`, or `None` if the arc
    /// count does not fit `P`. Topology is unchanged bit for bit.
    pub fn to_width<P: OffsetIndex>(&self) -> Option<Graph<P>> {
        Some(Graph {
            out: self.out.to_width::<P>()?,
            incoming: match &self.incoming {
                Some(inc) => Some(inc.to_width::<P>()?),
                None => None,
            },
            directed: self.directed,
        })
    }

    /// The `usize`-offset twin of this graph (always fits).
    pub fn widen(&self) -> Graph<usize> {
        self.to_width::<usize>().expect("usize offsets always fit")
    }
}

/// A weighted graph with both adjacency directions available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WGraph<O: OffsetIndex = u32> {
    out: WCsrGraph<O>,
    incoming: Option<WCsrGraph<O>>,
    directed: bool,
}

impl<O: OffsetIndex> WGraph<O> {
    /// Creates a directed weighted graph from its two adjacency directions.
    ///
    /// # Panics
    ///
    /// Panics if the directions disagree on vertex or edge counts.
    pub fn directed(out: WCsrGraph<O>, incoming: WCsrGraph<O>) -> Self {
        assert_eq!(out.num_vertices(), incoming.num_vertices());
        assert_eq!(out.num_edges(), incoming.num_edges());
        WGraph {
            out,
            incoming: Some(incoming),
            directed: true,
        }
    }

    /// Creates an undirected weighted graph from a symmetric adjacency.
    pub fn undirected(adj: WCsrGraph<O>) -> Self {
        WGraph {
            out: adj,
            incoming: None,
            directed: false,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out.num_edges()
    }

    /// `true` if the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// Sorted out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.neighbors(u)
    }

    /// `(neighbor, weight)` pairs of `u` in the outgoing direction.
    pub fn out_neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.out.neighbors_weighted(u)
    }

    /// `(neighbor, weight)` pairs of `u` in the incoming direction.
    pub fn in_neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.in_wcsr().neighbors_weighted(u)
    }

    /// The outgoing weighted CSR.
    pub fn out_wcsr(&self) -> &WCsrGraph<O> {
        &self.out
    }

    /// The incoming weighted CSR (same as outgoing when undirected).
    #[inline]
    pub fn in_wcsr(&self) -> &WCsrGraph<O> {
        self.incoming.as_ref().unwrap_or(&self.out)
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_vertices() as NodeId
    }

    /// Resident adjacency bytes (offsets, targets, weights) across every
    /// stored direction.
    pub fn graph_bytes(&self) -> usize {
        self.out.graph_bytes() + self.incoming.as_ref().map_or(0, WCsrGraph::graph_bytes)
    }

    /// Re-expresses the graph with offset width `P` (see
    /// [`Graph::to_width`]).
    pub fn to_width<P: OffsetIndex>(&self) -> Option<WGraph<P>> {
        Some(WGraph {
            out: self.out.to_width::<P>()?,
            incoming: match &self.incoming {
                Some(inc) => Some(inc.to_width::<P>()?),
                None => None,
            },
            directed: self.directed,
        })
    }

    /// The `usize`-offset twin of this graph (always fits).
    pub fn widen(&self) -> WGraph<usize> {
        self.to_width::<usize>().expect("usize offsets always fit")
    }
}

/// Runtime dispatch between the compact `u32`-offset graph every in-repo
/// input fits and the `usize`-offset fallback for arc counts at or above
/// `u32::MAX`. Produced by [`crate::Builder::build_any`] and
/// [`crate::io::read_binary_any`]; kernels monomorphize per width, so the
/// branch happens once at the boundary rather than per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyGraph {
    /// Compact form: 32-bit row offsets.
    Narrow(Graph<u32>),
    /// Wide fallback: `usize` row offsets.
    Wide(Graph<usize>),
}

impl AnyGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            AnyGraph::Narrow(g) => g.num_vertices(),
            AnyGraph::Wide(g) => g.num_vertices(),
        }
    }

    /// Number of edges (GAP counting).
    pub fn num_edges(&self) -> usize {
        match self {
            AnyGraph::Narrow(g) => g.num_edges(),
            AnyGraph::Wide(g) => g.num_edges(),
        }
    }

    /// Resident adjacency bytes.
    pub fn graph_bytes(&self) -> usize {
        match self {
            AnyGraph::Narrow(g) => g.graph_bytes(),
            AnyGraph::Wide(g) => g.graph_bytes(),
        }
    }

    /// Offset-width label (`"u32"` / `"usize"`).
    pub fn offset_width(&self) -> &'static str {
        match self {
            AnyGraph::Narrow(_) => <u32 as OffsetIndex>::NAME,
            AnyGraph::Wide(_) => <usize as OffsetIndex>::NAME,
        }
    }

    /// The compact graph, if this is the narrow form.
    pub fn into_narrow(self) -> Option<Graph<u32>> {
        match self {
            AnyGraph::Narrow(g) => Some(g),
            AnyGraph::Wide(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_csr() -> CsrGraph {
        // 0 -> 1 -> 2
        CsrGraph::from_parts(vec![0, 1, 2, 2], vec![1, 2])
    }

    fn line_in_csr() -> CsrGraph {
        CsrGraph::from_parts(vec![0, 0, 1, 2], vec![0, 1])
    }

    #[test]
    fn directed_graph_has_distinct_directions() {
        let g = Graph::directed(line_csr(), line_in_csr());
        assert!(g.is_directed());
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_graph_shares_adjacency() {
        // symmetric triangle
        let adj: CsrGraph = CsrGraph::from_parts(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]);
        let g = Graph::undirected(adj);
        assert!(!g.is_directed());
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(1), g.in_neighbors(1));
    }

    #[test]
    fn average_degree() {
        let g = Graph::directed(line_csr(), line_in_csr());
        assert!((g.average_degree() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn widen_preserves_topology_and_grows_bytes() {
        let g = Graph::directed(line_csr(), line_in_csr());
        let w = g.widen();
        assert_eq!(w.num_vertices(), g.num_vertices());
        assert_eq!(w.num_arcs(), g.num_arcs());
        assert!(w.is_directed());
        for u in g.vertices() {
            assert_eq!(w.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(w.in_neighbors(u), g.in_neighbors(u));
        }
        assert!(w.graph_bytes() > g.graph_bytes());
        assert_eq!(w.to_width::<u32>().unwrap(), g);
    }

    #[test]
    fn any_graph_reports_width() {
        let g = Graph::directed(line_csr(), line_in_csr());
        let wide = AnyGraph::Wide(g.widen());
        let narrow = AnyGraph::Narrow(g);
        assert_eq!(narrow.offset_width(), "u32");
        assert_eq!(wide.offset_width(), "usize");
        assert_eq!(narrow.num_edges(), wide.num_edges());
        assert!(narrow.graph_bytes() < wide.graph_bytes());
        assert!(wide.into_narrow().is_none());
    }
}
