//! The full graph types consumed by kernels: both adjacency directions,
//! directedness, and (for [`WGraph`]) edge weights.
//!
//! Following the GAP reference implementation, a graph stores *both* its
//! outgoing and incoming adjacency so that pull-direction traversal never
//! needs an (untimed) transposition inside a kernel. For undirected graphs
//! the two directions coincide and are stored once.

use crate::csr::{CsrGraph, WCsrGraph};
use crate::types::{NodeId, Weight};

/// An unweighted graph with both adjacency directions available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    out: CsrGraph,
    /// `None` for undirected graphs (incoming == outgoing).
    incoming: Option<CsrGraph>,
    directed: bool,
}

impl Graph {
    /// Creates a directed graph from its out- and in-adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the two directions disagree on vertex or edge counts.
    pub fn directed(out: CsrGraph, incoming: CsrGraph) -> Self {
        assert_eq!(out.num_vertices(), incoming.num_vertices());
        assert_eq!(out.num_edges(), incoming.num_edges());
        Graph {
            out,
            incoming: Some(incoming),
            directed: true,
        }
    }

    /// Creates an undirected graph from a symmetric adjacency.
    pub fn undirected(adj: CsrGraph) -> Self {
        Graph {
            out: adj,
            incoming: None,
            directed: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored directed arcs (an undirected edge counts twice).
    pub fn num_arcs(&self) -> usize {
        self.out.num_edges()
    }

    /// Number of edges as GAP reports them: arcs for directed graphs,
    /// arc-count / 2 for undirected graphs.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.out.num_edges()
        } else {
            self.out.num_edges() / 2
        }
    }

    /// `true` if the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_csr().degree(u)
    }

    /// Sorted out-neighbors of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.neighbors(u)
    }

    /// Sorted in-neighbors of `u`.
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.in_csr().neighbors(u)
    }

    /// The outgoing CSR.
    pub fn out_csr(&self) -> &CsrGraph {
        &self.out
    }

    /// The incoming CSR (same object as outgoing when undirected).
    pub fn in_csr(&self) -> &CsrGraph {
        self.incoming.as_ref().unwrap_or(&self.out)
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_vertices() as NodeId
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }
}

/// A weighted graph with both adjacency directions available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WGraph {
    out: WCsrGraph,
    incoming: Option<WCsrGraph>,
    directed: bool,
}

impl WGraph {
    /// Creates a directed weighted graph from its two adjacency directions.
    ///
    /// # Panics
    ///
    /// Panics if the directions disagree on vertex or edge counts.
    pub fn directed(out: WCsrGraph, incoming: WCsrGraph) -> Self {
        assert_eq!(out.num_vertices(), incoming.num_vertices());
        assert_eq!(out.num_edges(), incoming.num_edges());
        WGraph {
            out,
            incoming: Some(incoming),
            directed: true,
        }
    }

    /// Creates an undirected weighted graph from a symmetric adjacency.
    pub fn undirected(adj: WCsrGraph) -> Self {
        WGraph {
            out: adj,
            incoming: None,
            directed: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored directed arcs.
    pub fn num_arcs(&self) -> usize {
        self.out.num_edges()
    }

    /// `true` if the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// Sorted out-neighbors of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.neighbors(u)
    }

    /// `(neighbor, weight)` pairs of `u` in the outgoing direction.
    pub fn out_neighbors_weighted(
        &self,
        u: NodeId,
    ) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.out.neighbors_weighted(u)
    }

    /// `(neighbor, weight)` pairs of `u` in the incoming direction.
    pub fn in_neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.in_wcsr().neighbors_weighted(u)
    }

    /// The outgoing weighted CSR.
    pub fn out_wcsr(&self) -> &WCsrGraph {
        &self.out
    }

    /// The incoming weighted CSR (same as outgoing when undirected).
    pub fn in_wcsr(&self) -> &WCsrGraph {
        self.incoming.as_ref().unwrap_or(&self.out)
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_vertices() as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_csr() -> CsrGraph {
        // 0 -> 1 -> 2
        CsrGraph::from_parts(vec![0, 1, 2, 2], vec![1, 2])
    }

    fn line_in_csr() -> CsrGraph {
        CsrGraph::from_parts(vec![0, 0, 1, 2], vec![0, 1])
    }

    #[test]
    fn directed_graph_has_distinct_directions() {
        let g = Graph::directed(line_csr(), line_in_csr());
        assert!(g.is_directed());
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_graph_shares_adjacency() {
        // symmetric triangle
        let adj = CsrGraph::from_parts(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]);
        let g = Graph::undirected(adj);
        assert!(!g.is_directed());
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(1), g.in_neighbors(1));
    }

    #[test]
    fn average_degree() {
        let g = Graph::directed(line_csr(), line_in_csr());
        assert!((g.average_degree() - 2.0 / 3.0).abs() < 1e-12);
    }
}
