//! Sorted-set intersection kernels shared by every triangle-counting path.
//!
//! The paper credits GKC's TC wins to hardware-tuned intersection kernels
//! (Table III: "SIMD-based set intersection"). This module reproduces that
//! shape in portable Rust with two strategies picked per pair:
//!
//! * **galloping** — when one list is at least [`GALLOP_RATIO`]× shorter
//!   than the other, each element of the short list seeks into the long one
//!   by exponential-then-binary search, bounding work at
//!   `O(|small| · log |large|)` instead of `O(|small| + |large|)`;
//! * **lane scan** — for balanced lengths, each element of the shorter list
//!   is compared against an 8-wide window of the longer one with a
//!   branch-free equality loop the compiler auto-vectorizes (one SIMD
//!   compare per window), advancing the window a full lane at a time.
//!
//! Every function reports the number of *element comparisons* it performed
//! so the strategy choice is auditable from the telemetry ledger
//! (`tc_intersections` counts comparisons, not calls — satellite of the
//! layout-engine change).

/// Length ratio at which the adaptive strategy switches to galloping.
pub const GALLOP_RATIO: usize = 16;

/// Window width of the balanced lane scan. Eight `u32` lanes fill a
/// 256-bit vector register; the equality loop below is shaped so LLVM
/// vectorizes it at that width (verified by `layout_bench`'s TC gate).
pub const LANES: usize = 8;

/// Result of one intersection: the match count plus the element
/// comparisons spent finding it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Intersection {
    /// Number of elements present in both lists.
    pub count: u64,
    /// Element comparisons performed (each probed element counts once;
    /// a lane-window probe counts [`LANES`] comparisons).
    pub comparisons: u64,
}

impl Intersection {
    fn zero() -> Self {
        Intersection::default()
    }
}

/// Counts `|a ∩ b|`, picking the strategy from the length ratio.
///
/// Generic over the element type so both the `u32` adjacency rows and
/// grb's widened `u64` column indices share one kernel.
pub fn count<T: Copy + Ord>(a: &[T], b: &[T]) -> Intersection {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Intersection::zero();
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_count(small, large)
    } else {
        lane_count(small, large)
    }
}

/// Counts elements of `a ∩ b` strictly below `ceiling` — the oriented form
/// triangle counting uses. Both lists are trimmed by binary search first so
/// the inner loops never test the ceiling.
pub fn count_below<T: Copy + Ord>(a: &[T], b: &[T], ceiling: T) -> Intersection {
    let (a, ca) = trim_below(a, ceiling);
    let (b, cb) = trim_below(b, ceiling);
    let mut out = count(a, b);
    out.comparisons += ca + cb;
    out
}

/// Scalar branch-free two-pointer merge. This is the pre-layout-engine
/// baseline, kept public so `layout_bench` can time the adaptive kernel
/// against it.
pub fn merge_count<T: Copy + Ord>(a: &[T], b: &[T]) -> Intersection {
    let mut out = Intersection::zero();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        out.count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
        out.comparisons += 1;
    }
    out
}

/// `true` if sorted `row` contains `v`, via exponential-then-binary seek
/// (cheap for the low-id targets oriented adjacency favors, logarithmic in
/// the worst case).
pub fn contains<T: Copy + Ord>(row: &[T], v: T) -> bool {
    let mut cmps = 0u64;
    let pos = gallop_seek(row, v, &mut cmps);
    row.get(pos).is_some_and(|&y| y == v)
}

/// Trims `s` to its prefix strictly below `ceiling`, charging the binary
/// search probes as comparisons.
fn trim_below<T: Copy + Ord>(s: &[T], ceiling: T) -> (&[T], u64) {
    // All probes of a partition_point over `len` elements: ceil(log2)+1.
    let probes = (s.len() + 1).next_power_of_two().trailing_zeros() as u64;
    (&s[..s.partition_point(|&x| x < ceiling)], probes)
}

/// First index `>= 0` in sorted `s` whose element is `>= x`, found by
/// exponential bracketing from the front followed by binary search. Each
/// probed element adds one comparison.
fn gallop_seek<T: Copy + Ord>(s: &[T], x: T, cmps: &mut u64) -> usize {
    if s.is_empty() {
        return 0;
    }
    *cmps += 1;
    if s[0] >= x {
        return 0;
    }
    // Invariant: s[lo - 1] < x. Double the probe distance until an element
    // >= x brackets the answer.
    let mut lo = 1usize;
    let mut step = 1usize;
    let mut hi = loop {
        let probe = lo + step;
        if probe > s.len() {
            break s.len();
        }
        *cmps += 1;
        if s[probe - 1] < x {
            lo = probe;
            step *= 2;
        } else {
            break probe - 1;
        }
    };
    // Binary search in s[lo..hi] for the first element >= x.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *cmps += 1;
        if s[mid] < x {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Galloping intersection: seek each element of `small` into the unread
/// suffix of `large`.
fn gallop_count<T: Copy + Ord>(small: &[T], large: &[T]) -> Intersection {
    let mut out = Intersection::zero();
    let mut rest = large;
    for &x in small {
        let pos = gallop_seek(rest, x, &mut out.comparisons);
        rest = &rest[pos..];
        match rest.first() {
            Some(&y) => {
                out.comparisons += 1;
                if y == x {
                    out.count += 1;
                    rest = &rest[1..];
                }
            }
            None => break,
        }
    }
    out
}

/// Balanced-lengths path: each element of `small` is tested against an
/// 8-lane window of `large` with a branch-free equality reduction
/// (auto-vectorized), and the window advances a whole lane at a time.
/// Falls back to the scalar merge for the tail that no longer fills a
/// window.
fn lane_count<T: Copy + Ord>(small: &[T], large: &[T]) -> Intersection {
    let mut out = Intersection::zero();
    let mut i = 0usize;
    let mut j = 0usize;
    'outer: while i < small.len() && j + LANES <= large.len() {
        let x = small[i];
        // Advance the window a lane at a time while it is entirely < x.
        // Elements behind the window are < every remaining small element,
        // so a match of x (if any) sits inside the current window.
        while large[j + LANES - 1] < x {
            out.comparisons += 1;
            j += LANES;
            if j + LANES > large.len() {
                break 'outer;
            }
        }
        out.comparisons += 1; // the window test that stopped the advance
        let w = &large[j..j + LANES];
        // Branch-free 8-lane equality reduction; LLVM lowers this to one
        // vector compare + movemask at LANES = 8 u32 lanes.
        let mut hit = 0u32;
        for &y in w {
            hit += u32::from(y == x);
        }
        out.comparisons += LANES as u64;
        out.count += u64::from(hit);
        i += 1;
    }
    // Scalar tail: whatever is left of either list.
    let tail = merge_count(&small[i..], &large[j..]);
    out.count += tail.count;
    out.comparisons += tail.comparisons;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    /// Reference intersection via std sets.
    fn oracle(a: &[NodeId], b: &[NodeId]) -> u64 {
        let sb: std::collections::BTreeSet<_> = b.iter().copied().collect();
        a.iter().filter(|x| sb.contains(x)).count() as u64
    }

    fn strided(start: NodeId, stride: NodeId, len: usize) -> Vec<NodeId> {
        (0..len as NodeId).map(|i| start + i * stride).collect()
    }

    #[test]
    fn all_strategies_agree_with_oracle() {
        let cases: Vec<(Vec<NodeId>, Vec<NodeId>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![1, 2, 3, 4, 5, 6]),
            (strided(0, 2, 50), strided(0, 3, 50)),
            (strided(0, 1, 7), strided(0, 1, 7)),
            (strided(0, 1, 8), strided(4, 1, 200)),
            (strided(100, 1, 3), strided(0, 1, 90)),
            (strided(0, 7, 1000), strided(0, 11, 1000)),
        ];
        for (a, b) in cases {
            let want = oracle(&a, &b);
            assert_eq!(count(&a, &b).count, want, "adaptive on {a:?} ∩ {b:?}");
            assert_eq!(merge_count(&a, &b).count, want, "merge on {a:?} ∩ {b:?}");
            assert_eq!(count(&b, &a).count, want, "adaptive is symmetric");
        }
    }

    #[test]
    fn count_below_matches_trimmed_oracle() {
        let a = strided(0, 2, 40);
        let b = strided(0, 3, 40);
        for ceiling in [0, 1, 7, 35, 1000] {
            let want = a.iter().filter(|&&x| x < ceiling && b.contains(&x)).count() as u64;
            assert_eq!(
                count_below(&a, &b, ceiling).count,
                want,
                "ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn galloping_engages_and_beats_merge_on_skew() {
        let small = strided(0, 997, 8);
        let large = strided(0, 1, 100_000);
        let adaptive = count(&small, &large);
        let merge = merge_count(&small, &large);
        assert_eq!(adaptive.count, merge.count);
        assert!(
            adaptive.comparisons * 10 < merge.comparisons,
            "gallop {} vs merge {} comparisons",
            adaptive.comparisons,
            merge.comparisons
        );
    }

    #[test]
    fn skew_ratio_sweep_agrees_with_oracle() {
        // Adversarial cardinality skews from 1:1 to 1:10⁴, crossing the
        // GALLOP_RATIO threshold in both directions, plus the degenerate
        // shapes a degree-ordered TC prefix actually produces.
        let long = strided(0, 3, 30_000);
        for small_len in [1usize, 3, 30, 300, 3_000, 30_000] {
            for stride in [1, 2, 9_973] {
                let small = strided(1, stride, small_len);
                let want = oracle(&small, &long);
                let fwd = count(&small, &long);
                let rev = count(&long, &small);
                assert_eq!(
                    fwd.count,
                    want,
                    "skew 1:{} stride {stride}",
                    30_000 / small_len
                );
                assert_eq!(rev.count, want, "reversed skew, stride {stride}");
                assert_eq!(merge_count(&small, &long).count, want, "merge oracle");
            }
        }
        // Subset: every element of the small side hits.
        let subset = strided(0, 300, 100);
        assert_eq!(count(&subset, &long).count, oracle(&subset, &long));
        assert_eq!(count(&subset, &long).count, 100);
        // Disjoint: interleaved but never equal.
        let disjoint = strided(1, 3, 10_000);
        assert_eq!(count(&disjoint, &long).count, 0);
        assert_eq!(merge_count(&disjoint, &long).count, 0);
        // Empty against everything.
        assert_eq!(count::<NodeId>(&[], &long).count, 0);
        assert_eq!(count(&long, &[]).count, 0);
    }

    #[test]
    fn comparisons_are_positive_for_nonempty_inputs() {
        let a = strided(0, 1, 16);
        let b = strided(8, 1, 16);
        for r in [count(&a, &b), merge_count(&a, &b), count_below(&a, &b, 20)] {
            assert!(r.comparisons > 0);
        }
    }

    #[test]
    fn contains_agrees_with_linear_scan() {
        let row = strided(3, 5, 37);
        for v in 0..200 {
            assert_eq!(contains(&row, v), row.contains(&v), "element {v}");
        }
        assert!(!contains::<u32>(&[], 7));
    }
}
