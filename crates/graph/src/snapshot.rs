//! Versioned, mmap-able on-disk CSR snapshots.
//!
//! The corpus generators are deterministic but not free: at benchmark
//! scales, regenerating and rebuilding every graph dominates process
//! start-up (the paper's Table I graphs make loading a first-class
//! concern, and `gapbs-serve` pays the whole corpus on every cold
//! start). A snapshot stores the finished CSR arrays in their in-memory
//! layout so a later process maps the file and serves the arrays
//! straight out of the page cache — zero copies, millisecond loads.
//!
//! # File layout (format version 2, little-endian)
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────
//!      0     8  magic "GAPSNAP\x01"
//!      8     2  format version (u16)
//!     10     1  offset width in bytes (4 = u32, 8 = usize)
//!     11     1  flags (1 directed, 2 weighted, 4 sym, 8 candidates)
//!     12     4  section count (u32)
//!     16     8  num_vertices (u64)
//!     24     8  num_arcs (u64, out-direction)
//!     32     8  aux (delta-stepping Δ for bundles, else 0)
//!     40     8  params hash (generator provenance, 0 = unspecified)
//!     48     8  reserved (0)
//!     56     8  checksum over bytes [0, 56) + section table
//!     64   32×k section table
//!   ····        64-byte-aligned sections
//! ```
//!
//! Each section-table row is `kind (u32), encoding (u32), file offset
//! (u64), byte length (u64), checksum (u64)`. Checksums are FNV-1a over
//! 64-bit little-endian words (trailing bytes folded individually) —
//! one linear pass at load catches any single-byte corruption.
//!
//! Loads verify the header and every section checksum, then hand out
//! [`crate::Segment`] views into the mapping: no O(V+E) per-row
//! semantic validation and no copies. Memory safety never rests on the
//! checksums alone, though — every load also runs the cheap structural
//! checks that unsafe downstream code depends on (offset arrays
//! monotone and bounded, raw targets in `[0, n)`), so a
//! checksum-consistent but malformed file fails with a structured
//! error instead of reaching kernels or the parallel decoder. Paranoid
//! loads (`LoadOptions::paranoid`) additionally re-run the full CSR
//! invariant sweep that [`crate::CsrGraph::from_parts`] performs
//! (sorted duplicate-free rows), surfacing violations as
//! [`SnapshotError::Invalid`].
//!
//! # Compressed adjacency
//!
//! A target section may instead store encoding 1: a `(n+1) × u64` row
//! byte-index followed by a per-row delta + LEB128 varint stream (first
//! neighbor absolute, then `gap − 1` per successor — rows are sorted
//! and duplicate-free, so every gap is ≥ 1). The writer measures both
//! encodings and keeps the compressed form when it beats raw by the
//! [`COMPRESS_THRESHOLD`] margin ([`Compression::Auto`]). Compressed
//! rows decode through [`CompressedCsr`]'s streaming iterator (pull
//! kernels, [`crate::Strips::pull_compressed`]) or in one parallel pass
//! into an owned CSR that is bit-identical to the builder's.

use std::path::Path;
use std::sync::Arc;

use crate::csr::{check_parts, CsrGraph, WCsrGraph};
use crate::error::{GraphError, SnapshotError};
use crate::graph::{Graph, WGraph};
use crate::segment::{as_bytes, MapRegion, Pod, Segment};
use crate::types::{NodeId, OffsetIndex, Weight};
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// File magic: "GAPSNAP" plus a non-text byte so `file`/editors never
/// mistake a snapshot for text.
pub const MAGIC: [u8; 8] = *b"GAPSNAP\x01";

/// Format version this build reads and writes. Version 2 switched the
/// section checksums to the canonical FNV-1a 64-bit prime (v1 used a
/// non-standard constant); snapshots are a cache, so v1 files are
/// simply rebuilt.
pub const FORMAT_VERSION: u16 = 2;

/// Every section starts on a 64-byte boundary (cache line; also
/// satisfies every element alignment the format uses).
pub const SECTION_ALIGN: u64 = 64;

/// Auto compression keeps the varint form only when it is at least
/// this much smaller than raw (stored < raw × 0.9).
pub const COMPRESS_THRESHOLD: f64 = 0.9;

const HEADER_BYTES: usize = 64;
const SECTION_ROW_BYTES: usize = 32;
/// More section kinds than the format defines; a count above this is
/// malformed rather than merely unknown.
const MAX_SECTIONS: u32 = 64;
/// Vertex/arc sanity cap: 2^48 elements is far beyond any input this
/// format will see and keeps every size computation overflow-free.
const MAX_COUNT: u64 = 1 << 48;

const FLAG_DIRECTED: u8 = 1;
const FLAG_WEIGHTED: u8 = 2;
const FLAG_SYM: u8 = 4;
const FLAG_CANDIDATES: u8 = 8;

const ENC_RAW: u32 = 0;
const ENC_DELTA_VARINT: u32 = 1;

/// Section kinds. The out direction is the graph's stored adjacency;
/// in-sections exist only for directed graphs; sym-sections hold the
/// symmetrized TC view of a directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
enum SectionKind {
    OutOffsets = 1,
    OutTargets = 2,
    OutWeights = 3,
    InOffsets = 4,
    InTargets = 5,
    InWeights = 6,
    SymOffsets = 7,
    SymTargets = 8,
    SourceCandidates = 9,
}

impl SectionKind {
    fn name(self) -> &'static str {
        match self {
            SectionKind::OutOffsets => "out_offsets",
            SectionKind::OutTargets => "out_targets",
            SectionKind::OutWeights => "out_weights",
            SectionKind::InOffsets => "in_offsets",
            SectionKind::InTargets => "in_targets",
            SectionKind::InWeights => "in_weights",
            SectionKind::SymOffsets => "sym_offsets",
            SectionKind::SymTargets => "sym_targets",
            SectionKind::SourceCandidates => "source_candidates",
        }
    }
}

/// FNV-1a 64-bit offset basis (also the seed of the cache-key hash in
/// `gapbs-core`'s `snapshot_cache::params_hash`).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Canonical FNV-1a 64-bit prime, 2^40 + 2^8 + 0xb3.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over 64-bit little-endian words, trailing bytes folded
/// individually. Word-wise folding keeps the load-time integrity scan
/// ~8× cheaper than byte-wise FNV while still flipping on any
/// single-byte change.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV1A_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(FNV1A_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV1A_PRIME);
    }
    h
}

// ─────────────────────────── varint codec ───────────────────────────

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `pos`; `None` on truncation or a value
/// that overflows 64 bits.
fn read_varint(bytes: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut used = 0usize;
    loop {
        let byte = *bytes.get(pos + used)?;
        used += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some((v, used));
        }
        shift += 7;
    }
}

/// Delta + LEB128 encodes sorted duplicate-free rows. Returns the
/// payload: `(n+1) × u64` row byte starts, then the stream.
fn encode_targets<O: OffsetIndex>(offsets: &[O], targets: &[NodeId]) -> Vec<u8> {
    let n = offsets.len() - 1;
    let mut stream = Vec::with_capacity(targets.len() * 2);
    let mut row_starts = Vec::with_capacity(n + 1);
    row_starts.push(0u64);
    for u in 0..n {
        let row = &targets[offsets[u].to_usize()..offsets[u + 1].to_usize()];
        let mut prev = 0u64;
        for (i, &v) in row.iter().enumerate() {
            let v = u64::from(v);
            if i == 0 {
                write_varint(&mut stream, v);
            } else {
                write_varint(&mut stream, v - prev - 1);
            }
            prev = v;
        }
        row_starts.push(stream.len() as u64);
    }
    let mut payload = Vec::with_capacity((n + 1) * 8 + stream.len());
    for &s in &row_starts {
        payload.extend_from_slice(&s.to_le_bytes());
    }
    payload.extend_from_slice(&stream);
    payload
}

/// Decodes one row's varint bytes into `out`. `n` bounds the targets.
/// Returns `false` on truncation, overflow, out-of-range or unsorted
/// values, or leftover bytes.
fn decode_row(bytes: &[u8], out: &mut [NodeId], n: usize) -> bool {
    let mut pos = 0usize;
    let mut prev = 0u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let Some((raw, used)) = read_varint(bytes, pos) else {
            return false;
        };
        pos += used;
        let Some(val) = (if i == 0 {
            Some(raw)
        } else {
            prev.checked_add(1).and_then(|p| p.checked_add(raw))
        }) else {
            return false;
        };
        if val >= n as u64 {
            return false;
        }
        *slot = val as NodeId;
        prev = val;
    }
    pos == bytes.len()
}

// ──────────────────────────── writing ───────────────────────────────

/// Per-target-section encoding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Measure both encodings, keep varint only when it beats raw by
    /// [`COMPRESS_THRESHOLD`].
    Auto,
    /// Always store raw targets (maximum load speed, zero copies).
    Never,
    /// Always store the varint form (for tests and size experiments).
    Always,
}

/// Everything one snapshot stores. `graph` is required; the other
/// structures make the file a full [`SnapshotBundle`] a benchmark
/// process can cold-start from.
#[derive(Debug)]
pub struct SnapshotContents<'a, O: OffsetIndex> {
    /// The graph (both directions when directed).
    pub graph: &'a Graph<O>,
    /// Weighted companion. Must share `graph`'s exact topology — the
    /// snapshot stores its weights against the same target arrays.
    pub wgraph: Option<&'a WGraph<O>>,
    /// Symmetrized view (directed graphs only; undirected graphs are
    /// their own symmetrization and store nothing extra).
    pub sym_graph: Option<&'a Graph<O>>,
    /// Benchmark source candidates.
    pub source_candidates: Option<&'a [NodeId]>,
    /// Delta-stepping Δ (stored in the header's aux field).
    pub delta: Weight,
    /// Generator-provenance hash for cache keying (0 = unspecified).
    pub params_hash: u64,
}

impl<'a, O: OffsetIndex> SnapshotContents<'a, O> {
    /// A topology-only snapshot.
    pub fn graph_only(graph: &'a Graph<O>, params_hash: u64) -> Self {
        SnapshotContents {
            graph,
            wgraph: None,
            sym_graph: None,
            source_candidates: None,
            delta: 0,
            params_hash,
        }
    }
}

/// One written section's size accounting.
#[derive(Debug, Clone)]
pub struct SectionStats {
    /// Section name.
    pub name: &'static str,
    /// `"raw"` or `"delta-varint"`.
    pub encoding: &'static str,
    /// Bytes the raw encoding would use.
    pub raw_bytes: u64,
    /// Bytes actually stored.
    pub stored_bytes: u64,
}

/// What [`write`] produced.
#[derive(Debug, Clone)]
pub struct WriteStats {
    /// Total file size.
    pub file_bytes: u64,
    /// Per-section accounting.
    pub sections: Vec<SectionStats>,
}

impl WriteStats {
    /// Stored ÷ raw bytes over the adjacency (target) sections — the
    /// per-graph compression ratio `snapshot_bench` reports. 1.0 when
    /// every target section is raw.
    pub fn adjacency_ratio(&self) -> f64 {
        let (mut raw, mut stored) = (0u64, 0u64);
        for s in &self.sections {
            if s.name.ends_with("targets") {
                raw += s.raw_bytes;
                stored += s.stored_bytes;
            }
        }
        if raw == 0 {
            1.0
        } else {
            stored as f64 / raw as f64
        }
    }
}

enum Payload<'a> {
    Borrowed(&'a [u8]),
    Owned(Vec<u8>),
}

impl Payload<'_> {
    fn bytes(&self) -> &[u8] {
        match self {
            Payload::Borrowed(b) => b,
            Payload::Owned(v) => v,
        }
    }
}

/// Appends one CSR direction (offsets section + targets section) to the
/// section list, choosing the target encoding per `compression`. The
/// raw byte images are the arrays' exact in-memory layout — that is
/// what makes the later mmap reinterpretation sound.
fn push_csr<'a, O: OffsetIndex>(
    sections: &mut Vec<(SectionKind, u32, Payload<'a>)>,
    stats: &mut Vec<SectionStats>,
    off_kind: SectionKind,
    tgt_kind: SectionKind,
    csr: &'a CsrGraph<O>,
    compression: Compression,
) {
    let off_bytes = as_bytes(csr.offsets_raw());
    sections.push((off_kind, ENC_RAW, Payload::Borrowed(off_bytes)));
    stats.push(SectionStats {
        name: off_kind.name(),
        encoding: "raw",
        raw_bytes: off_bytes.len() as u64,
        stored_bytes: off_bytes.len() as u64,
    });

    let raw = as_bytes(csr.targets_raw());
    let compressed = match compression {
        Compression::Never => None,
        Compression::Always => Some(encode_targets(csr.offsets_raw(), csr.targets_raw())),
        Compression::Auto => {
            let enc = encode_targets(csr.offsets_raw(), csr.targets_raw());
            if !raw.is_empty() && (enc.len() as f64) < raw.len() as f64 * COMPRESS_THRESHOLD {
                Some(enc)
            } else {
                None
            }
        }
    };
    match compressed {
        Some(enc) => {
            stats.push(SectionStats {
                name: tgt_kind.name(),
                encoding: "delta-varint",
                raw_bytes: raw.len() as u64,
                stored_bytes: enc.len() as u64,
            });
            sections.push((tgt_kind, ENC_DELTA_VARINT, Payload::Owned(enc)));
        }
        None => {
            stats.push(SectionStats {
                name: tgt_kind.name(),
                encoding: "raw",
                raw_bytes: raw.len() as u64,
                stored_bytes: raw.len() as u64,
            });
            sections.push((tgt_kind, ENC_RAW, Payload::Borrowed(raw)));
        }
    }
}

fn invalid(message: impl Into<String>) -> GraphError {
    GraphError::Snapshot(SnapshotError::Invalid {
        message: message.into(),
    })
}

/// Writes a snapshot of `contents` to `path` (atomically: a temp file
/// in the same directory is renamed into place). Returns per-section
/// size accounting.
pub fn write<O: OffsetIndex>(
    path: &Path,
    contents: &SnapshotContents<'_, O>,
    compression: Compression,
) -> Result<WriteStats, GraphError> {
    let graph = contents.graph;
    let n = graph.num_vertices();
    let m = graph.num_arcs();
    let width = std::mem::size_of::<O>() as u8;

    let mut flags = 0u8;
    if graph.is_directed() {
        flags |= FLAG_DIRECTED;
    }

    // The weighted companion must be the same topology: its weights are
    // stored against the shared target arrays.
    if let Some(wg) = contents.wgraph {
        flags |= FLAG_WEIGHTED;
        if wg.is_directed() != graph.is_directed()
            || wg.out_wcsr().unweighted() != graph.out_csr()
            || (graph.is_directed() && wg.in_wcsr().unweighted() != graph.in_csr())
        {
            return Err(invalid(
                "weighted companion topology differs from the graph",
            ));
        }
    }
    if let Some(sym) = contents.sym_graph {
        if !graph.is_directed() {
            return Err(invalid(
                "undirected graphs are their own symmetrization; store no sym view",
            ));
        }
        if sym.is_directed() || sym.num_vertices() != n {
            return Err(invalid(
                "sym view must be undirected with the same vertices",
            ));
        }
        flags |= FLAG_SYM;
    }
    if let Some(cands) = contents.source_candidates {
        if let Some(&bad) = cands.iter().find(|&&u| u as usize >= n) {
            return Err(invalid(format!("source candidate {bad} out of range")));
        }
        flags |= FLAG_CANDIDATES;
    }

    // Assemble sections in kind order.
    let mut sections: Vec<(SectionKind, u32, Payload<'_>)> = Vec::new();
    let mut stats = Vec::new();

    push_csr(
        &mut sections,
        &mut stats,
        SectionKind::OutOffsets,
        SectionKind::OutTargets,
        graph.out_csr(),
        compression,
    );
    if let Some(wg) = contents.wgraph {
        let b = as_bytes(wg.out_wcsr().weights_raw());
        stats.push(SectionStats {
            name: SectionKind::OutWeights.name(),
            encoding: "raw",
            raw_bytes: b.len() as u64,
            stored_bytes: b.len() as u64,
        });
        sections.push((SectionKind::OutWeights, ENC_RAW, Payload::Borrowed(b)));
    }
    if graph.is_directed() {
        push_csr(
            &mut sections,
            &mut stats,
            SectionKind::InOffsets,
            SectionKind::InTargets,
            graph.in_csr(),
            compression,
        );
        if let Some(wg) = contents.wgraph {
            let b = as_bytes(wg.in_wcsr().weights_raw());
            stats.push(SectionStats {
                name: SectionKind::InWeights.name(),
                encoding: "raw",
                raw_bytes: b.len() as u64,
                stored_bytes: b.len() as u64,
            });
            sections.push((SectionKind::InWeights, ENC_RAW, Payload::Borrowed(b)));
        }
    }
    if let Some(sym) = contents.sym_graph {
        push_csr(
            &mut sections,
            &mut stats,
            SectionKind::SymOffsets,
            SectionKind::SymTargets,
            sym.out_csr(),
            compression,
        );
    }
    if let Some(cands) = contents.source_candidates {
        let b = as_bytes(cands);
        stats.push(SectionStats {
            name: SectionKind::SourceCandidates.name(),
            encoding: "raw",
            raw_bytes: b.len() as u64,
            stored_bytes: b.len() as u64,
        });
        sections.push((SectionKind::SourceCandidates, ENC_RAW, Payload::Borrowed(b)));
    }

    // Lay out: header, table, 64-byte-aligned sections.
    let table_bytes = sections.len() * SECTION_ROW_BYTES;
    let mut cursor = (HEADER_BYTES + table_bytes) as u64;
    let mut rows = Vec::with_capacity(sections.len());
    for (kind, encoding, payload) in &sections {
        cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
        let bytes = payload.bytes();
        rows.push((
            *kind as u32,
            *encoding,
            cursor,
            bytes.len() as u64,
            section_checksum(bytes),
        ));
        cursor += bytes.len() as u64;
    }
    let file_bytes = cursor;

    let mut header = [0u8; HEADER_BYTES];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[10] = width;
    header[11] = flags;
    header[12..16].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(m as u64).to_le_bytes());
    header[32..40].copy_from_slice(&(contents.delta as i64 as u64).to_le_bytes());
    header[40..48].copy_from_slice(&contents.params_hash.to_le_bytes());

    let mut table = Vec::with_capacity(table_bytes);
    for (kind, encoding, off, len, sum) in &rows {
        table.extend_from_slice(&kind.to_le_bytes());
        table.extend_from_slice(&encoding.to_le_bytes());
        table.extend_from_slice(&off.to_le_bytes());
        table.extend_from_slice(&len.to_le_bytes());
        table.extend_from_slice(&sum.to_le_bytes());
    }
    let mut covered = Vec::with_capacity(56 + table.len());
    covered.extend_from_slice(&header[..56]);
    covered.extend_from_slice(&table);
    header[56..64].copy_from_slice(&section_checksum(&covered).to_le_bytes());

    // Write atomically: temp file, then rename. The temp name appends a
    // pid + counter suffix to the *full* file name, so concurrent
    // writers racing on the same snapshot (two processes missing the
    // cache at once) each rename their own complete file, and files
    // sharing a stem with different extensions never collide.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    let written = (|| -> Result<(), GraphError> {
        use std::io::Write as _;
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        out.write_all(&header)?;
        out.write_all(&table)?;
        let mut pos = (HEADER_BYTES + table_bytes) as u64;
        for ((_, _, off, _, _), (_, _, payload)) in rows.iter().zip(&sections) {
            let pad = off - pos;
            out.write_all(&vec![0u8; pad as usize])?;
            out.write_all(payload.bytes())?;
            pos = off + payload.bytes().len() as u64;
        }
        out.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if let Err(e) = written {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }

    Ok(WriteStats {
        file_bytes,
        sections: stats,
    })
}

// ──────────────────────────── loading ───────────────────────────────

/// How to open a snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Re-run the full O(V+E) CSR invariant sweep on every loaded
    /// structure (the `from_parts` boundary check). Default loads rely
    /// on the section checksums only, keeping the load O(bytes-scanned)
    /// with zero copies.
    pub paranoid: bool,
    /// Skip `mmap` and read the file into an aligned heap buffer (the
    /// path non-unix targets always take).
    pub force_heap: bool,
}

#[derive(Debug, Clone, Copy)]
struct RawSection {
    kind: u32,
    encoding: u32,
    off: u64,
    len: u64,
    checksum: u64,
}

/// One section's metadata, for `gapbs-snapshot info`.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section name (`"out_targets"`, ...).
    pub name: &'static str,
    /// `"raw"` or `"delta-varint"`.
    pub encoding: &'static str,
    /// Stored bytes.
    pub bytes: u64,
    /// Stored checksum.
    pub checksum: u64,
}

/// An opened, checksum-verified snapshot. Accessors hand out zero-copy
/// graphs borrowing the mapping (raw sections) or decode compressed
/// sections into owned, bit-identical arrays.
pub struct Snapshot {
    region: Arc<MapRegion>,
    version: u16,
    width: u8,
    flags: u8,
    num_vertices: usize,
    num_arcs: u64,
    delta: Weight,
    params_hash: u64,
    paranoid: bool,
    sections: Vec<RawSection>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("width", &self.width)
            .field("num_vertices", &self.num_vertices)
            .field("num_arcs", &self.num_arcs)
            .field("sections", &self.sections.len())
            .finish()
    }
}

fn err<T>(e: SnapshotError) -> Result<T, GraphError> {
    Err(GraphError::Snapshot(e))
}

impl Snapshot {
    /// Opens and checksum-verifies `path` with default options.
    pub fn open(path: &Path) -> Result<Snapshot, GraphError> {
        Self::open_with(path, LoadOptions::default())
    }

    /// Opens and checksum-verifies `path`. Every structural field is
    /// bounds-checked before use; no input can cause a panic or an
    /// out-of-bounds read.
    pub fn open_with(path: &Path, opts: LoadOptions) -> Result<Snapshot, GraphError> {
        let region = Arc::new(MapRegion::open_with(path, opts.force_heap)?);
        let bytes = region.as_bytes();
        if bytes.len() < HEADER_BYTES {
            return err(SnapshotError::Truncated {
                what: "header",
                needed: HEADER_BYTES as u64,
                have: bytes.len() as u64,
            });
        }
        let magic: [u8; 8] = bytes[0..8].try_into().expect("8 bytes");
        if magic != MAGIC {
            return err(SnapshotError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let width = bytes[10];
        if width != 4 && width != 8 {
            return err(SnapshotError::Malformed {
                message: format!("offset width {width} is neither 4 nor 8"),
            });
        }
        let flags = bytes[11];
        if flags & !(FLAG_DIRECTED | FLAG_WEIGHTED | FLAG_SYM | FLAG_CANDIDATES) != 0 {
            return err(SnapshotError::Malformed {
                message: format!("unknown flag bits {flags:#04x}"),
            });
        }
        let section_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if section_count > MAX_SECTIONS {
            return err(SnapshotError::Malformed {
                message: format!("implausible section count {section_count}"),
            });
        }
        let num_vertices = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let num_arcs = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        if num_vertices >= MAX_COUNT || num_arcs >= MAX_COUNT {
            return err(SnapshotError::Malformed {
                message: format!("implausible counts: {num_vertices} vertices, {num_arcs} arcs"),
            });
        }
        let delta = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")) as i64;
        let delta = if (i64::from(Weight::MIN)..=i64::from(Weight::MAX)).contains(&delta) {
            delta as Weight
        } else {
            return err(SnapshotError::Malformed {
                message: format!("delta {delta} outside weight range"),
            });
        };
        let params_hash = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes"));

        let table_end = HEADER_BYTES + section_count as usize * SECTION_ROW_BYTES;
        if bytes.len() < table_end {
            return err(SnapshotError::Truncated {
                what: "section table",
                needed: table_end as u64,
                have: bytes.len() as u64,
            });
        }
        let stored_header_sum = u64::from_le_bytes(bytes[56..64].try_into().expect("8 bytes"));
        let mut covered = Vec::with_capacity(table_end - 8);
        covered.extend_from_slice(&bytes[..56]);
        covered.extend_from_slice(&bytes[HEADER_BYTES..table_end]);
        let computed = section_checksum(&covered);
        if computed != stored_header_sum {
            return err(SnapshotError::ChecksumMismatch {
                section: "header",
                stored: stored_header_sum,
                computed,
            });
        }

        let mut sections = Vec::with_capacity(section_count as usize);
        for i in 0..section_count as usize {
            let row = &bytes[HEADER_BYTES + i * SECTION_ROW_BYTES..][..SECTION_ROW_BYTES];
            let sec = RawSection {
                kind: u32::from_le_bytes(row[0..4].try_into().expect("4 bytes")),
                encoding: u32::from_le_bytes(row[4..8].try_into().expect("4 bytes")),
                off: u64::from_le_bytes(row[8..16].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(row[16..24].try_into().expect("8 bytes")),
                checksum: u64::from_le_bytes(row[24..32].try_into().expect("8 bytes")),
            };
            if !sec.off.is_multiple_of(SECTION_ALIGN) {
                return err(SnapshotError::Malformed {
                    message: format!("section {} misaligned at offset {}", sec.kind, sec.off),
                });
            }
            let end = sec.off.checked_add(sec.len).ok_or(GraphError::Snapshot(
                SnapshotError::Malformed {
                    message: format!("section {} length overflows", sec.kind),
                },
            ))?;
            if end > bytes.len() as u64 {
                return err(SnapshotError::Truncated {
                    what: "section payload",
                    needed: end,
                    have: bytes.len() as u64,
                });
            }
            if sections.iter().any(|s: &RawSection| s.kind == sec.kind) {
                return err(SnapshotError::Malformed {
                    message: format!("duplicate section kind {}", sec.kind),
                });
            }
            let payload = &bytes[sec.off as usize..(sec.off + sec.len) as usize];
            let computed = section_checksum(payload);
            if computed != sec.checksum {
                return err(SnapshotError::ChecksumMismatch {
                    section: kind_name(sec.kind),
                    stored: sec.checksum,
                    computed,
                });
            }
            sections.push(sec);
        }

        Ok(Snapshot {
            region,
            version,
            width,
            flags,
            num_vertices: num_vertices as usize,
            num_arcs,
            delta,
            params_hash,
            paranoid: opts.paranoid,
            sections,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of stored out-direction arcs.
    pub fn num_arcs(&self) -> u64 {
        self.num_arcs
    }

    /// `true` when the stored graph is directed.
    pub fn is_directed(&self) -> bool {
        self.flags & FLAG_DIRECTED != 0
    }

    /// `true` when weight sections are present.
    pub fn has_weights(&self) -> bool {
        self.flags & FLAG_WEIGHTED != 0
    }

    /// `true` when a symmetrized view is stored.
    pub fn has_sym(&self) -> bool {
        self.flags & FLAG_SYM != 0
    }

    /// `true` when source candidates are stored.
    pub fn has_candidates(&self) -> bool {
        self.flags & FLAG_CANDIDATES != 0
    }

    /// Stored offset width in bytes (4 = `u32`, 8 = `usize`).
    pub fn width_bytes(&self) -> u8 {
        self.width
    }

    /// Format version of the file.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Delta-stepping Δ recorded for bundles.
    pub fn delta(&self) -> Weight {
        self.delta
    }

    /// Generator-provenance hash recorded at build time.
    pub fn params_hash(&self) -> u64 {
        self.params_hash
    }

    /// `true` when the backing region is a real memory mapping.
    pub fn is_mmap(&self) -> bool {
        self.region.is_mmap()
    }

    /// Per-section metadata in file order.
    pub fn sections(&self) -> Vec<SectionInfo> {
        self.sections
            .iter()
            .map(|s| SectionInfo {
                name: kind_name(s.kind),
                encoding: if s.encoding == ENC_DELTA_VARINT {
                    "delta-varint"
                } else {
                    "raw"
                },
                bytes: s.len,
                checksum: s.checksum,
            })
            .collect()
    }

    fn find(&self, kind: SectionKind) -> Result<&RawSection, GraphError> {
        self.sections
            .iter()
            .find(|s| s.kind == kind as u32)
            .ok_or(GraphError::Snapshot(SnapshotError::MissingSection {
                section: kind.name(),
            }))
    }

    /// A zero-copy typed view of a raw section, checking the byte
    /// length corresponds to exactly `expected` elements.
    fn typed<T: Pod>(&self, sec: &RawSection, expected: usize) -> Result<Segment<T>, GraphError> {
        if sec.encoding != ENC_RAW {
            return err(SnapshotError::Malformed {
                message: format!("section {} has unexpected encoding", kind_name(sec.kind)),
            });
        }
        let elem = std::mem::size_of::<T>() as u64;
        if sec.len != expected as u64 * elem {
            return err(SnapshotError::Malformed {
                message: format!(
                    "section {} holds {} bytes, expected {} × {}",
                    kind_name(sec.kind),
                    sec.len,
                    expected,
                    elem
                ),
            });
        }
        Segment::from_region(&self.region, sec.off as usize, expected).ok_or(GraphError::Snapshot(
            SnapshotError::Malformed {
                message: format!("section {} misaligned for its type", kind_name(sec.kind)),
            },
        ))
    }

    fn check_width<O: OffsetIndex>(&self) -> Result<(), GraphError> {
        if std::mem::size_of::<O>() as u8 != self.width {
            return err(SnapshotError::WidthMismatch {
                stored: self.width,
                requested: O::NAME,
            });
        }
        Ok(())
    }

    /// Loads the offsets of a CSR pair and derives its arc count from
    /// the final offset, cross-checked against `expect_arcs` when the
    /// header pins it.
    ///
    /// Always verifies the array is monotone (O(V), even on
    /// non-paranoid loads): downstream code — `degree()` subtraction,
    /// row slicing, and the parallel decoder's disjoint
    /// `SharedSlice::range_mut` writes — relies on `offsets[u] <=
    /// offsets[u + 1] <= offsets[n]`, so a checksum-consistent but
    /// malformed file must fail here, not underflow or write out of
    /// bounds later.
    fn load_offsets<O: OffsetIndex>(
        &self,
        kind: SectionKind,
        expect_arcs: Option<u64>,
    ) -> Result<(Segment<O>, usize), GraphError> {
        let sec = self.find(kind)?;
        let offs = self.typed::<O>(sec, self.num_vertices + 1)?;
        let last = offs.last().map_or(0, |o| o.to_usize());
        if offs.first().map_or(1, |o| o.to_usize()) != 0 {
            return err(SnapshotError::Malformed {
                message: format!("section {} does not start at offset 0", kind.name()),
            });
        }
        if offs.windows(2).any(|w| w[0] > w[1]) {
            return err(SnapshotError::Malformed {
                message: format!("section {} offsets are not monotone", kind.name()),
            });
        }
        if let Some(m) = expect_arcs {
            if last as u64 != m {
                return err(SnapshotError::Malformed {
                    message: format!(
                        "section {} ends at {last}, header declares {m} arcs",
                        kind.name()
                    ),
                });
            }
        }
        Ok((offs, last))
    }

    /// Loads one adjacency direction: zero-copy for raw targets, a
    /// validated parallel decode for delta-varint targets.
    fn load_csr<O: OffsetIndex>(
        &self,
        off_kind: SectionKind,
        tgt_kind: SectionKind,
        expect_arcs: Option<u64>,
        pool: Option<&ThreadPool>,
    ) -> Result<(CsrGraph<O>, Segment<NodeId>), GraphError> {
        let (offs, m) = self.load_offsets::<O>(off_kind, expect_arcs)?;
        let sec = self.find(tgt_kind)?;
        let targets: Segment<NodeId> = if sec.encoding == ENC_DELTA_VARINT {
            let comp = self.compressed_from(sec, &offs, m)?;
            let decoded = Arc::new(comp.decode_vec(pool).map_err(GraphError::Snapshot)?);
            Segment::from_shared_vec(decoded)
        } else {
            // Raw targets skip the per-row decode validation, so range
            // check them here even on non-paranoid loads: kernels index
            // (and some unsafely write) arrays by target id, and an
            // out-of-range id from a checksum-consistent file must be a
            // structured error, not an out-of-bounds access. One O(E)
            // pass, same order as the checksum scan the load already
            // paid; row sortedness stays behind the paranoid flag.
            let t = self.typed::<NodeId>(sec, m)?;
            if !self.paranoid {
                let n = self.num_vertices;
                if let Some(&bad) = t.iter().find(|&&v| v as usize >= n) {
                    return err(SnapshotError::Malformed {
                        message: format!(
                            "section {} target {bad} out of range for {n} vertices",
                            tgt_kind.name()
                        ),
                    });
                }
            }
            t
        };
        if self.paranoid {
            if let Err(message) = check_parts(&offs, &targets) {
                return err(SnapshotError::Invalid { message });
            }
        }
        let shared = targets.clone();
        Ok((CsrGraph::from_segments_unchecked(offs, targets), shared))
    }

    fn compressed_from<O: OffsetIndex>(
        &self,
        sec: &RawSection,
        offs: &Segment<O>,
        m: usize,
    ) -> Result<CompressedCsr<O>, GraphError> {
        let n = self.num_vertices;
        let index_bytes = (n as u64 + 1) * 8;
        if sec.len < index_bytes {
            return err(SnapshotError::Malformed {
                message: format!(
                    "compressed section {} too short for its row index",
                    kind_name(sec.kind)
                ),
            });
        }
        let row_starts: Segment<u64> = Segment::from_region(&self.region, sec.off as usize, n + 1)
            .ok_or(GraphError::Snapshot(SnapshotError::Malformed {
                message: "compressed row index misaligned".to_string(),
            }))?;
        let stream_len = (sec.len - index_bytes) as usize;
        let stream: Segment<u8> = Segment::from_region(
            &self.region,
            sec.off as usize + index_bytes as usize,
            stream_len,
        )
        .ok_or(GraphError::Snapshot(SnapshotError::Malformed {
            message: "compressed stream out of bounds".to_string(),
        }))?;
        if row_starts.first().copied() != Some(0)
            || row_starts.last().copied() != Some(stream_len as u64)
        {
            return err(SnapshotError::Malformed {
                message: format!(
                    "compressed section {} row index does not tile its stream",
                    kind_name(sec.kind)
                ),
            });
        }
        Ok(CompressedCsr {
            offsets: offs.clone(),
            row_starts,
            stream,
            num_edges: m,
        })
    }

    /// The streaming view of the out-direction adjacency, or `None`
    /// when it is stored raw.
    pub fn compressed_out<O: OffsetIndex>(&self) -> Result<Option<CompressedCsr<O>>, GraphError> {
        self.check_width::<O>()?;
        let sec = *self.find(SectionKind::OutTargets)?;
        if sec.encoding != ENC_DELTA_VARINT {
            return Ok(None);
        }
        let (offs, m) = self.load_offsets::<O>(SectionKind::OutOffsets, Some(self.num_arcs))?;
        self.compressed_from(&sec, &offs, m).map(Some)
    }

    /// The streaming view of the in-direction adjacency (pull kernels),
    /// or `None` when it is stored raw. For undirected graphs this is
    /// the out-direction view.
    pub fn compressed_in<O: OffsetIndex>(&self) -> Result<Option<CompressedCsr<O>>, GraphError> {
        if !self.is_directed() {
            return self.compressed_out::<O>();
        }
        self.check_width::<O>()?;
        let sec = *self.find(SectionKind::InTargets)?;
        if sec.encoding != ENC_DELTA_VARINT {
            return Ok(None);
        }
        let (offs, m) = self.load_offsets::<O>(SectionKind::InOffsets, Some(self.num_arcs))?;
        self.compressed_from(&sec, &offs, m).map(Some)
    }

    /// Loads the graph: zero-copy views for raw sections, validated
    /// decode for compressed ones. `pool` parallelizes the decode.
    pub fn graph_in<O: OffsetIndex>(
        &self,
        pool: Option<&ThreadPool>,
    ) -> Result<Graph<O>, GraphError> {
        self.check_width::<O>()?;
        let (out, _) = self.load_csr::<O>(
            SectionKind::OutOffsets,
            SectionKind::OutTargets,
            Some(self.num_arcs),
            pool,
        )?;
        if self.is_directed() {
            let (inc, _) = self.load_csr::<O>(
                SectionKind::InOffsets,
                SectionKind::InTargets,
                Some(self.num_arcs),
                pool,
            )?;
            Ok(Graph::directed(out, inc))
        } else {
            Ok(Graph::undirected(out))
        }
    }

    /// [`Snapshot::graph_in`] with a serial decode.
    pub fn graph<O: OffsetIndex>(&self) -> Result<Graph<O>, GraphError> {
        self.graph_in(None)
    }

    /// Source candidates (copied out of the mapping — callers own a
    /// plain `Vec`). Every id is range-checked.
    pub fn source_candidates(&self) -> Result<Vec<NodeId>, GraphError> {
        let sec = self.find(SectionKind::SourceCandidates)?;
        if sec.len % 4 != 0 {
            return err(SnapshotError::Malformed {
                message: "source candidate section not a whole number of ids".to_string(),
            });
        }
        let seg: Segment<NodeId> = self.typed(sec, sec.len as usize / 4)?;
        if let Some(&bad) = seg.iter().find(|&&u| u as usize >= self.num_vertices) {
            return err(SnapshotError::Malformed {
                message: format!("source candidate {bad} out of range"),
            });
        }
        Ok(seg.to_vec())
    }

    /// Loads the full benchmark bundle: graph, weighted companion
    /// (sharing the graph's target storage), symmetrized view, source
    /// candidates and Δ.
    pub fn bundle_in<O: OffsetIndex>(
        &self,
        pool: Option<&ThreadPool>,
    ) -> Result<SnapshotBundle<O>, GraphError> {
        self.check_width::<O>()?;
        if !self.has_weights() {
            return err(SnapshotError::MissingSection {
                section: SectionKind::OutWeights.name(),
            });
        }
        if !self.has_candidates() {
            return err(SnapshotError::MissingSection {
                section: SectionKind::SourceCandidates.name(),
            });
        }

        let (out, out_targets) = self.load_csr::<O>(
            SectionKind::OutOffsets,
            SectionKind::OutTargets,
            Some(self.num_arcs),
            pool,
        )?;
        let m = out.num_edges();
        let out_weights: Segment<Weight> = self.typed(self.find(SectionKind::OutWeights)?, m)?;
        // The weighted companion shares the graph's offset and target
        // storage; only the weight arrays are distinct sections.
        let w_out = WCsrGraph::from_segments(
            CsrGraph::from_segments_unchecked(out.offsets_segment(), out_targets),
            out_weights,
        );

        let (graph, wgraph, sym_graph) = if self.is_directed() {
            let (inc, in_targets) = self.load_csr::<O>(
                SectionKind::InOffsets,
                SectionKind::InTargets,
                Some(self.num_arcs),
                pool,
            )?;
            let in_weights: Segment<Weight> = self.typed(self.find(SectionKind::InWeights)?, m)?;
            let w_in = WCsrGraph::from_segments(
                CsrGraph::from_segments_unchecked(inc.offsets_segment(), in_targets),
                in_weights,
            );
            if !self.has_sym() {
                return err(SnapshotError::MissingSection {
                    section: SectionKind::SymOffsets.name(),
                });
            }
            let (sym, _) =
                self.load_csr::<O>(SectionKind::SymOffsets, SectionKind::SymTargets, None, pool)?;
            (
                Graph::directed(out, inc),
                WGraph::directed(w_out, w_in),
                Graph::undirected(sym),
            )
        } else {
            let graph = Graph::undirected(out);
            (graph.clone(), WGraph::undirected(w_out), graph)
        };

        Ok(SnapshotBundle {
            graph,
            wgraph,
            sym_graph,
            source_candidates: self.source_candidates()?,
            delta: self.delta,
        })
    }
}

fn kind_name(kind: u32) -> &'static str {
    match kind {
        1 => "out_offsets",
        2 => "out_targets",
        3 => "out_weights",
        4 => "in_offsets",
        5 => "in_targets",
        6 => "in_weights",
        7 => "sym_offsets",
        8 => "sym_targets",
        9 => "source_candidates",
        _ => "unknown",
    }
}

/// Everything a benchmark process cold-starts from: the exact structures
/// `BenchGraph` prepares, reconstructed from one snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotBundle<O: OffsetIndex = u32> {
    /// The graph (both directions when directed).
    pub graph: Graph<O>,
    /// Weighted companion sharing the graph's adjacency storage.
    pub wgraph: WGraph<O>,
    /// Symmetrized TC view (the graph itself when undirected).
    pub sym_graph: Graph<O>,
    /// Benchmark source candidates.
    pub source_candidates: Vec<NodeId>,
    /// Delta-stepping Δ.
    pub delta: Weight,
}

// ─────────────────────── compressed adjacency ───────────────────────

/// A delta + LEB128 compressed adjacency, decodable row-by-row.
///
/// `offsets` are the ordinary element offsets (so [`crate::Strips`]
/// partitions compressed and raw adjacency identically); `row_starts`
/// index the varint stream by byte. The streaming [`CompressedCsr::row`]
/// iterator is bounds-safe on arbitrary bytes (it stops early rather
/// than reading out of range); [`CompressedCsr::decode_vec`] fully
/// validates while decoding and is the path graph loads take.
#[derive(Debug, Clone)]
pub struct CompressedCsr<O: OffsetIndex = u32> {
    offsets: Segment<O>,
    row_starts: Segment<u64>,
    stream: Segment<u8>,
    num_edges: usize,
}

impl<O: OffsetIndex> CompressedCsr<O> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1].to_usize() - self.offsets[u].to_usize()
    }

    /// The element offsets array (length `num_vertices() + 1`) — the
    /// same shape as [`CsrGraph::offsets_raw`], so strip partitioning
    /// is identical for compressed and raw storage.
    pub fn offsets_raw(&self) -> &[O] {
        &self.offsets
    }

    /// Compressed stream bytes (for size reporting).
    pub fn stream_bytes(&self) -> usize {
        self.stream.len()
    }

    /// Streams the sorted neighbors of `u` without materializing the
    /// row. Malformed bytes terminate the iterator early instead of
    /// panicking; fully validated decoding is [`Self::decode_vec`].
    #[inline]
    pub fn row(&self, u: NodeId) -> RowIter<'_> {
        let u = u as usize;
        let lo = self.row_starts[u] as usize;
        let hi = self.row_starts[u + 1] as usize;
        let bytes = self.stream.get(lo..hi).unwrap_or(&[]);
        RowIter {
            bytes,
            pos: 0,
            remaining: self.degree(u as NodeId),
            prev: 0,
            first: true,
        }
    }

    /// Decodes every row into a flat target array, validating varint
    /// framing, sortedness and target range as it goes. Parallel over
    /// rows when `pool` is given; the output is bit-identical either
    /// way.
    pub fn decode_vec(&self, pool: Option<&ThreadPool>) -> Result<Vec<NodeId>, SnapshotError> {
        let n = self.num_vertices();
        let m = self.num_edges;
        if self.offsets.last().map_or(0, |o| o.to_usize()) != m {
            return Err(SnapshotError::Malformed {
                message: "compressed offsets do not cover the arc count".to_string(),
            });
        }
        // The loader already validated monotonicity, but the unsafe
        // disjoint-write below must not depend on callers: re-check
        // here (O(V)) so `range_mut(lo, hi)` always sees
        // `lo <= hi <= m` on any input.
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Malformed {
                message: "compressed offsets are not monotone".to_string(),
            });
        }
        let mut targets = vec![0 as NodeId; m];
        let bad = std::sync::atomic::AtomicBool::new(false);
        {
            let out = SharedSlice::new(&mut targets);
            let decode_one = |u: usize| {
                let lo = self.offsets[u].to_usize();
                let hi = self.offsets[u + 1].to_usize();
                let (blo, bhi) = (self.row_starts[u] as usize, self.row_starts[u + 1] as usize);
                let Some(bytes) = self.stream.get(blo..bhi.max(blo)) else {
                    bad.store(true, std::sync::atomic::Ordering::Relaxed);
                    return;
                };
                // Safety: offsets are monotone and end at m (checked
                // above), so `lo <= hi <= m` and the per-row ranges
                // partition the output array disjointly.
                let row = unsafe { out.range_mut(lo, hi) };
                if !decode_row(bytes, row, n) {
                    bad.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            };
            match pool {
                Some(pool) => pool.for_each_index(n, Schedule::Guided, decode_one),
                None => (0..n).for_each(decode_one),
            }
        }
        if bad.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(SnapshotError::Malformed {
                message: "compressed adjacency stream failed validation".to_string(),
            });
        }
        Ok(targets)
    }

    /// [`Self::decode_vec`] wrapped into a CSR (owned storage).
    pub fn decode(&self, pool: Option<&ThreadPool>) -> Result<CsrGraph<O>, SnapshotError> {
        let targets = self.decode_vec(pool)?;
        Ok(CsrGraph::from_segments_unchecked(
            self.offsets.clone(),
            Segment::from_vec(targets),
        ))
    }
}

/// Streaming decoder over one compressed row. See
/// [`CompressedCsr::row`].
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u64,
    first: bool,
}

impl Iterator for RowIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        let (raw, used) = read_varint(self.bytes, self.pos)?;
        self.pos += used;
        self.remaining -= 1;
        let val = if self.first {
            self.first = false;
            raw
        } else {
            self.prev.checked_add(1)?.checked_add(raw)?
        };
        if val > u64::from(NodeId::MAX) {
            self.remaining = 0;
            return None;
        }
        self.prev = val;
        Some(val as NodeId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{symmetrize_graph, Builder};
    use crate::edgelist::Edge;
    use crate::gen;
    use crate::strips::Strips;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gapsnap-{}-{tag}-{id}.gsnap", std::process::id()))
    }

    fn directed_fixture() -> (Graph, Vec<Edge>) {
        let edges = gen::kron_edges(8, 6, 0xfeed);
        let graph = Builder::new().build(edges.clone()).expect("build");
        (graph, edges)
    }

    #[test]
    fn varint_round_trips_every_magnitude() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            1 << 20,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, used) = read_varint(&buf, pos).expect("decodable");
            assert_eq!(got, v);
            pos += used;
        }
        assert_eq!(pos, buf.len());
        assert!(read_varint(&[0x80], 0).is_none(), "truncated varint");
        assert!(
            read_varint(&[0xff; 11], 0).is_none(),
            "64-bit overflow rejected"
        );
    }

    #[test]
    fn undirected_raw_round_trip_is_bit_identical() {
        let g = gen::kron(8, 8, 3);
        let path = tmp_path("undirected-raw");
        let stats = write(
            &path,
            &SnapshotContents::graph_only(&g, 42),
            Compression::Never,
        )
        .expect("write");
        assert!((stats.adjacency_ratio() - 1.0).abs() < f64::EPSILON);
        let snap = Snapshot::open(&path).expect("open");
        assert_eq!(snap.params_hash(), 42);
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert!(!snap.is_directed());
        let loaded: Graph = snap.graph().expect("load");
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn directed_compressed_round_trip_is_bit_identical() {
        let (g, _) = directed_fixture();
        assert!(g.is_directed());
        let path = tmp_path("directed-comp");
        let stats = write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Always,
        )
        .expect("write");
        assert!(stats.sections.iter().any(|s| s.encoding == "delta-varint"));
        let snap = Snapshot::open(&path).expect("open");
        let loaded: Graph = snap.graph().expect("load");
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_row_iterator_matches_raw_neighbors() {
        let (g, _) = directed_fixture();
        let path = tmp_path("row-iter");
        write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Always,
        )
        .expect("write");
        let snap = Snapshot::open(&path).expect("open");
        let comp: CompressedCsr = snap
            .compressed_out()
            .expect("well-formed")
            .expect("compressed");
        for u in 0..g.num_vertices() as NodeId {
            let row: Vec<NodeId> = comp.row(u).collect();
            assert_eq!(row, g.out_csr().neighbors(u), "row {u}");
        }
        // Strips over compressed offsets match strips over the raw CSR.
        assert_eq!(Strips::pull_compressed(&comp), Strips::pull(g.out_csr()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bundle_round_trip_restores_every_structure() {
        let (g, edges) = directed_fixture();
        let pool = gapbs_parallel::ThreadPool::new(2);
        let wg = gen::weighted_companion(g.num_vertices(), &edges, false, 0xfeed);
        let sym = symmetrize_graph(&g, &pool);
        let candidates: Vec<NodeId> = (0..g.num_vertices() as NodeId)
            .filter(|&u| g.out_csr().degree(u) > 0)
            .take(16)
            .collect();
        let path = tmp_path("bundle");
        write(
            &path,
            &SnapshotContents {
                graph: &g,
                wgraph: Some(&wg),
                sym_graph: Some(&sym),
                source_candidates: Some(&candidates),
                delta: 32,
                params_hash: 7,
            },
            Compression::Auto,
        )
        .expect("write");
        let snap = Snapshot::open(&path).expect("open");
        let bundle: SnapshotBundle = snap.bundle_in(Some(&pool)).expect("bundle");
        assert_eq!(bundle.graph, g);
        assert_eq!(bundle.wgraph, wg);
        assert_eq!(bundle.sym_graph, sym);
        assert_eq!(bundle.source_candidates, candidates);
        assert_eq!(bundle.delta, 32);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wide_offsets_round_trip() {
        let g = gen::urand(7, 5, 9);
        let wide: Graph<usize> = g.to_width().expect("widening always fits");
        let path = tmp_path("wide");
        write(
            &path,
            &SnapshotContents::graph_only(&wide, 0),
            Compression::Never,
        )
        .expect("write");
        let snap = Snapshot::open(&path).expect("open");
        assert_eq!(snap.width_bytes(), 8);
        let loaded: Graph<usize> = snap.graph().expect("load");
        assert_eq!(loaded, wide);
        // Requesting the narrow width is a structured error, not UB.
        match snap.graph::<u32>() {
            Err(GraphError::Snapshot(SnapshotError::WidthMismatch { stored: 8, .. })) => {}
            other => panic!("expected width mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupting_one_byte_is_rejected_with_a_checksum_error() {
        let g = gen::kron(7, 6, 1);
        let path = tmp_path("corrupt");
        write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Never,
        )
        .expect("write");
        let mut bytes = std::fs::read(&path).expect("read back");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        match Snapshot::open(&path) {
            Err(GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paranoid_load_runs_full_validation() {
        let g = gen::kron(7, 6, 2);
        let path = tmp_path("paranoid");
        write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Auto,
        )
        .expect("write");
        let snap = Snapshot::open_with(
            &path,
            LoadOptions {
                paranoid: true,
                force_heap: false,
            },
        )
        .expect("open");
        let loaded: Graph = snap.graph().expect("paranoid load of a good file");
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_load_matches_mmap_load() {
        let g = gen::urand(7, 4, 5);
        let path = tmp_path("heap");
        write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Never,
        )
        .expect("write");
        let mapped = Snapshot::open(&path).expect("mmap open");
        let heaped = Snapshot::open_with(
            &path,
            LoadOptions {
                paranoid: false,
                force_heap: true,
            },
        )
        .expect("heap open");
        assert!(!heaped.is_mmap());
        let a: Graph = mapped.graph().expect("load");
        let b: Graph = heaped.graph().expect("load");
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_does_not_clobber_files_sharing_a_stem() {
        // The temp name must extend the full file name (pid + sequence
        // suffix), not replace the extension: a sibling `foo.tmp` next
        // to `foo.gsnap` belongs to someone else.
        let g = gen::urand(6, 4, 8);
        let path = tmp_path("sibling");
        let sibling = path.with_extension("tmp");
        std::fs::write(&sibling, b"precious").expect("plant sibling");
        write(
            &path,
            &SnapshotContents::graph_only(&g, 0),
            Compression::Never,
        )
        .expect("write");
        assert_eq!(
            std::fs::read(&sibling).expect("sibling survives"),
            b"precious"
        );
        Snapshot::open(&path).expect("snapshot itself is intact");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sibling).ok();
    }

    #[test]
    fn writer_rejects_mismatched_weighted_topology() {
        let (g, _) = directed_fixture();
        let other_edges = gen::kron_edges(8, 6, 0xbeef);
        let wg = gen::weighted_companion(g.num_vertices(), &other_edges, false, 1);
        let path = tmp_path("mismatch");
        let res = write(
            &path,
            &SnapshotContents {
                graph: &g,
                wgraph: Some(&wg),
                sym_graph: None,
                source_candidates: None,
                delta: 2,
                params_hash: 0,
            },
            Compression::Never,
        );
        match res {
            Err(GraphError::Snapshot(SnapshotError::Invalid { .. })) => {}
            other => panic!("expected invalid-contents error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
