//! GKC connected components: a Shiloach–Vishkin hybrid (Table III) —
//! iterated hook-and-shortcut over all edges.
//!
//! Every round visits *every* edge (O(E) per round, O(log V) rounds),
//! whereas Afforest's sampling visits almost nothing after its first two
//! rounds. That is the §V-C trade-off: SV is uncompetitive on skewed
//! graphs but, combined with tight inner loops and local buffers, it
//! replicates GKC's standout Urand result where Afforest is "less
//! effective" (Sutton et al.'s own observation). The hybrid part: rounds
//! stop early once an activity counter shows quiescence, and hooking is
//! attempted in both conditional orders.

use gapbs_graph::types::NodeId;
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::atomics::as_atomic_u32;
use gapbs_parallel::{Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs Shiloach–Vishkin, returning component labels.
pub fn cc<O: OffsetIndex>(g: &Graph<O>, pool: &ThreadPool) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut comp: Vec<NodeId> = (0..n as NodeId).collect();
    if n == 0 {
        return comp;
    }
    {
        let cells = as_atomic_u32(&mut comp);
        let mut round: u32 = 0;
        loop {
            gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
            let hooked = AtomicU64::new(0);
            // Hook phase: for every edge (u, v), point the larger root at
            // the smaller.
            pool.for_each_index(n, Schedule::Dynamic(1024), |u| {
                let mut local_hooks = 0u64;
                gapbs_telemetry::record(
                    gapbs_telemetry::Counter::EdgesExamined,
                    g.out_degree(u as NodeId) as u64,
                );
                for &v in g.out_neighbors(u as NodeId) {
                    let cu = cells[u].load(Ordering::Relaxed);
                    let cv = cells[v as usize].load(Ordering::Relaxed);
                    if cu == cv {
                        continue;
                    }
                    let (high, low) = if cu > cv { (cu, cv) } else { (cv, cu) };
                    // Hook only roots, classic SV.
                    if cells[high as usize]
                        .compare_exchange(high, low, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        local_hooks += 1;
                    }
                }
                if local_hooks > 0 {
                    hooked.fetch_add(local_hooks, Ordering::Relaxed);
                }
            });
            // Shortcut phase: pointer jumping.
            pool.for_each_index(n, Schedule::Static, |u| {
                let mut c = cells[u].load(Ordering::Relaxed);
                while c != cells[c as usize].load(Ordering::Relaxed) {
                    c = cells[c as usize].load(Ordering::Relaxed);
                }
                cells[u].store(c, Ordering::Relaxed);
            });
            let changed = hooked.into_inner();
            gapbs_telemetry::trace_iter!(CcRound { round, changed });
            round += 1;
            if changed == 0 {
                break;
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn oracle(g: &Graph) -> Vec<NodeId> {
        let n = g.num_vertices();
        let mut p: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for u in 0..n {
            for &v in g.out_neighbors(u as NodeId) {
                let (a, b) = (find(&mut p, u), find(&mut p, v as usize));
                if a != b {
                    p[a.max(b)] = a.min(b);
                }
            }
        }
        (0..n).map(|u| find(&mut p, u) as NodeId).collect()
    }

    fn same_partition(a: &[NodeId], b: &[NodeId]) -> bool {
        let mut f = std::collections::HashMap::new();
        let mut r = std::collections::HashMap::new();
        a.iter()
            .zip(b)
            .all(|(&x, &y)| *f.entry(x).or_insert(y) == y && *r.entry(y).or_insert(x) == x)
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 1..4 {
            let g = gen::urand(9, 8, seed);
            assert!(same_partition(&cc(&g, &pool()), &oracle(&g)), "seed {seed}");
        }
    }

    #[test]
    fn directed_weak_connectivity_via_out_edges() {
        // SV hooks both roots regardless of direction, so out-edges
        // suffice for weak connectivity.
        let g = Builder::new().build(edges([(0, 1), (2, 1)])).unwrap();
        let labels = cc(&g, &pool());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
    }

    #[test]
    fn high_diameter_chain_converges_logarithmically() {
        let g = gen::road(&gen::RoadConfig::gap_like(24), 2);
        assert!(same_partition(&cc(&g, &pool()), &oracle(&g)));
    }
}
