//! GKC triangle counting: the Lee & Low family — provably correct exact
//! counting over a degree-ordered orientation, with skewness-driven
//! relabeling and a branch-reduced merge intersection ("SIMD set
//! intersection" stand-in).
//!
//! "GKC sorts vertices depending on degree skewness, then ... performs
//! set intersections with vectors that were previously visited, thereby
//! increasing data reuse in caches" (§V-F). The combination wins on every
//! graph in Table V — including Road, where the heuristic *declines* to
//! sort and the naive path's low overhead wins.

use gapbs_graph::perm;
use gapbs_graph::types::NodeId;
use gapbs_graph::{intersect, Graph, OffsetIndex};
use gapbs_parallel::{Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts triangles of an undirected graph.
///
/// # Panics
///
/// Panics if `g` is directed.
pub fn tc<O: OffsetIndex>(g: &Graph<O>, pool: &ThreadPool) -> u64 {
    assert!(!g.is_directed(), "TC expects the symmetrized graph");
    if degree_skewness(g) > 2.0 {
        let relabeled = {
            let _relabel = gapbs_telemetry::Span::enter(gapbs_telemetry::Phase::Relabel);
            perm::apply_in(g, &perm::degree_descending(g), pool)
        };
        count(&relabeled, pool)
    } else {
        count(g, pool)
    }
}

/// Sampled skewness proxy: mean degree over median degree.
pub fn degree_skewness<O: OffsetIndex>(g: &Graph<O>) -> f64 {
    let n = g.num_vertices();
    if n < 10 {
        return 0.0;
    }
    let sample = 1000.min(n);
    let stride = (n / sample).max(1);
    let mut degrees: Vec<usize> = (0..n)
        .step_by(stride)
        .take(sample)
        .map(|u| g.out_degree(u as NodeId))
        .collect();
    degrees.sort_unstable();
    let median = degrees[degrees.len() / 2].max(1) as f64;
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    mean / median
}

/// Orientation count with the adaptive SIMD-shaped intersection kernel
/// ([`gapbs_graph::intersect`]): galloping when the list lengths are
/// skewed, a branch-free lane scan otherwise. Iterating `v` in ascending
/// id order keeps recently intersected adjacency lists warm (the
/// "previously visited vectors" reuse).
fn count<O: OffsetIndex>(g: &Graph<O>, pool: &ThreadPool) -> u64 {
    let total = AtomicU64::new(0);
    pool.for_each_index(g.num_vertices(), Schedule::Dynamic(64), |u| {
        let u = u as NodeId;
        let adj_u = g.out_neighbors(u);
        let prefix_u = &adj_u[..adj_u.partition_point(|&x| x < u)];
        let mut local = 0u64;
        let mut comparisons = 0u64;
        for &v in prefix_u {
            let r = intersect::count_below(prefix_u, g.out_neighbors(v), v);
            local += r.count;
            comparisons += r.comparisons;
        }
        // Comparisons feed both counters so `tc_intersections <=
        // edges_examined` holds by construction (see `perf_compare --lint`).
        gapbs_telemetry::record(gapbs_telemetry::Counter::TcIntersections, comparisons);
        gapbs_telemetry::record(
            gapbs_telemetry::Counter::EdgesExamined,
            adj_u.len() as u64 + comparisons,
        );
        if local > 0 {
            total.fetch_add(local, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn brute(g: &Graph) -> u64 {
        let mut c = 0;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if v <= u {
                    continue;
                }
                for &w in g.out_neighbors(v) {
                    if w > v && g.out_csr().has_edge(u, w) {
                        c += 1;
                    }
                }
            }
        }
        c
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 1..4 {
            let g = gen::kron(8, 10, seed);
            assert_eq!(tc(&g, &ThreadPool::new(4)), brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn skewness_heuristic_separates_topologies() {
        let road = gen::road(&gen::RoadConfig::gap_like(32), 1);
        assert!(degree_skewness(&road) <= 2.0, "road must not relabel");
        let kron = gen::kron(11, 16, 1);
        assert!(degree_skewness(&kron) > 2.0, "kron must relabel");
    }

    #[test]
    fn k5_counts_ten() {
        let mut e = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                e.push((i, j));
            }
        }
        let g = Builder::new().symmetrize(true).build(edges(e)).unwrap();
        assert_eq!(tc(&g, &ThreadPool::new(2)), 10);
    }
}
