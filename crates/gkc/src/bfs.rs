//! GKC BFS: direction-optimizing traversal with cache-sized thread-local
//! frontier buffers.
//!
//! "For implementations other than TC, each thread allocates its own
//! memory buffer ... explicitly flushed back to the global buffer"
//! (§III-E1). Because the abstractions are minimal, this kernel carries
//! the least per-iteration overhead of the suite — the property behind
//! GKC's strong Road BFS showing (157.85% of GAP, Table V).

use gapbs_graph::stats;
use gapbs_graph::types::{NodeId, NO_PARENT};
use gapbs_graph::{Graph, OffsetIndex, Strips};
use gapbs_parallel::atomics::as_atomic_u32;
use gapbs_parallel::{AtomicBitmap, QueueBuffer, Schedule, SlidingQueue, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// L1-friendly buffer size (entries) for the local frontier buffers.
const LOCAL_BUFFER: usize = 1024;

/// Runs BFS from `source`, returning the parent array.
pub fn bfs<O: OffsetIndex>(g: &Graph<O>, source: NodeId, pool: &ThreadPool) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut parent = vec![NO_PARENT; n];
    if n == 0 {
        return parent;
    }
    parent[source as usize] = source;
    let parents = as_atomic_u32(&mut parent);
    let mut queue = SlidingQueue::new(n + 1);
    queue.push(source);
    queue.slide_window();
    let front = AtomicBitmap::new(n);
    let next = AtomicBitmap::new(n);
    let mut edges_left = g.num_arcs() as u64;
    let mut scout = g.out_degree(source) as u64;
    let mut strips: Option<Strips> = None;
    let mut was_pull = false;
    let mut depth: u32 = 0;
    while !queue.is_window_empty() {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        let pull = stats::switch_to_pull(scout, edges_left);
        if pull != was_pull {
            gapbs_telemetry::record(gapbs_telemetry::Counter::DirectionSwitches, 1);
            was_pull = pull;
        }
        if pull {
            // Pull phase over dense bitmaps, walked in LLC-sized strips of
            // in-edge mass (computed once, on the first switch).
            let strips = strips.get_or_insert_with(|| Strips::pull(g.in_csr()));
            front.clear();
            for &u in queue.window() {
                front.set(u as usize);
            }
            let mut awake = queue.window_len() as u64;
            loop {
                let prev = awake;
                gapbs_telemetry::trace_iter!(BfsLevel {
                    depth,
                    frontier: prev,
                    dir: gapbs_telemetry::trace::Dir::Pull
                });
                depth += 1;
                next.clear();
                let count = AtomicU64::new(0);
                pool.for_each_index(strips.len(), Schedule::Dynamic(1), |s| {
                    let mut woke = 0u64;
                    let mut examined = 0u64;
                    for v in strips.range(s) {
                        if parents[v].load(Ordering::Relaxed) == NO_PARENT {
                            // Tight scalar loop over the raw slice (the
                            // SIMD gather analogue).
                            let row = g.in_neighbors(v as NodeId);
                            let mut k = 0;
                            while k < row.len() {
                                let u = row[k];
                                if front.get(u as usize) {
                                    parents[v].store(u, Ordering::Relaxed);
                                    next.set(v);
                                    woke += 1;
                                    break;
                                }
                                k += 1;
                            }
                            examined += ((k + 1).min(row.len())) as u64;
                        }
                    }
                    gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
                    if woke > 0 {
                        count.fetch_add(woke, Ordering::Relaxed);
                    }
                });
                awake = count.into_inner();
                front.copy_from(&next);
                if stats::switch_to_push(awake, prev, n as u64) {
                    break;
                }
            }
            queue.reset();
            for v in front.iter_ones() {
                queue.push(v as NodeId);
            }
            queue.slide_window();
            scout = 1;
        } else {
            gapbs_telemetry::trace_iter!(BfsLevel {
                depth,
                frontier: queue.window_len() as u64,
                dir: gapbs_telemetry::trace::Dir::Push
            });
            depth += 1;
            edges_left = edges_left.saturating_sub(scout);
            let window = queue.window();
            let scout_sum = AtomicU64::new(0);
            let stride = pool.num_threads();
            pool.run(|tid| {
                // Cache-sized local buffer, flushed in bulk (§III-E1/E2).
                let mut buf = QueueBuffer::with_capacity(LOCAL_BUFFER);
                let mut local_scout = 0u64;
                let mut examined = 0u64;
                let mut i = tid;
                while i < window.len() {
                    let u = window[i];
                    examined += g.out_degree(u) as u64;
                    for &v in g.out_neighbors(u) {
                        if parents[v as usize].load(Ordering::Relaxed) == NO_PARENT
                            && parents[v as usize]
                                .compare_exchange(
                                    NO_PARENT,
                                    u,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            buf.push(v, &queue);
                            local_scout += g.out_degree(v) as u64;
                        }
                    }
                    i += stride;
                }
                buf.flush(&queue);
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
                scout_sum.fetch_add(local_scout, Ordering::Relaxed);
            });
            scout = scout_sum.into_inner();
            queue.slide_window();
        }
        if queue.is_window_empty() {
            break;
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    #[test]
    fn valid_tree_on_road_and_kron() {
        for g in [
            gen::road(&gen::RoadConfig::gap_like(20), 1),
            gen::kron(9, 10, 1),
        ] {
            let parent = bfs(&g, 0, &ThreadPool::new(4));
            use std::collections::VecDeque;
            let mut depth = vec![usize::MAX; g.num_vertices()];
            let mut q = VecDeque::new();
            depth[0] = 0;
            q.push_back(0 as NodeId);
            while let Some(u) = q.pop_front() {
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == usize::MAX {
                        depth[v as usize] = depth[u as usize] + 1;
                        q.push_back(v);
                    }
                }
            }
            for v in g.vertices() {
                let p = parent[v as usize];
                assert_eq!(p == NO_PARENT, depth[v as usize] == usize::MAX);
                if p != NO_PARENT && v != 0 {
                    assert_eq!(depth[p as usize] + 1, depth[v as usize]);
                }
            }
        }
    }
}
