//! GKC betweenness centrality: Brandes with a per-arc successor bitmap
//! (the same family as GAP — Table V shows GKC BC within a few percent of
//! GAP on every graph), driven by the local-buffer frontier machinery.

use gapbs_graph::types::{NodeId, Score};
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::atomics::AtomicF64;
use gapbs_parallel::sync::Mutex;
use gapbs_parallel::{AtomicBitmap, ThreadPool};
use std::sync::atomic::{AtomicU32, Ordering};

const UNVISITED: u32 = u32::MAX;

/// Runs Brandes BC from `sources`, normalized by the maximum score.
pub fn bc<O: OffsetIndex>(g: &Graph<O>, sources: &[NodeId], pool: &ThreadPool) -> Vec<Score> {
    let n = g.num_vertices();
    let mut scores = vec![0.0; n];
    if n == 0 {
        return scores;
    }
    let succ = AtomicBitmap::new(g.num_arcs());
    for &s in sources {
        succ.clear();
        let depth: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
        let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        depth[s as usize].store(0, Ordering::Relaxed);
        sigma[s as usize].store(1.0);
        let mut levels = vec![vec![s]];
        loop {
            let frontier = levels.last().expect("root level");
            if frontier.is_empty() {
                levels.pop();
                break;
            }
            gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
            let d = (levels.len() - 1) as u32;
            gapbs_telemetry::trace_iter!(BcLevel {
                depth: d,
                frontier: frontier.len() as u64
            });
            let next = Mutex::new(Vec::new());
            let stride = pool.num_threads();
            pool.run(|tid| {
                let mut local = Vec::new();
                let mut examined = 0u64;
                let mut i = tid;
                while i < frontier.len() {
                    let u = frontier[i];
                    let su = sigma[u as usize].load();
                    let base = g.out_csr().offset(u);
                    let row = g.out_neighbors(u);
                    examined += row.len() as u64;
                    let mut k = 0;
                    while k < row.len() {
                        let v = row[k];
                        let dv = depth[v as usize].load(Ordering::Relaxed);
                        if dv == UNVISITED
                            && depth[v as usize]
                                .compare_exchange(
                                    UNVISITED,
                                    d + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            local.push(v);
                            sigma[v as usize].fetch_add(su);
                            succ.set(base + k);
                        } else if depth[v as usize].load(Ordering::Relaxed) == d + 1 {
                            sigma[v as usize].fetch_add(su);
                            succ.set(base + k);
                        }
                        k += 1;
                    }
                    i += stride;
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
                next.lock().append(&mut local);
            });
            levels.push(next.into_inner());
        }
        let delta: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        for level in levels.iter().rev().skip(1) {
            let stride = pool.num_threads();
            pool.run(|tid| {
                let mut i = tid;
                while i < level.len() {
                    let u = level[i];
                    let su = sigma[u as usize].load();
                    let base = g.out_csr().offset(u);
                    let row = g.out_neighbors(u);
                    let mut acc = 0.0;
                    let mut k = 0;
                    while k < row.len() {
                        if succ.get(base + k) {
                            let v = row[k] as usize;
                            acc += (su / sigma[v].load()) * (1.0 + delta[v].load());
                        }
                        k += 1;
                    }
                    delta[u as usize].store(acc);
                    i += stride;
                }
            });
        }
        for v in 0..n {
            if v as NodeId != s {
                scores[v] += delta[v].load();
            }
        }
    }
    let max = scores.iter().cloned().fold(0.0, Score::max);
    if max > 0.0 {
        for v in &mut scores {
            *v /= max;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    #[test]
    fn matches_sequential_brandes() {
        use std::collections::VecDeque;
        for seed in [1, 6] {
            let g = gen::kron(8, 8, seed);
            let sources = [0, 4, 8, 12];
            let got = bc(&g, &sources, &ThreadPool::new(4));
            let n = g.num_vertices();
            let mut want = vec![0.0f64; n];
            for &s in &sources {
                let mut depth = vec![i64::MAX; n];
                let mut sigma = vec![0.0f64; n];
                let mut order = Vec::new();
                let mut q = VecDeque::new();
                depth[s as usize] = 0;
                sigma[s as usize] = 1.0;
                q.push_back(s);
                while let Some(u) = q.pop_front() {
                    order.push(u);
                    for &v in g.out_neighbors(u) {
                        if depth[v as usize] == i64::MAX {
                            depth[v as usize] = depth[u as usize] + 1;
                            q.push_back(v);
                        }
                        if depth[v as usize] == depth[u as usize] + 1 {
                            sigma[v as usize] += sigma[u as usize];
                        }
                    }
                }
                let mut delta = vec![0.0f64; n];
                for &u in order.iter().rev() {
                    for &v in g.out_neighbors(u) {
                        if depth[v as usize] == depth[u as usize] + 1 {
                            delta[u as usize] +=
                                (sigma[u as usize] / sigma[v as usize]) * (1.0 + delta[v as usize]);
                        }
                    }
                    if u != s {
                        want[u as usize] += delta[u as usize];
                    }
                }
            }
            let max = want.iter().cloned().fold(0.0, f64::max);
            if max > 0.0 {
                for w in &mut want {
                    *w /= max;
                }
            }
            for v in 0..n {
                assert!((got[v] - want[v]).abs() < 1e-9, "seed {seed} vertex {v}");
            }
        }
    }
}
