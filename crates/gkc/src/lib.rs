//! Graph Kernel Collection (GKC)-style framework: hand-tuned black-box
//! kernels built on HPC techniques (§III-E).
//!
//! The C++ original leans on SIMD intrinsics and inline assembly; the
//! portable analogues here keep the *structural* optimizations that carry
//! GKC's results in the paper:
//!
//! * **Thread-local output buffers** sized to stay cache-resident,
//!   explicitly flushed to the shared frontier — the false-sharing
//!   avoidance of §III-E1 ([`LocalBuffer`](gapbs_parallel::LocalBuffer)).
//! * **Branch-reduced merge loops** for set intersection (the scalar
//!   stand-in for SIMD set intersection; reduced branch misprediction is
//!   the effect that matters, per Inoue et al.).
//! * **Heuristic-driven relabeling** for TC based on degree skewness
//!   (Lee & Low), applied only when the sampled skew justifies the sort —
//!   which is why GKC's TC wins on *every* graph in Table V, including
//!   Road where the heuristic declines to sort.
//! * **Shiloach–Vishkin hybrid CC**, the one framework not using
//!   Afforest — replicating the §V-C observation that Afforest's
//!   advantage inverts on Urand.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod pr;
pub mod sssp;
pub mod tc;

pub use bc::bc;
pub use bfs::bfs;
pub use cc::cc;
pub use pr::pr;
pub use sssp::sssp;
pub use tc::tc;
