//! GKC PageRank: Gauss–Seidel sweeps (Table III) with tight scalar inner
//! loops over the raw CSR slices.

use gapbs_graph::types::{NodeId, Score};
use gapbs_graph::{Graph, OffsetIndex, Strips};
use gapbs_parallel::atomics::AtomicF64;
use gapbs_parallel::ThreadPool;

/// Runs Gauss–Seidel PageRank; returns `(scores, iterations)`.
pub fn pr<O: OffsetIndex>(
    g: &Graph<O>,
    damping: f64,
    tolerance: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> (Vec<Score>, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let nf = n as Score;
    let base = (1.0 - damping) / nf;
    let scores: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(1.0 / nf)).collect();
    // Precompute reciprocal out-degrees: one multiply instead of a divide
    // in the hot loop (the scalar micro-optimization GKC would inline).
    let inv_degree: Vec<Score> = g
        .vertices()
        .map(|u| {
            let d = g.out_degree(u);
            if d > 0 {
                1.0 / d as Score
            } else {
                0.0
            }
        })
        .collect();
    // Strip the sweep by in-edge mass so each strip's score window stays
    // LLC-resident; Gauss–Seidel stays in-place, the strip order merely
    // bounds how much of `scores` a worker touches at once.
    let strips = Strips::pull(g.in_csr());
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        gapbs_telemetry::record(gapbs_telemetry::Counter::PrIterations, 1);
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, g.num_arcs() as u64);
        let dangling: Score = (0..n)
            .filter(|&v| g.out_degree(v as NodeId) == 0)
            .map(|v| scores[v].load())
            .sum::<Score>()
            / nf;
        let error = pool.reduce_index(
            strips.len(),
            gapbs_parallel::Schedule::Dynamic(1),
            0.0f64,
            |s| {
                let mut strip_error = 0.0;
                for v in strips.range(s) {
                    let row = g.in_neighbors(v as NodeId);
                    let mut sum = 0.0;
                    let mut k = 0;
                    while k < row.len() {
                        let u = row[k] as usize;
                        sum += scores[u].load() * inv_degree[u];
                        k += 1;
                    }
                    let new = base + damping * (sum + dangling);
                    let old = scores[v].load();
                    scores[v].store(new);
                    strip_error += (new - old).abs();
                }
                strip_error
            },
            |a, b| a + b,
        );
        // Per-sweep mass renormalization: in-place updates inflate total
        // mass, and the excess decays too slowly to hit the tolerance in
        // the expected sweep count.
        let mass = pool.reduce_index(
            n,
            gapbs_parallel::Schedule::Static,
            0.0f64,
            |v| scores[v].load(),
            |a, b| a + b,
        );
        if mass > 0.0 {
            pool.for_each_index(n, gapbs_parallel::Schedule::Static, |v| {
                scores[v].store(scores[v].load() / mass);
            });
        }
        gapbs_telemetry::trace_iter!(PrSweep {
            sweep: iterations as u32,
            residual: error
        });
        if error < tolerance {
            break;
        }
    }
    (scores.iter().map(AtomicF64::load).collect(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    #[test]
    fn scores_sum_to_one_and_converge() {
        let g = gen::kron(8, 8, 1);
        let (scores, iters) = pr(&g, 0.85, 1e-7, 300, &ThreadPool::new(4));
        let total: Score = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "total {total}");
        assert!(iters < 300);
    }

    #[test]
    fn fixed_point_property_holds() {
        let g = gen::urand(8, 8, 6);
        let (scores, _) = pr(&g, 0.85, 1e-10, 1000, &ThreadPool::new(1));
        let n = g.num_vertices();
        let nf = n as f64;
        let dangling: f64 = (0..n)
            .filter(|&v| g.out_degree(v as NodeId) == 0)
            .map(|v| scores[v])
            .sum::<f64>()
            / nf;
        for v in 0..n {
            let sum: f64 = g
                .in_neighbors(v as NodeId)
                .iter()
                .map(|&u| scores[u as usize] / g.out_degree(u) as f64)
                .sum();
            let expect = 0.15 / nf + 0.85 * (sum + dangling);
            assert!((scores[v] - expect).abs() < 1e-7, "vertex {v}");
        }
    }
}
