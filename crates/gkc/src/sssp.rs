//! GKC SSSP: delta-stepping with per-thread relaxation buffers.
//!
//! No bucket fusion (that is GraphIt's and GAP's edge), which is why the
//! paper shows GKC SSSP strong on shallow graphs (113–119% of GAP) but
//! weak on Road (18%) where synchronization dominates.

use gapbs_graph::types::{Distance, NodeId, INF_DIST};
use gapbs_graph::{OffsetIndex, WGraph, Weight};
use gapbs_parallel::atomics::{as_atomic_i64, fetch_min_i64};
use gapbs_parallel::sync::Mutex;
use gapbs_parallel::{LocalBuffer, ThreadPool};
use std::sync::atomic::Ordering;

/// Runs delta-stepping from `source`.
pub fn sssp<O: OffsetIndex>(
    g: &WGraph<O>,
    source: NodeId,
    delta: Weight,
    pool: &ThreadPool,
) -> Vec<Distance> {
    let n = g.num_vertices();
    let mut dist = vec![INF_DIST; n];
    if n == 0 {
        return dist;
    }
    let delta = Distance::from(delta.max(1));
    dist[source as usize] = 0;
    let cells = as_atomic_i64(&mut dist);
    let mut buckets: Vec<Vec<NodeId>> = vec![vec![source]];
    let mut current = 0usize;
    loop {
        while current < buckets.len() && buckets[current].is_empty() {
            current += 1;
        }
        if current >= buckets.len() {
            break;
        }
        loop {
            let frontier = std::mem::take(&mut buckets[current]);
            if frontier.is_empty() {
                break;
            }
            gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
            gapbs_telemetry::trace_iter!(SsspBucket {
                bucket: current as u64,
                size: frontier.len() as u64
            });
            let level = current as Distance;
            let collected = Mutex::new(Vec::new());
            let stride = pool.num_threads();
            pool.run(|tid| {
                // Cache-sized local buffer of produced (bucket, vertex)
                // pairs, flushed in bulk to minimize shared-lock traffic.
                let mut buf: LocalBuffer<(usize, NodeId)> = LocalBuffer::new();
                let mut sink = |items: &mut Vec<(usize, NodeId)>| {
                    collected.lock().append(items);
                };
                let mut i = tid;
                let mut examined = 0u64;
                while i < frontier.len() {
                    let u = frontier[i];
                    let du = cells[u as usize].load(Ordering::Relaxed);
                    if du / delta == level {
                        for (v, w) in g.out_neighbors_weighted(u) {
                            examined += 1;
                            let nd = du + Distance::from(w);
                            if fetch_min_i64(&cells[v as usize], nd) {
                                buf.push(((nd / delta) as usize, v), &mut sink);
                            }
                        }
                    }
                    i += stride;
                }
                buf.flush(&mut sink);
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
            });
            for (lvl, v) in collected.into_inner() {
                if buckets.len() <= lvl {
                    buckets.resize_with(lvl + 1, Vec::new);
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::BucketRelaxations, 1);
                if lvl < current {
                    gapbs_telemetry::record(gapbs_telemetry::Counter::BucketReRelaxations, 1);
                }
                buckets[lvl.max(current)].push(v);
            }
        }
        current += 1;
        if current >= buckets.len() {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn dijkstra(g: &WGraph, source: NodeId) -> Vec<Distance> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![INF_DIST; g.num_vertices()];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0 as Distance, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.out_neighbors_weighted(u) {
                let nd = d + Distance::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn matches_dijkstra_on_kron_and_road() {
        let p = ThreadPool::new(4);
        let e1 = gen::kron_edges(8, 10, 2);
        let g1 = gen::weighted_companion(256, &e1, true, 2);
        assert_eq!(sssp(&g1, 0, 32, &p), dijkstra(&g1, 0));
        let e2 = gen::road_edges(&gen::RoadConfig::gap_like(16), 2);
        let g2 = gen::weighted_companion(256, &e2, false, 2);
        assert_eq!(sssp(&g2, 0, 2, &p), dijkstra(&g2, 0));
    }
}
