//! GraphIt SSSP: delta-stepping with *bucket fusion* — GraphIt's own
//! contribution (§VI): "if a thread sees that the next bucket has the same
//! priority as the current bucket, it can process the next bucket without
//! synchronizing with other threads ... reducing the number of rounds /
//! synchronizations by a factor of ten while maintaining a strict priority
//! order. It sets a threshold on the next bucket size to avoid load
//! imbalance."

use gapbs_graph::types::{Distance, NodeId, INF_DIST};
use gapbs_graph::{OffsetIndex, WGraph, Weight};
use gapbs_parallel::atomics::{as_atomic_i64, fetch_min_i64};
use gapbs_parallel::sync::Mutex;
use gapbs_parallel::ThreadPool;
use std::sync::atomic::Ordering;

/// The bucket-size threshold below which a fused (synchronization-free)
/// drain is used.
pub const FUSION_THRESHOLD: usize = 512;

/// Runs delta-stepping from `source`; `bucket_fusion` toggles the
/// optimization (the Schedule's knob).
pub fn sssp<O: OffsetIndex>(
    g: &WGraph<O>,
    source: NodeId,
    delta: Weight,
    bucket_fusion: bool,
    pool: &ThreadPool,
) -> Vec<Distance> {
    let n = g.num_vertices();
    let mut dist = vec![INF_DIST; n];
    if n == 0 {
        return dist;
    }
    let delta = Distance::from(delta.max(1));
    dist[source as usize] = 0;
    let cells = as_atomic_i64(&mut dist);
    let mut buckets: Vec<Vec<NodeId>> = vec![vec![source]];
    let mut current = 0usize;
    loop {
        while current < buckets.len() && buckets[current].is_empty() {
            current += 1;
        }
        if current >= buckets.len() {
            break;
        }
        loop {
            let frontier = std::mem::take(&mut buckets[current]);
            if frontier.is_empty() {
                break;
            }
            gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
            gapbs_telemetry::trace_iter!(SsspBucket {
                bucket: current as u64,
                size: frontier.len() as u64
            });
            let level = current as Distance;
            let fused = bucket_fusion && frontier.len() <= FUSION_THRESHOLD;
            let produced: Vec<(usize, NodeId)> = if fused || pool.num_threads() == 1 {
                let mut out = Vec::new();
                for &u in &frontier {
                    relax(g, u, level, delta, cells, &mut out);
                }
                out
            } else {
                let collected = Mutex::new(Vec::new());
                let stride = pool.num_threads();
                pool.run(|tid| {
                    let mut out = Vec::new();
                    let mut i = tid;
                    while i < frontier.len() {
                        relax(g, frontier[i], level, delta, cells, &mut out);
                        i += stride;
                    }
                    collected.lock().append(&mut out);
                });
                collected.into_inner()
            };
            for (lvl, v) in produced {
                if buckets.len() <= lvl {
                    buckets.resize_with(lvl + 1, Vec::new);
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::BucketRelaxations, 1);
                if lvl < current {
                    gapbs_telemetry::record(gapbs_telemetry::Counter::BucketReRelaxations, 1);
                }
                buckets[lvl.max(current)].push(v);
            }
        }
        current += 1;
        if current >= buckets.len() {
            break;
        }
    }
    dist
}

fn relax<O: OffsetIndex>(
    g: &WGraph<O>,
    u: NodeId,
    level: Distance,
    delta: Distance,
    cells: &[std::sync::atomic::AtomicI64],
    out: &mut Vec<(usize, NodeId)>,
) {
    let du = cells[u as usize].load(Ordering::Relaxed);
    if du / delta != level {
        return;
    }
    gapbs_telemetry::record(
        gapbs_telemetry::Counter::EdgesExamined,
        g.out_degree(u) as u64,
    );
    for (v, w) in g.out_neighbors_weighted(u) {
        let nd = du + Distance::from(w);
        if fetch_min_i64(&cells[v as usize], nd) {
            out.push(((nd / delta) as usize, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn dijkstra(g: &WGraph, source: NodeId) -> Vec<Distance> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![INF_DIST; g.num_vertices()];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0 as Distance, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.out_neighbors_weighted(u) {
                let nd = d + Distance::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn fused_and_unfused_match_dijkstra() {
        let edges = gen::road_edges(&gen::RoadConfig::gap_like(18), 4);
        let g = gen::weighted_companion(18 * 18, &edges, false, 4);
        let p = ThreadPool::new(4);
        let want = dijkstra(&g, 0);
        for fusion in [true, false] {
            assert_eq!(sssp(&g, 0, 2, fusion, &p), want, "fusion={fusion}");
        }
    }

    #[test]
    fn works_on_power_law_graphs() {
        let edges = gen::kron_edges(8, 10, 12);
        let g = gen::weighted_companion(256, &edges, true, 12);
        let p = ThreadPool::new(4);
        assert_eq!(sssp(&g, 7, 32, true, &p), dijkstra(&g, 7));
    }
}
