//! GraphIt BFS: one level-synchronous algorithm, three schedules
//! (push, pull, direction-optimizing).
//!
//! The Optimized schedule for Road is push-only: "it does not use
//! direction optimization (always push). This eliminates the runtime
//! overhead of checking the number of active vertices" (§V-A).

use crate::schedule::{Direction, FrontierLayout, Schedule};
use gapbs_graph::stats;
use gapbs_graph::types::{NodeId, NO_PARENT};
use gapbs_graph::{Graph, OffsetIndex, Strips};
use gapbs_parallel::atomics::as_atomic_u32;
use gapbs_parallel::sync::Mutex;
use gapbs_parallel::{AtomicBitmap, Schedule as LoopSched, ThreadPool};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Runs BFS from `source` under the given schedule.
pub fn bfs<O: OffsetIndex>(
    g: &Graph<O>,
    source: NodeId,
    schedule: &Schedule,
    pool: &ThreadPool,
) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut parent = vec![NO_PARENT; n];
    if n == 0 {
        return parent;
    }
    parent[source as usize] = source;
    let parents = as_atomic_u32(&mut parent);
    let mut frontier: Vec<NodeId> = vec![source];
    let visited = AtomicBitmap::new(n);
    visited.set(source as usize);
    let mut edges_to_check = g.num_arcs() as u64;
    let mut scout = g.out_degree(source) as u64;
    let mut strips: Option<Strips> = None;
    let mut was_pull = false;
    let mut depth: u32 = 0;
    while !frontier.is_empty() {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        let pull = match schedule.direction {
            Direction::Push => false,
            Direction::Pull => true,
            Direction::DirectionOptimizing => {
                // The "runtime overhead of checking the number of active
                // vertices" the Road schedule avoids.
                stats::switch_to_pull(scout, edges_to_check)
            }
        };
        if pull != was_pull {
            gapbs_telemetry::record(gapbs_telemetry::Counter::DirectionSwitches, 1);
            was_pull = pull;
        }
        gapbs_telemetry::trace_iter!(BfsLevel {
            depth,
            frontier: frontier.len() as u64,
            dir: gapbs_telemetry::trace::Dir::from_pull(pull)
        });
        depth += 1;
        if pull {
            // Pull phase over LLC-sized strips of in-edge mass; discovered
            // vertices are batched per strip before touching the shared lock.
            let strips = strips.get_or_insert_with(|| Strips::pull(g.in_csr()));
            let front = AtomicBitmap::new(n);
            for &u in &frontier {
                front.set(u as usize);
            }
            let next = Mutex::new(Vec::new());
            let awake = AtomicU64::new(0);
            pool.for_each_index(strips.len(), LoopSched::Dynamic(1), |s| {
                let mut scanned = 0u64;
                let mut woke = 0u64;
                let mut found: Vec<NodeId> = Vec::new();
                for v in strips.range(s) {
                    if !visited.get(v) {
                        for &u in g.in_neighbors(v as NodeId) {
                            scanned += 1;
                            if front.get(u as usize) {
                                parents[v].store(u, Ordering::Relaxed);
                                visited.set(v);
                                woke += g.out_degree(v as NodeId) as u64;
                                found.push(v as NodeId);
                                break;
                            }
                        }
                    }
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, scanned);
                if woke > 0 {
                    awake.fetch_add(woke, Ordering::Relaxed);
                }
                if !found.is_empty() {
                    next.lock().extend_from_slice(&found);
                }
            });
            edges_to_check = edges_to_check.saturating_sub(scout);
            scout = awake.into_inner();
            frontier = next.into_inner();
        } else {
            edges_to_check = edges_to_check.saturating_sub(scout);
            let (next, new_scout) = push_step(g, parents, &visited, &frontier, schedule, pool);
            scout = new_scout;
            frontier = next;
        }
    }
    parent
}

fn push_step<O: OffsetIndex>(
    g: &Graph<O>,
    parents: &[AtomicU32],
    visited: &AtomicBitmap,
    frontier: &[NodeId],
    schedule: &Schedule,
    pool: &ThreadPool,
) -> (Vec<NodeId>, u64) {
    let scout = AtomicU64::new(0);
    match schedule.frontier {
        FrontierLayout::SparseQueue => {
            let next = Mutex::new(Vec::new());
            let stride = pool.num_threads();
            pool.run(|tid| {
                let mut local = Vec::new();
                let mut s = 0u64;
                let mut examined = 0u64;
                let mut i = tid;
                while i < frontier.len() {
                    let u = frontier[i];
                    examined += g.out_degree(u) as u64;
                    for &v in g.out_neighbors(u) {
                        if visited.set_if_unset(v as usize) {
                            parents[v as usize].store(u, Ordering::Relaxed);
                            local.push(v);
                            s += g.out_degree(v) as u64;
                        }
                    }
                    i += stride;
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
                next.lock().append(&mut local);
                scout.fetch_add(s, Ordering::Relaxed);
            });
            (next.into_inner(), scout.into_inner())
        }
        FrontierLayout::BitVector => {
            // Dense next-frontier bitmap, then a sweep to extract it.
            let n = g.num_vertices();
            let next_bits = AtomicBitmap::new(n);
            let stride = pool.num_threads();
            pool.run(|tid| {
                let mut s = 0u64;
                let mut examined = 0u64;
                let mut i = tid;
                while i < frontier.len() {
                    let u = frontier[i];
                    examined += g.out_degree(u) as u64;
                    for &v in g.out_neighbors(u) {
                        if visited.set_if_unset(v as usize) {
                            parents[v as usize].store(u, Ordering::Relaxed);
                            next_bits.set(v as usize);
                            s += g.out_degree(v) as u64;
                        }
                    }
                    i += stride;
                }
                gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
                scout.fetch_add(s, Ordering::Relaxed);
            });
            let next: Vec<NodeId> = next_bits.iter_ones().map(|v| v as NodeId).collect();
            (next, scout.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn check(g: &Graph, source: NodeId, parent: &[NodeId]) {
        use std::collections::VecDeque;
        let mut depth = vec![usize::MAX; g.num_vertices()];
        let mut q = VecDeque::new();
        depth[source as usize] = 0;
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &v in g.out_neighbors(u) {
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        for v in g.vertices() {
            let p = parent[v as usize];
            assert_eq!(p == NO_PARENT, depth[v as usize] == usize::MAX, "at {v}");
            if p != NO_PARENT && v != source {
                assert_eq!(depth[p as usize] + 1, depth[v as usize], "at {v}");
            }
        }
    }

    #[test]
    fn all_schedules_produce_valid_trees() {
        let g = gen::kron(9, 10, 6);
        let p = pool();
        for direction in [
            Direction::Push,
            Direction::Pull,
            Direction::DirectionOptimizing,
        ] {
            for frontier in [FrontierLayout::SparseQueue, FrontierLayout::BitVector] {
                let s = Schedule {
                    direction,
                    frontier,
                    ..Schedule::baseline()
                };
                let parent = bfs(&g, 2, &s, &p);
                check(&g, 2, &parent);
            }
        }
    }

    #[test]
    fn push_only_works_on_road() {
        let g = gen::road(&gen::RoadConfig::gap_like(20), 4);
        let s = Schedule::optimized_for(gapbs_graph::gen::GraphSpec::Road);
        let parent = bfs(&g, 0, &s, &pool());
        check(&g, 0, &parent);
    }
}
