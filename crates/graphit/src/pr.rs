//! GraphIt PageRank: Jacobi pull with optional *cache tiling* ("making
//! caches work for graph analytics", §V-D). The Optimized schedule builds
//! cache-efficient source-blocked subgraphs from CSR; the paper notes this
//! preprocessing "is amortized within 2–5 iterations", and the build time
//! is part of the kernel here for the same reason.

use gapbs_graph::types::{NodeId, Score};
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::{Schedule as LoopSched, ThreadPool};

/// Source-block size for the tiled schedule (vertices per tile).
const TILE: usize = 4096;

/// One entry per tile: the vertices whose in-neighbors fall in that
/// source block, with those neighbors.
type TileSegments = Vec<Vec<(NodeId, Vec<NodeId>)>>;

/// Runs PageRank; returns `(scores, iterations)`.
pub fn pr<O: OffsetIndex>(
    g: &Graph<O>,
    damping: f64,
    tolerance: f64,
    max_iters: usize,
    cache_tiling: bool,
    pool: &ThreadPool,
) -> (Vec<Score>, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Tiled schedule: segment each vertex's in-neighbors by source block,
    // so each pass over a block keeps its source scores cache-resident.
    let tiles: Option<TileSegments> = cache_tiling.then(|| {
        let num_tiles = n.div_ceil(TILE);
        let mut tiles: TileSegments = vec![Vec::new(); num_tiles];
        for v in g.vertices() {
            let mut per_tile: Vec<Vec<NodeId>> = vec![Vec::new(); num_tiles];
            for &u in g.in_neighbors(v) {
                per_tile[u as usize / TILE].push(u);
            }
            for (t, sources) in per_tile.into_iter().enumerate() {
                if !sources.is_empty() {
                    tiles[t].push((v, sources));
                }
            }
        }
        tiles
    });

    let nf = n as Score;
    let base = (1.0 - damping) / nf;
    let mut scores = vec![1.0 / nf; n];
    let mut outgoing = vec![0.0; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        gapbs_telemetry::record(gapbs_telemetry::Counter::PrIterations, 1);
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, g.num_arcs() as u64);
        for v in 0..n {
            let d = g.out_degree(v as NodeId);
            outgoing[v] = if d > 0 { scores[v] / d as Score } else { 0.0 };
        }
        let dangling: Score = (0..n)
            .filter(|&v| g.out_degree(v as NodeId) == 0)
            .map(|v| scores[v])
            .sum::<Score>()
            / nf;
        let mut next = vec![base + damping * dangling; n];
        match &tiles {
            Some(tiles) => {
                // Per-tile gather: all reads of `outgoing` stay within one
                // source block per pass.
                for tile in tiles {
                    for (v, sources) in tile {
                        let sum: Score = sources.iter().map(|&u| outgoing[u as usize]).sum();
                        next[*v as usize] += damping * sum;
                    }
                }
            }
            None => {
                let outgoing_ref = &outgoing;
                let cells = as_cells(&mut next);
                pool.for_each_index(n, LoopSched::Dynamic(256), |v| {
                    let sum: Score = g
                        .in_neighbors(v as NodeId)
                        .iter()
                        .map(|&u| outgoing_ref[u as usize])
                        .sum();
                    cells[v].fetch_add(damping * sum);
                });
            }
        }
        let error: Score = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        scores = next;
        gapbs_telemetry::trace_iter!(PrSweep {
            sweep: iterations as u32,
            residual: error
        });
        if error < tolerance {
            break;
        }
    }
    (scores, iterations)
}

fn as_cells(slice: &mut [Score]) -> &[gapbs_parallel::atomics::AtomicF64] {
    // Safety: AtomicF64 is layout-compatible with f64; exclusive borrow
    // prevents non-atomic aliasing for the region's duration.
    unsafe { &*(slice as *mut [Score] as *const [gapbs_parallel::atomics::AtomicF64]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn tiled_and_untiled_agree() {
        let g = gen::kron(9, 8, 3);
        let p = pool();
        let (a, ia) = pr(&g, 0.85, 1e-8, 300, false, &p);
        let (b, ib) = pr(&g, 0.85, 1e-8, 300, true, &p);
        assert_eq!(ia, ib, "tiling must not change iteration count");
        for v in 0..a.len() {
            assert!((a[v] - b[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let g = gen::urand(9, 8, 5);
        let (scores, _) = pr(&g, 0.85, 1e-7, 300, true, &pool());
        let total: Score = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }
}
