//! GraphIt betweenness centrality: Brandes with a bit-vector frontier and
//! a *transposed backward pass*.
//!
//! "Unlike GAP's implementation, GraphIt transposes the graph for the
//! backward pass ... GraphIt uses a bitvector to represent the frontier,
//! which is advantageous when there are many active elements" (§V-E). The
//! backward pass here pulls dependency contributions over *incoming*
//! edges of each level, scattering into the shallower level with atomic
//! adds — a genuinely different data-flow from GAP's successor bitmap.

use crate::schedule::FrontierLayout;
use gapbs_graph::types::{NodeId, Score};
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::atomics::AtomicF64;
use gapbs_parallel::sync::Mutex;
use gapbs_parallel::{AtomicBitmap, ThreadPool};
use std::sync::atomic::{AtomicU32, Ordering};

const UNVISITED: u32 = u32::MAX;

/// Runs Brandes BC from `sources` under the given frontier layout,
/// normalized by the maximum score.
pub fn bc<O: OffsetIndex>(
    g: &Graph<O>,
    sources: &[NodeId],
    frontier_layout: FrontierLayout,
    pool: &ThreadPool,
) -> Vec<Score> {
    let n = g.num_vertices();
    let mut scores = vec![0.0; n];
    if n == 0 {
        return scores;
    }
    for &s in sources {
        single_source(g, s, frontier_layout, pool, &mut scores);
    }
    let max = scores.iter().cloned().fold(0.0, Score::max);
    if max > 0.0 {
        for v in &mut scores {
            *v /= max;
        }
    }
    scores
}

fn single_source<O: OffsetIndex>(
    g: &Graph<O>,
    source: NodeId,
    frontier_layout: FrontierLayout,
    pool: &ThreadPool,
    scores: &mut [Score],
) {
    let n = g.num_vertices();
    let depth: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    depth[source as usize].store(0, Ordering::Relaxed);
    sigma[source as usize].store(1.0);
    let mut levels: Vec<Vec<NodeId>> = vec![vec![source]];
    // Forward pass, frontier as list or bitvector per the schedule.
    loop {
        let frontier = levels.last().expect("root level exists");
        if frontier.is_empty() {
            levels.pop();
            break;
        }
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        let d = (levels.len() - 1) as u32;
        gapbs_telemetry::trace_iter!(BcLevel {
            depth: d,
            frontier: frontier.len() as u64
        });
        let next: Vec<NodeId> = match frontier_layout {
            FrontierLayout::BitVector => {
                let bits = AtomicBitmap::new(n);
                expand(g, frontier, d, &depth, &sigma, pool, |v| {
                    bits.set(v as usize)
                });
                bits.iter_ones().map(|v| v as NodeId).collect()
            }
            FrontierLayout::SparseQueue => {
                let list = Mutex::new(Vec::new());
                expand(g, frontier, d, &depth, &sigma, pool, |v| {
                    list.lock().push(v)
                });
                let mut next = list.into_inner();
                next.sort_unstable();
                next
            }
        };
        levels.push(next);
    }
    // Backward pass over the transposed graph: level-d vertices push their
    // dependency share to in-neighbors one level shallower.
    let delta: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    for d in (1..levels.len()).rev() {
        let level = &levels[d];
        let stride = pool.num_threads();
        pool.run(|tid| {
            let mut i = tid;
            while i < level.len() {
                let w = level[i];
                let share = (1.0 + delta[w as usize].load()) / sigma[w as usize].load();
                for &u in g.in_neighbors(w) {
                    if depth[u as usize].load(Ordering::Relaxed) == (d - 1) as u32 {
                        delta[u as usize].fetch_add(sigma[u as usize].load() * share);
                    }
                }
                i += stride;
            }
        });
    }
    for v in 0..n {
        if v as NodeId != source {
            scores[v] += delta[v].load();
        }
    }
}

fn expand<O: OffsetIndex, F: Fn(NodeId) + Sync>(
    g: &Graph<O>,
    frontier: &[NodeId],
    d: u32,
    depth: &[AtomicU32],
    sigma: &[AtomicF64],
    pool: &ThreadPool,
    record: F,
) {
    let stride = pool.num_threads();
    pool.run(|tid| {
        let mut i = tid;
        let mut examined = 0u64;
        while i < frontier.len() {
            let u = frontier[i];
            let su = sigma[u as usize].load();
            examined += g.out_degree(u) as u64;
            for &v in g.out_neighbors(u) {
                let dv = depth[v as usize].load(Ordering::Relaxed);
                if dv == UNVISITED
                    && depth[v as usize]
                        .compare_exchange(UNVISITED, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    record(v);
                    sigma[v as usize].fetch_add(su);
                    continue;
                }
                if depth[v as usize].load(Ordering::Relaxed) == d + 1 {
                    sigma[v as usize].fetch_add(su);
                }
            }
            i += stride;
        }
        gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, examined);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn oracle(g: &Graph, sources: &[NodeId]) -> Vec<Score> {
        use std::collections::VecDeque;
        let n = g.num_vertices();
        let mut scores = vec![0.0; n];
        for &s in sources {
            let mut depth = vec![i64::MAX; n];
            let mut sigma = vec![0.0f64; n];
            let mut order = Vec::new();
            let mut q = VecDeque::new();
            depth[s as usize] = 0;
            sigma[s as usize] = 1.0;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                order.push(u);
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == i64::MAX {
                        depth[v as usize] = depth[u as usize] + 1;
                        q.push_back(v);
                    }
                    if depth[v as usize] == depth[u as usize] + 1 {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            for &u in order.iter().rev() {
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == depth[u as usize] + 1 {
                        delta[u as usize] +=
                            (sigma[u as usize] / sigma[v as usize]) * (1.0 + delta[v as usize]);
                    }
                }
                if u != s {
                    scores[u as usize] += delta[u as usize];
                }
            }
        }
        let max = scores.iter().cloned().fold(0.0, f64::max);
        if max > 0.0 {
            for v in &mut scores {
                *v /= max;
            }
        }
        scores
    }

    #[test]
    fn both_layouts_match_oracle() {
        for seed in [3, 4] {
            let g = gen::kron(8, 8, seed);
            let sources = [0, 2, 9, 17];
            let want = oracle(&g, &sources);
            let p = ThreadPool::new(4);
            for layout in [FrontierLayout::BitVector, FrontierLayout::SparseQueue] {
                let got = bc(&g, &sources, layout, &p);
                for v in 0..want.len() {
                    assert!(
                        (got[v] - want[v]).abs() < 1e-9,
                        "{layout:?} vertex {v}: {} vs {}",
                        got[v],
                        want[v]
                    );
                }
            }
        }
    }

    #[test]
    fn directed_graph_backward_pass_uses_in_edges() {
        use gapbs_graph::{edgelist::edges, Builder};
        let g = Builder::new()
            .build(edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]))
            .unwrap();
        let want = oracle(&g, &[0]);
        let got = bc(&g, &[0], FrontierLayout::BitVector, &ThreadPool::new(2));
        for v in 0..want.len() {
            assert!((got[v] - want[v]).abs() < 1e-9, "vertex {v}");
        }
    }
}
