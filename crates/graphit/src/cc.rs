//! GraphIt connected components: **label propagation** — the algorithmic
//! outlier of Table III.
//!
//! "GraphIt does not yet support sampling algorithms and uses a
//! label-propagation approach which runs in O(E·D)" (§V-C); GAP's Afforest
//! runs in ~O(V), which is why GraphIt CC is deep red across Table V, and
//! catastrophically so on high-diameter Road (0.17%). The Optimized Road
//! schedule adds *short-circuiting* (pointer jumping) because "vertex
//! chains tend to go longer on high-diameter graphs" — a 3× improvement
//! that still loses to Afforest.

use gapbs_graph::types::NodeId;
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::atomics::{as_atomic_u32, fetch_min_u32};
use gapbs_parallel::{AtomicBitmap, Schedule as LoopSched, ThreadPool};
use std::sync::atomic::Ordering;

/// Runs label propagation; `short_circuit` enables the pointer-jumping
/// pass of the Optimized Road schedule.
pub fn cc<O: OffsetIndex>(g: &Graph<O>, short_circuit: bool, pool: &ThreadPool) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
    if n == 0 {
        return labels;
    }
    let cells = as_atomic_u32(&mut labels);
    // Frontier-driven propagation: only vertices whose label changed last
    // round push again.
    let mut active = AtomicBitmap::new(n);
    for v in 0..n {
        active.set(v);
    }
    let mut round: u32 = 0;
    loop {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        let next = AtomicBitmap::new(n);
        pool.for_each_index(n, LoopSched::Dynamic(512), |u| {
            if !active.get(u) {
                return;
            }
            let scanned = g.out_degree(u as NodeId) as u64
                + if g.is_directed() {
                    g.in_degree(u as NodeId) as u64
                } else {
                    0
                };
            let lu = cells[u].load(Ordering::Relaxed);
            for &v in g.out_neighbors(u as NodeId) {
                if fetch_min_u32(&cells[v as usize], lu) {
                    next.set(v as usize);
                }
                // Propagation is symmetric: also pull the neighbor's label.
                let lv = cells[v as usize].load(Ordering::Relaxed);
                if fetch_min_u32(&cells[u], lv) {
                    next.set(u);
                }
            }
            if g.is_directed() {
                for &v in g.in_neighbors(u as NodeId) {
                    let lu = cells[u].load(Ordering::Relaxed);
                    if fetch_min_u32(&cells[v as usize], lu) {
                        next.set(v as usize);
                    }
                }
            }
            gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, scanned);
        });
        if short_circuit {
            // Pointer jumping: collapse label chains each round.
            pool.for_each_index(n, LoopSched::Static, |u| {
                let mut l = cells[u].load(Ordering::Relaxed);
                loop {
                    let ll = cells[l as usize].load(Ordering::Relaxed);
                    if ll >= l {
                        break;
                    }
                    l = ll;
                }
                cells[u].store(l, Ordering::Relaxed);
            });
        }
        let changed = next.count_ones() as u64;
        gapbs_telemetry::trace_iter!(CcRound { round, changed });
        round += 1;
        if changed == 0 {
            break;
        }
        active = next;
    }
    // Final normalization: labels must be component-consistent even after
    // short-circuit races; one more jump pass settles them.
    pool.for_each_index(n, LoopSched::Static, |u| {
        let mut l = cells[u].load(Ordering::Relaxed);
        loop {
            let ll = cells[l as usize].load(Ordering::Relaxed);
            if ll >= l {
                break;
            }
            l = ll;
        }
        cells[u].store(l, Ordering::Relaxed);
    });
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn oracle(g: &Graph) -> Vec<NodeId> {
        let n = g.num_vertices();
        let mut p: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for u in 0..n {
            for &v in g.out_neighbors(u as NodeId) {
                let (a, b) = (find(&mut p, u), find(&mut p, v as usize));
                if a != b {
                    p[a.max(b)] = a.min(b);
                }
            }
        }
        (0..n).map(|u| find(&mut p, u) as NodeId).collect()
    }

    fn same_partition(a: &[NodeId], b: &[NodeId]) -> bool {
        let mut f = std::collections::HashMap::new();
        let mut r = std::collections::HashMap::new();
        a.iter()
            .zip(b)
            .all(|(&x, &y)| *f.entry(x).or_insert(y) == y && *r.entry(y).or_insert(x) == x)
    }

    #[test]
    fn matches_oracle_with_and_without_short_circuit() {
        for seed in [1, 2] {
            let g = gen::urand(8, 6, seed);
            let want = oracle(&g);
            let p = pool();
            for sc in [false, true] {
                let got = cc(&g, sc, &p);
                assert!(same_partition(&got, &want), "sc={sc} seed={seed}");
            }
        }
    }

    #[test]
    fn high_diameter_road_converges() {
        let g = gen::road(&gen::RoadConfig::gap_like(24), 6);
        let want = oracle(&g);
        let got = cc(&g, true, &pool());
        assert!(same_partition(&got, &want));
    }

    #[test]
    fn directed_weak_connectivity() {
        use gapbs_graph::{edgelist::edges, Builder};
        let g = Builder::new().build(edges([(0, 1), (2, 1)])).unwrap();
        let got = cc(&g, false, &pool());
        assert_eq!(got[0], got[1]);
        assert_eq!(got[1], got[2]);
    }
}
