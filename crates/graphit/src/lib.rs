//! GraphIt-style framework: algorithms decoupled from *schedules*.
//!
//! GraphIt's thesis (§III-D) is that one algorithm admits many execution
//! strategies — traversal direction, frontier layout, deduplication,
//! cache tiling, bucket fusion — and that choosing them should be separate
//! from expressing the algorithm. This crate mirrors that split:
//!
//! * [`Schedule`] carries the strategy knobs,
//! * each kernel takes a `Schedule` and executes the same algorithm under
//!   it,
//! * [`Schedule::baseline`] is what the autotuner-free Baseline run uses,
//!   and [`Schedule::optimized_for`] returns the per-graph schedules the
//!   GraphIt team hand-picked for the Optimized data set (push-only BFS on
//!   Road, cache-tiled PR, short-circuited label propagation, naive TC
//!   intersection on small graphs — all from §V).
//!
//! CC deliberately uses **label propagation**: the paper explains GraphIt
//! "does not yet support sampling algorithms" like Afforest, making its CC
//! the slowest of the suite (O(E·D) vs Afforest's ~O(V)) — a shape this
//! reproduction preserves.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod pr;
pub mod schedule;
pub mod sssp;
pub mod tc;

pub use bc::bc;
pub use bfs::bfs;
pub use cc::cc;
pub use pr::pr;
pub use schedule::{Direction, FrontierLayout, Intersection, Schedule};
pub use sssp::sssp;
pub use tc::tc;
