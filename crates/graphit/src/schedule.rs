//! The scheduling language: strategy knobs applied to algorithm skeletons.

use gapbs_graph::gen::GraphSpec;

/// Edge traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Always push (sparse frontier scatters).
    Push,
    /// Always pull (dense gather over destinations).
    Pull,
    /// Heuristic switching (direction-optimizing), with GAP's thresholds.
    DirectionOptimizing,
}

/// Frontier data layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierLayout {
    /// Sparse vertex queue.
    SparseQueue,
    /// Dense bit vector (GraphIt's default; "advantageous when there are
    /// many active elements", §V-E).
    BitVector,
}

/// Set-intersection method for TC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intersection {
    /// Linear merge of sorted lists.
    Merge,
    /// The "naive" method GAP uses, better on small graphs (§V-F).
    Naive,
}

/// A complete schedule: every knob the kernels consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Traversal direction for frontier kernels.
    pub direction: Direction,
    /// Frontier representation.
    pub frontier: FrontierLayout,
    /// Bucket fusion in SSSP (GraphIt's own contribution, on by default).
    pub bucket_fusion: bool,
    /// Cache tiling (blocked in-edge processing) for PR/CC.
    pub cache_tiling: bool,
    /// Short-circuit (pointer-jump) labels in CC's label propagation.
    pub short_circuit: bool,
    /// TC intersection method.
    pub intersection: Intersection,
}

impl Schedule {
    /// The Baseline schedule: defaults only, no per-graph tuning
    /// (GraphIt's autotuner was not allowed in the Baseline data set).
    pub fn baseline() -> Self {
        Schedule {
            direction: Direction::DirectionOptimizing,
            frontier: FrontierLayout::BitVector,
            bucket_fusion: true,
            cache_tiling: false,
            short_circuit: false,
            intersection: Intersection::Merge,
        }
    }

    /// The hand-tuned Optimized schedule for a specific graph, following
    /// the §V descriptions: push-only BFS on Road (no direction-check
    /// overhead), sparse frontier on Road BC, cache-tiled PR and CC on the
    /// social graphs, short-circuited CC on Road, naive TC intersection on
    /// Road.
    pub fn optimized_for(spec: GraphSpec) -> Self {
        let mut s = Schedule::baseline();
        match spec {
            GraphSpec::Road => {
                s.direction = Direction::Push;
                s.frontier = FrontierLayout::SparseQueue;
                s.short_circuit = true;
                s.intersection = Intersection::Naive;
            }
            GraphSpec::Twitter | GraphSpec::Kron | GraphSpec::Web => {
                s.cache_tiling = true;
            }
            GraphSpec::Urand => {
                s.cache_tiling = true;
            }
        }
        s
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_untuned() {
        let s = Schedule::baseline();
        assert_eq!(s.direction, Direction::DirectionOptimizing);
        assert!(!s.cache_tiling);
        assert!(s.bucket_fusion);
    }

    #[test]
    fn road_schedule_disables_direction_optimization() {
        let s = Schedule::optimized_for(GraphSpec::Road);
        assert_eq!(s.direction, Direction::Push);
        assert!(s.short_circuit);
        assert_eq!(s.intersection, Intersection::Naive);
    }

    #[test]
    fn social_schedules_enable_tiling() {
        for spec in [GraphSpec::Twitter, GraphSpec::Kron, GraphSpec::Web] {
            assert!(Schedule::optimized_for(spec).cache_tiling, "{spec}");
        }
    }
}
