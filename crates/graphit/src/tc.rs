//! GraphIt triangle counting: order-invariant orientation count whose
//! set-intersection method is a schedule knob.
//!
//! "For the Optimized data set, GraphIt was originally slower than GAP on
//! Road because it used a set intersection method that was inefficient
//! for smaller graphs. Changing back to the naive intersection method
//! used in GAP improved performance" (§V-F). [`Intersection::Merge`] is
//! the branch-light merge (good on large skewed graphs, less branch
//! misprediction); [`Intersection::Naive`] probes the longer list by
//! binary search (good on small graphs).

use crate::schedule::Intersection;
use gapbs_graph::perm;
use gapbs_graph::types::NodeId;
use gapbs_graph::{Graph, OffsetIndex};
use gapbs_parallel::{Schedule as LoopSched, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts triangles of an undirected graph under the given intersection
/// schedule (relabeling decided by heuristic, timed in-kernel).
///
/// # Panics
///
/// Panics if `g` is directed.
pub fn tc<O: OffsetIndex>(g: &Graph<O>, intersection: Intersection, pool: &ThreadPool) -> u64 {
    assert!(!g.is_directed(), "TC expects the symmetrized graph");
    if skewed(g) {
        let relabeled = {
            let _relabel = gapbs_telemetry::Span::enter(gapbs_telemetry::Phase::Relabel);
            perm::apply_in(g, &perm::degree_descending(g), pool)
        };
        count(&relabeled, intersection, pool)
    } else {
        count(g, intersection, pool)
    }
}

fn skewed<O: OffsetIndex>(g: &Graph<O>) -> bool {
    let n = g.num_vertices();
    if n < 10 {
        return false;
    }
    let sample = 1000.min(n);
    let stride = (n / sample).max(1);
    let mut degrees: Vec<usize> = (0..n)
        .step_by(stride)
        .take(sample)
        .map(|u| g.out_degree(u as NodeId))
        .collect();
    degrees.sort_unstable();
    let median = degrees[degrees.len() / 2].max(1);
    degrees.iter().sum::<usize>() / degrees.len() > 2 * median
}

fn count<O: OffsetIndex>(g: &Graph<O>, intersection: Intersection, pool: &ThreadPool) -> u64 {
    let total = AtomicU64::new(0);
    pool.for_each_index(g.num_vertices(), LoopSched::Dynamic(64), |u| {
        let u = u as NodeId;
        let adj_u = g.out_neighbors(u);
        let prefix_u = &adj_u[..adj_u.partition_point(|&x| x < u)];
        let mut local = 0u64;
        let mut comparisons = 0u64;
        for &v in prefix_u {
            let adj_v = g.out_neighbors(v);
            let (found, compared) = match intersection {
                Intersection::Merge => merge_below(prefix_u, adj_v, v),
                Intersection::Naive => probe_below(prefix_u, adj_v, v),
            };
            local += found;
            comparisons += compared;
        }
        // TcIntersections counts element comparisons (shared definition
        // across frameworks); each one examines an adjacency element.
        gapbs_telemetry::record(gapbs_telemetry::Counter::TcIntersections, comparisons);
        gapbs_telemetry::record(
            gapbs_telemetry::Counter::EdgesExamined,
            adj_u.len() as u64 + comparisons,
        );
        if local > 0 {
            total.fetch_add(local, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

/// Returns `(matches, element comparisons)`.
fn merge_below(a: &[NodeId], b: &[NodeId], ceiling: NodeId) -> (u64, u64) {
    let (mut i, mut j, mut c, mut cmp) = (0usize, 0usize, 0u64, 0u64);
    while i < a.len() && j < b.len() && a[i] < ceiling && b[j] < ceiling {
        // Branch-reduced merge step.
        let (x, y) = (a[i], b[j]);
        cmp += 1;
        c += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    (c, cmp)
}

/// Returns `(matches, element comparisons)`; each binary search is
/// charged its ceil(log2) probe count.
fn probe_below(a: &[NodeId], b: &[NodeId], ceiling: NodeId) -> (u64, u64) {
    // Probe elements of the shorter prefix into the longer one.
    let at = &a[..a.partition_point(|&x| x < ceiling)];
    let bt = &b[..b.partition_point(|&x| x < ceiling)];
    let (probe, into) = if at.len() <= bt.len() {
        (at, bt)
    } else {
        (bt, at)
    };
    let per_probe = u64::from((into.len() + 1).next_power_of_two().trailing_zeros()).max(1);
    let c = probe
        .iter()
        .filter(|&&x| into.binary_search(&x).is_ok())
        .count() as u64;
    (c, probe.len() as u64 * per_probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::gen;

    fn brute(g: &Graph) -> u64 {
        let mut c = 0;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if v <= u {
                    continue;
                }
                for &w in g.out_neighbors(v) {
                    if w > v && g.out_csr().has_edge(u, w) {
                        c += 1;
                    }
                }
            }
        }
        c
    }

    #[test]
    fn both_intersections_match_brute_force() {
        for seed in [2, 5] {
            let g = gen::kron(8, 10, seed);
            let want = brute(&g);
            let p = ThreadPool::new(4);
            assert_eq!(tc(&g, Intersection::Merge, &p), want);
            assert_eq!(tc(&g, Intersection::Naive, &p), want);
        }
    }

    #[test]
    fn road_counts_agree_across_methods() {
        let g = gen::road(&gen::RoadConfig::gap_like(20), 9);
        // road is directed; symmetrize first like the harness does.
        let sym = gapbs_graph::Builder::new()
            .symmetrize(true)
            .num_vertices(g.num_vertices())
            .build(
                g.out_csr()
                    .iter_edges()
                    .map(|(u, v)| gapbs_graph::Edge::new(u, v))
                    .collect(),
            )
            .unwrap();
        let p = ThreadPool::new(2);
        assert_eq!(
            tc(&sym, Intersection::Merge, &p),
            tc(&sym, Intersection::Naive, &p)
        );
    }
}
