//! The lock-free execution-counter registry.
//!
//! Counters live in per-thread *shards* of relaxed atomics: a recording
//! thread only ever touches its own cache-line-padded shard, so the hot
//! path is one uncontended `fetch_add(Relaxed)`. Aggregation walks all
//! shards — it runs at span close / trial end, never inside a kernel.
//!
//! The vocabulary is fixed (see [`Counter`]) so ledger records stay
//! schema-stable across runs and `perf_compare` can diff them field by
//! field. The counts follow the GAP suite's own workload view: kernels
//! are characterized by frontier and edge traffic, not just seconds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The fixed counter vocabulary.
///
/// Work counts only — times live in [`crate::span`]. See
/// `docs/TELEMETRY.md` for the unit and producer of each counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Adjacency entries scanned by a kernel (push scans out-edges, pull
    /// scans in-edges until the break; SpMV counts touched entries).
    EdgesExamined,
    /// Vertices appended to a frontier structure.
    FrontierPushes,
    /// Bulk-synchronous rounds: BFS levels, SSSP bucket steps, CC hook
    /// rounds, BC levels.
    Iterations,
    /// Push↔pull transitions of a direction-optimizing traversal.
    DirectionSwitches,
    /// Items pushed into delta-stepping buckets (tentative relaxations).
    BucketRelaxations,
    /// Bucket pushes clamped into the active bucket — work that
    /// re-processes a vertex the current round already settled.
    BucketReRelaxations,
    /// Items pushed onto an asynchronous worklist.
    WorklistPushes,
    /// Successful steals from another thread's worklist deque.
    WorklistSteals,
    /// PageRank iterations until convergence.
    PrIterations,
    /// Element comparisons spent in triangle counting's neighbor-list
    /// intersections (not intersection *calls*; every comparison also
    /// examines an adjacency element, so `tc_intersections <=
    /// edges_examined` is an invariant `perf_compare --lint` checks).
    TcIntersections,
    /// Worker teams brought up by a `ThreadPool` — one event per pool,
    /// regardless of how many regions it later runs.
    PoolWorkerSpawns,
    /// Parallel regions launched on a `ThreadPool` (every `run` /
    /// `for_each_index` / `reduce_index` entry).
    PoolRegions,
    /// Index ranges stolen from another worker's loop deque during
    /// `Dynamic`/`Guided` scheduling.
    PoolSteals,
    /// Times a pool worker blocked on the region barrier waiting for
    /// work (a spurious condvar wakeup counts once per re-block).
    PoolParks,
    /// Adjacency slots filled by the graph builder's parallel scatter
    /// (both directions of a directed build; symmetrized mirrors count).
    BuildEdgesScattered,
    /// Duplicate adjacency entries dropped by the builder's per-row
    /// dedup stage (for weighted graphs, the non-minimum parallel edges).
    BuildDupsDropped,
    /// GraphBLAS sparse-accumulator combines into an already-occupied
    /// slot (a second contribution to the same output index).
    SpaHits,
    /// GraphBLAS sparse-accumulator first-writes (a new output index
    /// became occupied this operation).
    SpaInserts,
    /// Mask membership probes answered by the word-packed bitmap fast
    /// path (one `u64` test instead of a binary search).
    MaskBitmapTests,
    /// Queries the serving daemon's admission gate let onto the pool.
    /// In serve ledgers this is a *cumulative* daemon total at record
    /// time, not a per-window delta (see `docs/SERVING.md`).
    QueriesAdmitted,
    /// Queries the admission gate turned away (wait queue full or the
    /// daemon was draining). Cumulative in serve ledgers.
    QueriesRejected,
    /// Queries that completed execution and produced a success response.
    /// Cumulative in serve ledgers; never exceeds `queries_admitted`.
    QueriesCompleted,
    /// Queries whose deadline expired — either in the admission queue
    /// (never run), fail-fast after admission with an already-expired
    /// deadline (never run), or after execution finished too late
    /// (result discarded, error response sent). Cumulative in serve
    /// ledgers.
    DeadlineExceeded,
    /// Queries answered by a *batched* multi-source execution — explicit
    /// `batch` request members plus coalesced single-source queries.
    /// Cumulative in serve ledgers; never exceeds `queries_admitted`.
    BatchQueries,
    /// Widest multi-source batch executed so far (a monotone high-water
    /// mark, not a sum). Cumulative-max in serve ledgers.
    BatchWidth,
}

impl Counter {
    /// Every counter, in ledger order.
    pub const ALL: [Counter; 25] = [
        Counter::EdgesExamined,
        Counter::FrontierPushes,
        Counter::Iterations,
        Counter::DirectionSwitches,
        Counter::BucketRelaxations,
        Counter::BucketReRelaxations,
        Counter::WorklistPushes,
        Counter::WorklistSteals,
        Counter::PrIterations,
        Counter::TcIntersections,
        Counter::PoolWorkerSpawns,
        Counter::PoolRegions,
        Counter::PoolSteals,
        Counter::PoolParks,
        Counter::BuildEdgesScattered,
        Counter::BuildDupsDropped,
        Counter::SpaHits,
        Counter::SpaInserts,
        Counter::MaskBitmapTests,
        Counter::QueriesAdmitted,
        Counter::QueriesRejected,
        Counter::QueriesCompleted,
        Counter::DeadlineExceeded,
        Counter::BatchQueries,
        Counter::BatchWidth,
    ];

    /// Number of counters in the vocabulary.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable snake_case ledger key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EdgesExamined => "edges_examined",
            Counter::FrontierPushes => "frontier_pushes",
            Counter::Iterations => "iterations",
            Counter::DirectionSwitches => "direction_switches",
            Counter::BucketRelaxations => "bucket_relaxations",
            Counter::BucketReRelaxations => "bucket_re_relaxations",
            Counter::WorklistPushes => "worklist_pushes",
            Counter::WorklistSteals => "worklist_steals",
            Counter::PrIterations => "pr_iterations",
            Counter::TcIntersections => "tc_intersections",
            Counter::PoolWorkerSpawns => "pool_worker_spawns",
            Counter::PoolRegions => "pool_regions",
            Counter::PoolSteals => "pool_steals",
            Counter::PoolParks => "pool_parks",
            Counter::BuildEdgesScattered => "build_edges_scattered",
            Counter::BuildDupsDropped => "build_dups_dropped",
            Counter::SpaHits => "spa_hits",
            Counter::SpaInserts => "spa_inserts",
            Counter::MaskBitmapTests => "mask_bitmap_tests",
            Counter::QueriesAdmitted => "queries_admitted",
            Counter::QueriesRejected => "queries_rejected",
            Counter::QueriesCompleted => "queries_completed",
            Counter::DeadlineExceeded => "deadline_exceeded",
            Counter::BatchQueries => "batch_queries",
            Counter::BatchWidth => "batch_width",
        }
    }

    /// Parses a ledger key back to the counter.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// An aggregated, immutable view of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    values: [u64; Counter::COUNT],
}

impl CounterSet {
    /// The all-zero set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Sets one counter (ledger parsing and tests).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c as usize] = v;
    }

    /// `self - other`, saturating — the work done between two snapshots.
    pub fn delta(&self, other: &CounterSet) -> CounterSet {
        let mut out = CounterSet::zero();
        for c in Counter::ALL {
            out.set(c, self.get(c).saturating_sub(other.get(c)));
        }
        out
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Traversed edges per second — the GAP suite's headline rate metric.
    /// `None` when no edges were counted or the time is degenerate.
    pub fn teps(&self, seconds: f64) -> Option<f64> {
        let edges = self.get(Counter::EdgesExamined);
        (edges > 0 && seconds > 0.0).then(|| edges as f64 / seconds)
    }

    /// Work efficiency: edges examined relative to the graph's arc count
    /// `m`. A direction-optimizing BFS lands well below 1.0; a Jacobi PR
    /// pays ~1.0 per iteration.
    pub fn work_ratio(&self, num_arcs: u64) -> Option<f64> {
        let edges = self.get(Counter::EdgesExamined);
        (edges > 0 && num_arcs > 0).then(|| edges as f64 / num_arcs as f64)
    }

    /// `(key, value)` pairs in ledger order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.into_iter().map(|c| (c, self.get(c)))
    }
}

/// Number of shards. More than any plausible thread count at reproduction
/// scale; threads hash round-robin onto shards, and two threads sharing a
/// shard is still correct (atomic adds), just marginally contended.
const SHARDS: usize = 64;

/// One shard: a cache-line-padded row of counter cells.
#[repr(align(128))]
#[derive(Debug)]
struct Shard {
    cells: [AtomicU64; Counter::COUNT],
}

impl Shard {
    const fn new() -> Self {
        // `AtomicU64::new(0)` is const, but arrays can't be built from a
        // non-Copy const fn result directly; splat via the const item.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Shard {
            cells: [ZERO; Counter::COUNT],
        }
    }
}

/// A sharded counter registry.
///
/// The global instance behind [`record`] is the one kernels write; tests
/// and embedders can also own private registries.
#[derive(Debug)]
pub struct Registry {
    shards: [Shard; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a zeroed registry.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const SHARD: Shard = Shard::new();
        Registry {
            shards: [SHARD; SHARDS],
        }
    }

    /// Adds `n` to `counter` in the calling thread's shard. Relaxed: the
    /// total is only read at aggregation points after joins.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if n == 0 {
            return;
        }
        self.shards[shard_index()].cells[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Sums every shard into one [`CounterSet`].
    pub fn aggregate(&self) -> CounterSet {
        let mut out = CounterSet::zero();
        for shard in &self.shards {
            for c in Counter::ALL {
                let v = shard.cells[c as usize].load(Ordering::Relaxed);
                out.set(c, out.get(c).wrapping_add(v));
            }
        }
        out
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for shard in &self.shards {
            for cell in &shard.cells {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The calling thread's shard slot, assigned round-robin on first use.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

static GLOBAL: Registry = Registry::new();

/// The global registry the instrumented kernels write into.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Records `n` units of `counter` against the global registry.
///
/// With the `enabled` feature off this is an empty inline function — the
/// instrumentation sites compile to the uninstrumented code.
#[cfg(feature = "enabled")]
#[inline]
pub fn record(counter: Counter, n: u64) {
    GLOBAL.add(counter, n);
}

/// Records `n` units of `counter` against the global registry (no-op: the
/// `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn record(counter: Counter, n: u64) {
    let _ = (counter, n);
}

/// Aggregated view of the global registry.
pub fn snapshot() -> CounterSet {
    GLOBAL.aggregate()
}

/// Zeroes the global registry.
pub fn reset() {
    GLOBAL.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("bogus"), None);
    }

    #[test]
    fn registry_aggregates_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let reg = &reg;
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.add(Counter::EdgesExamined, 3);
                    }
                    reg.add(Counter::WorklistSteals, t as u64);
                });
            }
        });
        let agg = reg.aggregate();
        assert_eq!(agg.get(Counter::EdgesExamined), 8 * 1000 * 3);
        assert_eq!(agg.get(Counter::WorklistSteals), (0..8).sum::<u64>());
        assert_eq!(agg.get(Counter::PrIterations), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::new();
        reg.add(Counter::FrontierPushes, 42);
        assert!(!reg.aggregate().is_zero());
        reg.reset();
        assert!(reg.aggregate().is_zero());
    }

    #[test]
    fn zero_adds_are_free_and_invisible() {
        let reg = Registry::new();
        reg.add(Counter::Iterations, 0);
        assert!(reg.aggregate().is_zero());
    }

    #[test]
    fn delta_subtracts_saturating() {
        let mut a = CounterSet::zero();
        a.set(Counter::EdgesExamined, 10);
        let mut b = CounterSet::zero();
        b.set(Counter::EdgesExamined, 4);
        b.set(Counter::Iterations, 2);
        assert_eq!(a.delta(&b).get(Counter::EdgesExamined), 6);
        assert_eq!(a.delta(&b).get(Counter::Iterations), 0, "saturates at zero");
    }

    #[test]
    fn derived_metrics() {
        let mut s = CounterSet::zero();
        assert_eq!(s.teps(1.0), None);
        s.set(Counter::EdgesExamined, 2_000);
        assert_eq!(s.teps(2.0), Some(1_000.0));
        assert_eq!(s.work_ratio(4_000), Some(0.5));
        assert_eq!(s.work_ratio(0), None);
    }
}
