//! Live metrics: log₂-bucketed histograms and a named-metric registry.
//!
//! The ledger and Chrome traces (PRs 1/3) are post-mortem artifacts; a
//! running daemon needs its latency distribution, queue depth, and pool
//! rates observable *while serving*. GAP's methodology (Beamer et al.)
//! reports full trial distributions rather than means — a live service
//! owes its operator the same: quantiles, not averages.
//!
//! The recording discipline matches [`crate::counters`]: per-thread
//! cache-line-padded shards of relaxed atomics, so the hot path is one
//! uncontended `fetch_add`. Unlike the work counters these are *always
//! on* — no feature gate — because the serving plane's lifecycle stats
//! must exist in Baseline builds too (same rule as `GateStats`). The
//! cost per record is a leading-zeros instruction plus one relaxed add.
//!
//! Buckets are log₂ of the recorded value: bucket `i` holds values in
//! `[2^(i-1), 2^i)` (bucket 0 holds 0). With microsecond latencies this
//! spans 1 µs to ~18 minutes in 31 buckets — coarse (each bucket is a
//! 2x band) but honest: a reported p99 is exact to within one power of
//! two, which is the right resolution for "is p99 1 ms or 100 ms?"
//! operator questions. `serve_bench` cross-checks these quantiles
//! against its exact sorted-vector percentiles within one bucket.

use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of log₂ buckets. Bucket 0 is the zero bucket; bucket `i`
/// (1-based) covers `[2^(i-1), 2^i)`; the last bucket is open-ended.
pub const BUCKETS: usize = 64;

/// Number of shards. Matches [`crate::counters`]: more than any
/// plausible thread count; two threads sharing a shard is still correct
/// (atomic adds), just marginally contended.
const SHARDS: usize = 64;

/// The bucket index a value lands in: 0 for 0, else `1 + floor(log2 v)`
/// clamped to the last bucket.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (0 for the zero bucket).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// One shard: a cache-line-padded row of bucket cells plus a sum cell.
#[repr(align(128))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of raw recorded values (for the mean; quantiles come from
    /// buckets). Wrapping on overflow — at µs resolution that is ~584k
    /// core-years of recorded latency.
    sum: AtomicU64,
}

impl HistShard {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistShard {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

/// A lock-free log₂ histogram.
///
/// `record` touches only the calling thread's shard; [`Histogram::snapshot`]
/// merges all shards into an immutable [`HistogramSnapshot`]. Snapshots
/// taken concurrently with recording are *per-bucket* consistent (each
/// bucket count is a real value some record produced) but may straddle
/// in-flight records — fine for monitoring, and the consistency the
/// stats lint asserts (`count == completed`) is only required at
/// quiescent points or under the engine's coherent-snapshot lock.
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const SHARD: HistShard = HistShard::new();
        Histogram {
            shards: [SHARD; SHARDS],
        }
    }

    /// Records one value into the calling thread's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges every shard into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (out, cell) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *out = out.wrapping_add(cell.load(Ordering::Relaxed));
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for shard in &self.shards {
            for cell in &shard.buckets {
                cell.store(0, Ordering::Relaxed);
            }
            shard.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable merged view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[bucket_lo(i), bucket_hi(i))`.
    pub buckets: [u64; BUCKETS],
    /// Total records.
    pub count: u64,
    /// Sum of raw recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The quantile `q` in `[0, 1]`, reported as the *inclusive lower
    /// bound* of the bucket holding the rank-`ceil(q·count)` value
    /// (nearest-rank on the bucketed distribution). `None` when empty.
    ///
    /// Lower-bound reporting keeps the estimate conservative and makes
    /// the oracle contract crisp: the true quantile `t` satisfies
    /// `quantile(q) <= t < 2·quantile(q)` (one log₂ bucket).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r with r >= q*count, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lo(i));
            }
        }
        // Unreachable: seen == count >= rank after the loop.
        Some(bucket_lo(BUCKETS - 1))
    }

    /// Mean of the raw recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges another snapshot into this one (for cross-shard or
    /// cross-histogram rollups).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// `(lo, hi, count)` for each non-empty bucket, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }

    /// Compact JSON for the stats snapshot: count/sum/p50..p999 plus the
    /// sparse bucket table (`le` = exclusive upper bound, cumulative
    /// counts, Prometheus-style).
    pub fn to_json(&self) -> Json {
        let mut cumulative = 0u64;
        let mut buckets = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            buckets.push(Json::obj([
                ("le".to_string(), Json::Num(bucket_hi(i) as f64)),
                ("count".to_string(), Json::Num(cumulative as f64)),
            ]));
        }
        let quant = |q: f64| Json::Num(self.quantile(q).unwrap_or(0) as f64);
        Json::obj([
            ("count".to_string(), Json::Num(self.count as f64)),
            ("sum".to_string(), Json::Num(self.sum as f64)),
            ("p50".to_string(), quant(0.50)),
            ("p90".to_string(), quant(0.90)),
            ("p99".to_string(), quant(0.99)),
            ("p999".to_string(), quant(0.999)),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }
}

/// The calling thread's shard slot, assigned round-robin on first use.
/// Separate counter from [`crate::counters`]' so the two modules don't
/// perturb each other's distribution, same scheme.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

/// A named instrument in a [`MetricsRegistry`].
#[derive(Debug)]
enum Instrument {
    /// Monotone counter.
    Counter(AtomicU64),
    /// Point-in-time signed value (queue depths, RSS bytes).
    Gauge(AtomicI64),
    /// Point-in-time float value (seconds, ratios), stored as f64 bits
    /// in an atomic word so set/get stay lock-free.
    FloatGauge(AtomicU64),
    /// Log₂ latency histogram.
    Histogram(Box<Histogram>),
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are registered once (typically at daemon startup) and then
/// looked up by the returned handle index — the hot path never touches
/// the name table. Snapshots render to the stats JSON and to Prometheus
/// text exposition with a caller-supplied name prefix.
///
/// Metric names must match `[a-z_][a-z0-9_]*`; label sets are encoded
/// into the name by the caller (e.g. `latency_us{kernel="bfs"}` is
/// registered via [`MetricsRegistry::histogram_with_labels`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: std::sync::Mutex<Vec<Entry>>,
}

#[derive(Debug)]
struct Entry {
    name: String,
    /// `key="value"` label pairs, already escaped, without braces.
    labels: String,
    help: String,
    instrument: std::sync::Arc<InstrumentCell>,
}

#[derive(Debug)]
struct InstrumentCell {
    inner: Instrument,
}

/// Handle to a registered counter.
#[derive(Debug, Clone)]
pub struct CounterHandle(std::sync::Arc<InstrumentCell>);

/// Handle to a registered gauge.
#[derive(Debug, Clone)]
pub struct GaugeHandle(std::sync::Arc<InstrumentCell>);

/// Handle to a registered float gauge.
#[derive(Debug, Clone)]
pub struct FloatGaugeHandle(std::sync::Arc<InstrumentCell>);

/// Handle to a registered histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(std::sync::Arc<InstrumentCell>);

impl CounterHandle {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Instrument::Counter(c) = &self.0.inner {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        match &self.0.inner {
            Instrument::Counter(c) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

impl GaugeHandle {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Instrument::Gauge(g) = &self.0.inner {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Instrument::Gauge(g) = &self.0.inner {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        match &self.0.inner {
            Instrument::Gauge(g) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

impl FloatGaugeHandle {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Instrument::FloatGauge(g) = &self.0.inner {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        match &self.0.inner {
            Instrument::FloatGauge(g) => f64::from_bits(g.load(Ordering::Relaxed)),
            _ => 0.0,
        }
    }
}

impl HistogramHandle {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Instrument::Histogram(h) = &self.0.inner {
            h.record(v);
        }
    }

    /// Merged snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0.inner {
            Instrument::Histogram(h) => h.snapshot(),
            _ => HistogramSnapshot::default(),
        }
    }
}

/// One metric's merged state in a registry snapshot.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Float gauge value.
    FloatGauge(f64),
    /// Histogram snapshot (boxed: 64 buckets dwarf the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A registry snapshot: `(name, labels, help, value)` per metric, in
/// registration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The entries.
    pub metrics: Vec<(String, String, String, MetricValue)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: String,
        help: &str,
        instrument: Instrument,
    ) -> std::sync::Arc<InstrumentCell> {
        let cell = std::sync::Arc::new(InstrumentCell { inner: instrument });
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            instrument: std::sync::Arc::clone(&cell),
        });
        cell
    }

    /// Registers a monotone counter.
    pub fn counter(&self, name: &str, help: &str) -> CounterHandle {
        CounterHandle(self.register(
            name,
            String::new(),
            help,
            Instrument::Counter(AtomicU64::new(0)),
        ))
    }

    /// Registers a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeHandle {
        GaugeHandle(self.register(
            name,
            String::new(),
            help,
            Instrument::Gauge(AtomicI64::new(0)),
        ))
    }

    /// Registers a float-valued gauge (Prometheus gauges are floats
    /// anyway; this one keeps fractional precision, e.g. seconds).
    pub fn float_gauge(&self, name: &str, help: &str) -> FloatGaugeHandle {
        FloatGaugeHandle(self.register(
            name,
            String::new(),
            help,
            Instrument::FloatGauge(AtomicU64::new(0f64.to_bits())),
        ))
    }

    /// Registers a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        HistogramHandle(self.register(
            name,
            String::new(),
            help,
            Instrument::Histogram(Box::default()),
        ))
    }

    /// Registers a histogram with a label set (`[("kernel", "bfs")]` →
    /// `name{kernel="bfs"}` in the exposition).
    pub fn histogram_with_labels(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> HistogramHandle {
        HistogramHandle(self.register(
            name,
            encode_labels(labels),
            help,
            Instrument::Histogram(Box::default()),
        ))
    }

    /// Registers a gauge with a label set.
    pub fn gauge_with_labels(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> GaugeHandle {
        GaugeHandle(self.register(
            name,
            encode_labels(labels),
            help,
            Instrument::Gauge(AtomicI64::new(0)),
        ))
    }

    /// Registers a counter with a label set.
    pub fn counter_with_labels(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> CounterHandle {
        CounterHandle(self.register(
            name,
            encode_labels(labels),
            help,
            Instrument::Counter(AtomicU64::new(0)),
        ))
    }

    /// Merges every metric into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let metrics = entries
            .iter()
            .map(|e| {
                let value = match &e.instrument.inner {
                    Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    Instrument::FloatGauge(g) => {
                        MetricValue::FloatGauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Instrument::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (e.name.clone(), e.labels.clone(), e.help.clone(), value)
            })
            .collect();
        MetricsSnapshot { metrics }
    }
}

fn encode_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsSnapshot {
    /// Renders Prometheus text exposition (version 0.0.4). Histograms
    /// render as native `_bucket`/`_sum`/`_count` series with `le`
    /// labels (exclusive log₂ upper bounds plus `+Inf`); `# HELP` and
    /// `# TYPE` lines are emitted once per metric family.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        let mut seen_families: Vec<String> = Vec::new();
        for (name, labels, help, value) in &self.metrics {
            let family = format!("{prefix}{name}");
            let ty = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) | MetricValue::FloatGauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if !seen_families.contains(&family) {
                out.push_str(&format!("# HELP {family} {}\n", escape_help(help)));
                out.push_str(&format!("# TYPE {family} {ty}\n"));
                seen_families.push(family.clone());
            }
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{family}{} {v}\n", braced(labels)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{family}{} {v}\n", braced(labels)));
                }
                MetricValue::FloatGauge(v) => {
                    // Non-finite values are not representable in the
                    // exposition format's sample grammar; clamp to 0.
                    let v = if v.is_finite() { *v } else { 0.0 };
                    out.push_str(&format!("{family}{} {v}\n", braced(labels)));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_hi(i);
                        let le_labels = join_labels(labels, &format!("le=\"{le}\""));
                        out.push_str(&format!("{family}_bucket{{{le_labels}}} {cumulative}\n"));
                    }
                    let inf_labels = join_labels(labels, "le=\"+Inf\"");
                    out.push_str(&format!("{family}_bucket{{{inf_labels}}} {}\n", h.count));
                    out.push_str(&format!("{family}_sum{} {}\n", braced(labels), h.sum));
                    out.push_str(&format!("{family}_count{} {}\n", braced(labels), h.count));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by metric name (a
    /// `name{labels}` key when labels are present).
    pub fn to_json(&self) -> Json {
        Json::obj(self.metrics.iter().map(|(name, labels, _, value)| {
            let key = if labels.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{labels}}}")
            };
            let v = match value {
                MetricValue::Counter(c) => Json::Num(*c as f64),
                MetricValue::Gauge(g) => Json::Num(*g as f64),
                MetricValue::FloatGauge(g) => Json::Num(if g.is_finite() { *g } else { 0.0 }),
                MetricValue::Histogram(h) => h.to_json(),
            };
            (key, v)
        }))
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS - 1 {
            // Every bucket's own bounds map back into it.
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i) - 1), i, "hi-1 of bucket {i}");
            // Adjacent buckets share a boundary.
            assert_eq!(bucket_hi(i), bucket_lo(i + 1).max(1));
        }
    }

    #[test]
    fn known_values_land_in_exact_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.sum, 1026);
        assert_eq!(s.buckets[0], 1, "one zero");
        assert_eq!(s.buckets[1], 2, "two ones");
        assert_eq!(s.buckets[2], 2, "2 and 3");
        assert_eq!(s.buckets[3], 2, "4 and 7");
        assert_eq!(s.buckets[4], 1, "8");
        assert_eq!(s.buckets[10], 1, "1000 in [512, 1024)");
    }

    #[test]
    fn quantiles_are_bucket_lower_bounds_and_monotone() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True p50 is 500 → bucket [256,512) → lower bound 256.
        assert_eq!(s.quantile(0.5), Some(256));
        // True p99 is 990 → bucket [512,1024) → lower bound 512.
        assert_eq!(s.quantile(0.99), Some(512));
        // Monotone in q.
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
        // Lower-bound contract: q <= true < 2*q for the bucketed value.
        assert!(s.quantile(0.5).unwrap() <= 500 && 500 < 2 * s.quantile(0.5).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn concurrent_recording_merges_exactly() {
        // Satellite: N threads recording known value sets yields exact
        // bucket counts and monotone quantiles.
        let h = Histogram::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic mixed magnitudes: every thread
                        // records the same multiset.
                        h.record((i % 17) * (i % 17) + t - t);
                        h.record(1u64 << (i % 20));
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD * 2);
        // Oracle: replay the same multiset serially.
        let oracle = Histogram::new();
        for _ in 0..THREADS {
            for i in 0..PER_THREAD {
                oracle.record((i % 17) * (i % 17));
                oracle.record(1u64 << (i % 20));
            }
        }
        let o = oracle.snapshot();
        assert_eq!(s.buckets, o.buckets, "bucket counts must merge exactly");
        assert_eq!(s.sum, o.sum);
        let mut last = 0;
        for q in 0..=100 {
            let v = s.quantile(q as f64 / 100.0).unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1, 5, 9, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [2, 5, 1000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn registry_snapshot_and_prometheus_exposition() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("queries_total", "Total queries");
        let g = reg.gauge("active", "Active queries");
        let h = reg.histogram_with_labels("latency_us", &[("kernel", "bfs")], "Latency");
        c.add(3);
        g.set(2);
        h.record(100);
        h.record(5000);

        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 3);

        let text = snap.to_prometheus("gapbs_serve_");
        assert!(text.contains("# TYPE gapbs_serve_queries_total counter"));
        assert!(text.contains("gapbs_serve_queries_total 3"));
        assert!(text.contains("# TYPE gapbs_serve_active gauge"));
        assert!(text.contains("gapbs_serve_active 2"));
        assert!(text.contains("# TYPE gapbs_serve_latency_us histogram"));
        assert!(text.contains("gapbs_serve_latency_us_bucket{kernel=\"bfs\",le=\"128\"} 1"));
        assert!(text.contains("gapbs_serve_latency_us_bucket{kernel=\"bfs\",le=\"+Inf\"} 2"));
        assert!(text.contains("gapbs_serve_latency_us_sum{kernel=\"bfs\"} 5100"));
        assert!(text.contains("gapbs_serve_latency_us_count{kernel=\"bfs\"} 2"));
        // Every non-comment line is `name{...} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name_part.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value {value:?}"
            );
        }

        let json = snap.to_json();
        assert_eq!(json.get("queries_total").and_then(Json::as_u64), Some(3));
        let hist = json.get("latency_us{kernel=\"bfs\"}").expect("hist key");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn float_gauge_round_trips_through_both_renderings() {
        let reg = MetricsRegistry::new();
        let g = reg.float_gauge("time_to_ready_seconds", "Startup load time");
        assert_eq!(g.get(), 0.0, "registers at zero");
        g.set(1.75);
        assert_eq!(g.get(), 1.75);

        let snap = reg.snapshot();
        let text = snap.to_prometheus("gapbs_serve_");
        assert!(text.contains("# TYPE gapbs_serve_time_to_ready_seconds gauge"));
        assert!(text.contains("gapbs_serve_time_to_ready_seconds 1.75"));
        let json = snap.to_json();
        assert_eq!(
            json.get("time_to_ready_seconds").and_then(Json::as_f64),
            Some(1.75)
        );

        // Non-finite values degrade to 0 rather than breaking the
        // exposition grammar.
        g.set(f64::NAN);
        let text = reg.snapshot().to_prometheus("x_");
        assert!(text.contains("x_time_to_ready_seconds 0\n"), "{text}");
    }

    #[test]
    fn same_family_two_label_sets_emits_one_header() {
        let reg = MetricsRegistry::new();
        reg.histogram_with_labels("latency_us", &[("kernel", "bfs")], "Latency")
            .record(1);
        reg.histogram_with_labels("latency_us", &[("kernel", "pr")], "Latency")
            .record(2);
        let text = reg.snapshot().to_prometheus("x_");
        assert_eq!(text.matches("# TYPE x_latency_us histogram").count(), 1);
        assert!(text.contains("kernel=\"bfs\""));
        assert!(text.contains("kernel=\"pr\""));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            encode_labels(&[("g", "a\"b\\c\nd")]),
            "g=\"a\\\"b\\\\c\\nd\""
        );
    }
}
