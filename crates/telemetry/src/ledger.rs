//! The JSON-lines run ledger.
//!
//! One line per trial: kernel, graph, framework, mode, trial index, the
//! timed seconds, the phase breakdown, the work counters, and the git
//! revision that produced the run. Ledgers accumulate under `results/`
//! and form the repo's machine-checkable perf trajectory: `perf_compare`
//! diffs two of them and gates regressions.
//!
//! Pollard & Norris (arXiv:1704.02003) argue cross-framework numbers are
//! only trustworthy with a reproducible measurement methodology; a ledger
//! line is exactly the record needed to re-derive any Table IV/V cell.

use crate::counters::{Counter, CounterSet};
use crate::json::Json;
use crate::span::{Phase, PhaseTimes};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Ledger schema version; bump on breaking field changes.
pub const SCHEMA_VERSION: u64 = 1;

/// One trial's record — one JSONL line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrialRecord {
    /// Framework display name ("GAP", "Galois", ...).
    pub framework: String,
    /// Kernel short name ("bfs", "sssp", "pr", "cc", "bc", "tc").
    pub kernel: String,
    /// Graph name ("Web", "Twitter", "Road", "Kron", "Urand").
    pub graph: String,
    /// Rule set ("Baseline" / "Optimized").
    pub mode: String,
    /// Trial index within the cell.
    pub trial: u64,
    /// The timed kernel seconds (what Table IV aggregates).
    pub seconds: f64,
    /// Graph-construction seconds accrued during this trial's window
    /// (the `Phase::Build` delta, promoted to a top-level field so
    /// build-time trajectories diff without digging into `phases`).
    /// Build runs once per cell, so this lands on trial 0.
    pub build_seconds: f64,
    /// Relabeling seconds accrued during this trial (the `Phase::Relabel`
    /// delta — the paper's rules time relabeling, so it is tracked
    /// per-trial, always on).
    pub relabel_seconds: f64,
    /// Whether this trial's output verified.
    pub verified: bool,
    /// Worker threads used.
    pub threads: u64,
    /// Vertices of the input graph.
    pub num_vertices: u64,
    /// Arcs of the input graph (`m` for work-efficiency ratios).
    pub num_arcs: u64,
    /// Work counters captured for this trial.
    pub counters: CounterSet,
    /// Per-phase seconds accrued during this trial (build on trial 0).
    pub phases: PhaseTimes,
    /// Peak resident set size of the process when the trial finished
    /// (VmHWM from `/proc/self/status`, in bytes). Always recorded — it
    /// needs no feature flag — and 0 where procfs is unavailable. This is
    /// a process-lifetime high-water mark, not a per-trial delta: compare
    /// it across ledgers cell by cell, as `perf_compare` does.
    pub peak_rss_bytes: u64,
    /// Bytes of the CSR arrays (offsets + targets + weights, both
    /// directions) of the graph this trial ran on. Tracks the offset
    /// width: the compact `u32` layout roughly halves this against the
    /// `usize` form. 0 when the producer predates the field.
    pub graph_bytes: u64,
    /// Git revision of the producing build ("unknown" outside a repo).
    pub git_rev: String,
}

impl TrialRecord {
    /// Encodes the record as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let counters = Json::obj(
            self.counters
                .iter()
                .map(|(c, v)| (c.name().to_string(), Json::Num(v as f64))),
        );
        let phases = Json::obj(
            self.phases
                .iter()
                .map(|(p, s)| (p.name().to_string(), Json::Num(s))),
        );
        let mut fields = vec![
            ("v".to_string(), Json::Num(SCHEMA_VERSION as f64)),
            ("framework".to_string(), Json::Str(self.framework.clone())),
            ("kernel".to_string(), Json::Str(self.kernel.clone())),
            ("graph".to_string(), Json::Str(self.graph.clone())),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("trial".to_string(), Json::Num(self.trial as f64)),
            ("seconds".to_string(), Json::Num(self.seconds)),
            ("build_seconds".to_string(), Json::Num(self.build_seconds)),
            (
                "relabel_seconds".to_string(),
                Json::Num(self.relabel_seconds),
            ),
            ("verified".to_string(), Json::Bool(self.verified)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
            ("n".to_string(), Json::Num(self.num_vertices as f64)),
            ("m".to_string(), Json::Num(self.num_arcs as f64)),
            ("counters".to_string(), counters),
            ("phases".to_string(), phases),
            (
                "peak_rss_bytes".to_string(),
                Json::Num(self.peak_rss_bytes as f64),
            ),
            (
                "graph_bytes".to_string(),
                Json::Num(self.graph_bytes as f64),
            ),
            ("git_rev".to_string(), Json::Str(self.git_rev.clone())),
        ];
        if let Some(teps) = self.counters.teps(self.seconds) {
            fields.push(("teps".to_string(), Json::Num(teps)));
        }
        if let Some(ratio) = self.counters.work_ratio(self.num_arcs) {
            fields.push(("work_ratio".to_string(), Json::Num(ratio)));
        }
        Json::obj(fields).encode()
    }

    /// Parses one JSONL line back into a record.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or missing required fields.
    pub fn from_json_line(line: &str) -> Result<TrialRecord, String> {
        let v = Json::parse(line)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let mut counters = CounterSet::zero();
        if let Some(Json::Obj(map)) = v.get("counters") {
            for (key, value) in map {
                if let (Some(c), Some(n)) = (Counter::from_name(key), value.as_u64()) {
                    counters.set(c, n);
                }
            }
        }
        let mut phases = PhaseTimes::zero();
        if let Some(Json::Obj(map)) = v.get("phases") {
            for (key, value) in map {
                if let (Some(p), Some(s)) = (Phase::from_name(key), value.as_f64()) {
                    phases.set(p, s);
                }
            }
        }
        // Pre-existing ledgers carry the build/relabel phase times only
        // inside `phases`; fall back there so old baselines still diff.
        let phase_fallback = |key: &str, phase: Phase| {
            v.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| phases.get(phase))
        };
        Ok(TrialRecord {
            framework: str_field("framework")?,
            kernel: str_field("kernel")?,
            graph: str_field("graph")?,
            mode: str_field("mode")?,
            trial: u64_field("trial")?,
            seconds: v
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or("missing number field \"seconds\"")?,
            build_seconds: phase_fallback("build_seconds", Phase::Build),
            relabel_seconds: phase_fallback("relabel_seconds", Phase::Relabel),
            verified: v.get("verified").and_then(Json::as_bool).unwrap_or(true),
            threads: u64_field("threads").unwrap_or(1),
            num_vertices: u64_field("n").unwrap_or(0),
            num_arcs: u64_field("m").unwrap_or(0),
            counters,
            phases,
            // Absent in schema-v1 ledgers written before the field existed.
            peak_rss_bytes: u64_field("peak_rss_bytes").unwrap_or(0),
            graph_bytes: u64_field("graph_bytes").unwrap_or(0),
            git_rev: str_field("git_rev").unwrap_or_else(|_| "unknown".into()),
        })
    }

    /// The grouping key `perf_compare` diffs on.
    pub fn cell_key(&self) -> (String, String, String, String) {
        (
            self.framework.clone(),
            self.kernel.clone(),
            self.graph.clone(),
            self.mode.clone(),
        )
    }
}

/// An append-only JSONL ledger file.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    git_rev: String,
}

impl Ledger {
    /// Opens (creating directories as needed) a ledger at `path`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Ledger> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(Ledger {
            path,
            git_rev: detect_git_rev(),
        })
    }

    /// The ledger file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The git revision stamped onto appended records.
    pub fn git_rev(&self) -> &str {
        &self.git_rev
    }

    /// Appends one record as a JSONL line, filling in the git revision.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        let mut record = record.clone();
        if record.git_rev.is_empty() || record.git_rev == "unknown" {
            record.git_rev = self.git_rev.clone();
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", record.to_json_line())
    }

    /// Reads every well-formed record from a ledger file, skipping blank
    /// lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and the first parse failure.
    pub fn read(path: impl AsRef<Path>) -> Result<Vec<TrialRecord>, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        text.lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(i, line)| {
                TrialRecord::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))
            })
            .collect()
    }
}

/// A long-lived, buffered JSONL ledger writer for high-rate appenders.
///
/// [`Ledger`] reopens the file on every append — the right durability
/// trade for a benchmark that writes tens of records. A serving daemon
/// writes one record per query, so this sink keeps the file open behind
/// a mutex-guarded `BufWriter` and exposes an explicit [`LedgerSink::flush`]
/// for graceful shutdown. Records buffered but not flushed are lost on
/// abrupt exit — which is exactly why the daemon drains and flushes
/// before exiting.
#[derive(Debug)]
pub struct LedgerSink {
    path: PathBuf,
    git_rev: String,
    writer: std::sync::Mutex<std::io::BufWriter<std::fs::File>>,
    appended: std::sync::atomic::AtomicU64,
}

impl LedgerSink {
    /// Opens (creating directories as needed) a buffered sink appending
    /// to the ledger at `path`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and open failures.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<LedgerSink> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(LedgerSink {
            path,
            git_rev: detect_git_rev(),
            writer: std::sync::Mutex::new(std::io::BufWriter::new(file)),
            appended: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The ledger file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this sink so far (flushed or not).
    pub fn appended(&self) -> u64 {
        self.appended.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Appends one record as a JSONL line, filling in the git revision.
    /// The line lands in the buffer; call [`LedgerSink::flush`] to push
    /// it to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        let mut record = record.clone();
        if record.git_rev.is_empty() || record.git_rev == "unknown" {
            record.git_rev = self.git_rev.clone();
        }
        let line = record.to_json_line();
        let mut writer = self.writer.lock().expect("ledger sink poisoned");
        writeln!(writer, "{line}")?;
        self.appended
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Flushes buffered records to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("ledger sink poisoned").flush()
    }
}

/// Resolves the current git revision by reading `.git/HEAD` (walking up
/// from the working directory), avoiding a subprocess in the runner.
pub fn detect_git_rev() -> String {
    let mut dir = match std::env::current_dir() {
        Ok(d) => d,
        Err(_) => return "unknown".into(),
    };
    loop {
        let head_path = dir.join(".git/HEAD");
        if let Ok(head) = std::fs::read_to_string(&head_path) {
            let head = head.trim();
            if let Some(reference) = head.strip_prefix("ref: ") {
                if let Ok(rev) = std::fs::read_to_string(dir.join(".git").join(reference)) {
                    return short_rev(rev.trim());
                }
                // Packed refs: scan .git/packed-refs for the ref.
                if let Ok(packed) = std::fs::read_to_string(dir.join(".git/packed-refs")) {
                    for line in packed.lines() {
                        if let Some((rev, name)) = line.split_once(' ') {
                            if name == reference {
                                return short_rev(rev);
                            }
                        }
                    }
                }
                return "unknown".into();
            }
            return short_rev(head);
        }
        if !dir.pop() {
            return "unknown".into();
        }
    }
}

fn short_rev(rev: &str) -> String {
    rev.chars().take(12).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrialRecord {
        let mut counters = CounterSet::zero();
        counters.set(Counter::EdgesExamined, 1234);
        counters.set(Counter::Iterations, 7);
        let mut phases = PhaseTimes::zero();
        phases.set(Phase::Build, 2.0);
        phases.set(Phase::Relabel, 0.75);
        phases.set(Phase::Kernel, 0.125);
        phases.set(Phase::Verify, 0.5);
        TrialRecord {
            framework: "GAP".into(),
            kernel: "bfs".into(),
            graph: "Road".into(),
            mode: "Baseline".into(),
            trial: 2,
            seconds: 0.125,
            build_seconds: 2.0,
            relabel_seconds: 0.75,
            verified: true,
            threads: 4,
            num_vertices: 1000,
            num_arcs: 4000,
            counters,
            phases,
            peak_rss_bytes: 64 * 1024 * 1024,
            graph_bytes: 5 * 1024 * 1024,
            git_rev: "abc123def456".into(),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample();
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "must be a single line");
        let back = TrialRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn derived_metrics_are_emitted() {
        let line = sample().to_json_line();
        let v = Json::parse(&line).unwrap();
        let teps = v.get("teps").and_then(Json::as_f64).unwrap();
        assert!((teps - 1234.0 / 0.125).abs() < 1e-6);
        let ratio = v.get("work_ratio").and_then(Json::as_f64).unwrap();
        assert!((ratio - 1234.0 / 4000.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_appends_and_reads_back() {
        let dir = std::env::temp_dir().join(format!(
            "gapbs-ledger-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let ledger = Ledger::open(&path).unwrap();
        let mut a = sample();
        a.git_rev = "unknown".into(); // exercise auto-stamping
        let b = sample();
        ledger.append(&a).unwrap();
        ledger.append(&b).unwrap();
        let records = Ledger::read(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], b);
        assert_eq!(records[0].git_rev, ledger.git_rev(), "rev was stamped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_buffers_until_flush_and_stamps_revs() {
        let dir = std::env::temp_dir().join(format!(
            "gapbs-sink-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("sink.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = LedgerSink::open(&path).unwrap();
        let mut a = sample();
        a.git_rev = "unknown".into();
        sink.append(&a).unwrap();
        sink.append(&sample()).unwrap();
        assert_eq!(sink.appended(), 2);
        sink.flush().unwrap();
        let records = Ledger::read(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].git_rev, sink.git_rev, "rev was stamped");
        assert_eq!(records[1], sample());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_counter_keys_are_ignored_not_fatal() {
        let mut line = sample().to_json_line();
        line = line.replace("\"counters\":{", "\"counters\":{\"future_counter\":9,");
        let back = TrialRecord::from_json_line(&line).unwrap();
        assert_eq!(back.counters.get(Counter::EdgesExamined), 1234);
    }

    #[test]
    fn pre_rss_ledgers_parse_with_zero_peak() {
        let line = sample()
            .to_json_line()
            .replace("\"peak_rss_bytes\":67108864,", "");
        let back = TrialRecord::from_json_line(&line).unwrap();
        assert_eq!(back.peak_rss_bytes, 0);
    }

    #[test]
    fn pre_graph_bytes_ledgers_parse_with_zero() {
        let line = sample()
            .to_json_line()
            .replace("\"graph_bytes\":5242880,", "");
        assert!(!line.contains("graph_bytes"), "field really removed");
        let back = TrialRecord::from_json_line(&line).unwrap();
        assert_eq!(back.graph_bytes, 0);
    }

    #[test]
    fn pre_build_field_ledgers_fall_back_to_phases() {
        // Ledgers written before the promoted fields existed still carry
        // the same information inside `phases`.
        let line = sample()
            .to_json_line()
            .replace("\"build_seconds\":2,", "")
            .replace("\"relabel_seconds\":0.75,", "");
        assert!(!line.contains("build_seconds"), "field really removed");
        let back = TrialRecord::from_json_line(&line).unwrap();
        assert!((back.build_seconds - 2.0).abs() < 1e-12);
        assert!((back.relabel_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        assert!(TrialRecord::from_json_line("{nope").is_err());
        assert!(TrialRecord::from_json_line("{}").is_err(), "missing fields");
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The test runs inside the repository, so a real rev should be
        // found; outside a repo "unknown" is the contract.
        let rev = detect_git_rev();
        assert!(rev == "unknown" || rev.len() == 12, "rev = {rev:?}");
    }
}
