//! A dependency-free JSON encoder and recursive-descent parser.
//!
//! The run ledger needs exactly one serialization format and the build
//! must work with no external crates, so this module implements the
//! subset of JSON the ledger uses: objects, arrays, strings (with escape
//! handling), finite numbers, booleans, and null. Numbers are kept as
//! `f64` — ledger counters fit in 2^53 at any reproduction scale.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so encoding
/// is deterministic — byte-identical ledgers diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// The value at `key` if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (ledger counters).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encodes to compact JSON text (no whitespace, sorted keys).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; ledger treats null as missing
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogates outside the BMP are not produced by the
                        // ledger encoder; map unpaired ones to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty by bounds check");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name".into(), Json::Str("BFS \"fast\"\n".into())),
            (
                "times".into(),
                Json::Arr(vec![Json::Num(0.5), Json::Num(3.0)]),
            ),
            (
                "inner".into(),
                Json::obj([("ok".into(), Json::Bool(true)), ("n".into(), Json::Null)]),
            ),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(1234567.0).encode(), "1234567");
        assert_eq!(Json::Num(0.25).encode(), "0.25");
    }

    #[test]
    fn keys_are_sorted_for_deterministic_diffs() {
        let v = Json::obj([
            ("zeta".into(), Json::Num(1.0)),
            ("alpha".into(), Json::Num(2.0)),
        ]);
        assert_eq!(v.encode(), "{\"alpha\":2,\"zeta\":1}");
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::Str("Erdős–Rényi\t\u{1}".into());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", ""] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
    }
}
