//! Execution tracing: per-iteration kernel timelines, per-worker pool
//! timelines, and a resource sampler, exported as Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The counters in [`crate::counters`] aggregate a trial into totals;
//! this module keeps the *sequence*. Three producers feed per-thread
//! event buffers:
//!
//! * **kernel iteration events** — one [`IterEvent`] per bulk-synchronous
//!   round (BFS level with frontier size and push/pull choice, PR sweep
//!   with residual, SSSP bucket drain, CC hook round), emitted by the
//!   framework crates through [`trace_iter!`](crate::trace_iter);
//! * **pool worker events** — one complete event per worker per parallel
//!   region plus steal instants, emitted by `gapbs-parallel`;
//! * **resource samples** — VmRSS/VmHWM read from `/proc/self/status` by
//!   a sampler thread at a fixed cadence.
//!
//! # Feature gating
//!
//! Like the counters, the hot-path emitters compile to nothing without
//! the `enabled` cargo feature: [`is_on`] is then a compile-time `false`
//! and every `trace_iter!` / pool call site folds away. The session
//! machinery itself (start/stop, the sampler, [`read_vm_status`]) is
//! always compiled — a non-telemetry build still traces trial spans and
//! memory samples, just not per-iteration detail.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Records one kernel iteration event on the calling thread's lane:
///
/// ```
/// use gapbs_telemetry::trace::Dir;
/// gapbs_telemetry::trace_iter!(BfsLevel { depth: 0, frontier: 1, dir: Dir::Push });
/// ```
///
/// Expands to a branch on [`trace::is_on`](crate::trace::is_on), so with
/// the `enabled` feature off the condition is compile-time `false` and
/// the argument expressions are never evaluated.
#[macro_export]
macro_rules! trace_iter {
    ($variant:ident { $($body:tt)* }) => {
        if $crate::trace::is_on() {
            $crate::trace::iter($crate::trace::IterEvent::$variant { $($body)* });
        }
    };
}
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Traversal direction of a BFS-like level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Top-down: frontier vertices scan their out-edges.
    Push,
    /// Bottom-up: unvisited vertices scan in-edges for frontier members.
    Pull,
}

impl Dir {
    /// Stable trace label.
    pub fn name(self) -> &'static str {
        match self {
            Dir::Push => "push",
            Dir::Pull => "pull",
        }
    }

    /// The direction implied by a `pull` flag (how the kernels track it).
    pub fn from_pull(pull: bool) -> Dir {
        if pull {
            Dir::Pull
        } else {
            Dir::Push
        }
    }
}

/// One kernel iteration: the per-round vocabulary of the §V narratives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IterEvent {
    /// One BFS level: its depth, frontier size, and direction.
    BfsLevel {
        /// 0-based level depth.
        depth: u32,
        /// Vertices in the frontier at this level.
        frontier: u64,
        /// Push (top-down) or pull (bottom-up).
        dir: Dir,
    },
    /// One delta-stepping bucket drain wave.
    SsspBucket {
        /// Bucket index being drained.
        bucket: u64,
        /// Vertices drained in this wave.
        size: u64,
    },
    /// One PageRank sweep.
    PrSweep {
        /// 1-based sweep number.
        sweep: u32,
        /// L1 residual after the sweep.
        residual: f64,
    },
    /// One connected-components hook/propagation round.
    CcRound {
        /// 0-based round number.
        round: u32,
        /// Labels changed this round (0 when the kernel doesn't count).
        changed: u64,
    },
    /// One BC forward level.
    BcLevel {
        /// 0-based level depth.
        depth: u32,
        /// Vertices in the frontier at this level.
        frontier: u64,
    },
}

impl IterEvent {
    /// Stable trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            IterEvent::BfsLevel { .. } => "bfs_level",
            IterEvent::SsspBucket { .. } => "sssp_bucket",
            IterEvent::PrSweep { .. } => "pr_sweep",
            IterEvent::CcRound { .. } => "cc_round",
            IterEvent::BcLevel { .. } => "bc_level",
        }
    }

    fn args(&self) -> Json {
        match *self {
            IterEvent::BfsLevel {
                depth,
                frontier,
                dir,
            } => Json::obj([
                ("depth".into(), Json::Num(depth as f64)),
                ("frontier".into(), Json::Num(frontier as f64)),
                ("dir".into(), Json::Str(dir.name().into())),
            ]),
            IterEvent::SsspBucket { bucket, size } => Json::obj([
                ("bucket".into(), Json::Num(bucket as f64)),
                ("size".into(), Json::Num(size as f64)),
            ]),
            IterEvent::PrSweep { sweep, residual } => Json::obj([
                ("sweep".into(), Json::Num(sweep as f64)),
                ("residual".into(), Json::Num(residual)),
            ]),
            IterEvent::CcRound { round, changed } => Json::obj([
                ("round".into(), Json::Num(round as f64)),
                ("changed".into(), Json::Num(changed as f64)),
            ]),
            IterEvent::BcLevel { depth, frontier } => Json::obj([
                ("depth".into(), Json::Num(depth as f64)),
                ("frontier".into(), Json::Num(frontier as f64)),
            ]),
        }
    }
}

/// What one trace event records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A kernel iteration instant.
    Iter(IterEvent),
    /// One worker's participation in one pool region (duration event).
    Region {
        /// Pool worker id (0 = the leader thread).
        worker: u32,
        /// Region sequence number within the pool.
        region: u64,
    },
    /// Ranges stolen by a worker while draining a loop region.
    Steal {
        /// Pool worker id.
        worker: u32,
        /// Ranges stolen.
        ranges: u64,
    },
    /// One resource-sampler reading (counter event).
    Rss {
        /// Current resident set size in bytes.
        vm_rss_bytes: u64,
        /// Peak resident set size (high-water mark) in bytes.
        vm_hwm_bytes: u64,
    },
    /// One timed trial, labelled `framework kernel graph mode #trial`
    /// (duration event emitted by the runner).
    Trial {
        /// Human-readable trial label.
        label: String,
    },
    /// One stage of the parallel graph-build pipeline (duration event
    /// emitted once per stage by the builder — cold path).
    BuildStage {
        /// Stage name (`count`, `scan`, `scatter`, `sort_dedup`, ...).
        stage: &'static str,
    },
    /// One GraphBLAS operation on the grb engine (duration event emitted
    /// per `vxm`/`mxv`/... call, so Perfetto timelines show where each
    /// LAGraph kernel spends its time).
    GrbOp {
        /// Operation name (`vxm`, `mxv`, `mxm`, `reduce`, ...).
        op: &'static str,
    },
}

/// One buffered trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 for instant/counter events.
    pub dur_ns: u64,
    /// Trace lane (one per OS thread; the Chrome `tid`).
    pub lane: u32,
    /// Payload.
    pub kind: EventKind,
}

/// A finished trace: every event drained from every lane, time-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by `(ts_ns, lane)`.
    pub events: Vec<Event>,
    /// `(lane, thread name)` pairs for every lane that emitted.
    pub lanes: Vec<(u32, String)>,
}

impl Trace {
    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encodes the trace as a Chrome trace-event JSON array (the format
    /// Perfetto and `chrome://tracing` load directly). Thread-name
    /// metadata events come first; real events follow in time order.
    pub fn to_chrome_json(&self) -> Json {
        let pid = std::process::id() as f64;
        let mut out = Vec::with_capacity(self.events.len() + self.lanes.len());
        for (lane, name) in &self.lanes {
            out.push(Json::obj([
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("ts".into(), Json::Num(0.0)),
                ("pid".into(), Json::Num(pid)),
                ("tid".into(), Json::Num(*lane as f64)),
                (
                    "args".into(),
                    Json::obj([("name".into(), Json::Str(name.clone()))]),
                ),
            ]));
        }
        for e in &self.events {
            let mut fields = vec![
                ("ts".into(), Json::Num(e.ts_ns as f64 / 1_000.0)),
                ("pid".into(), Json::Num(pid)),
                ("tid".into(), Json::Num(e.lane as f64)),
            ];
            match &e.kind {
                EventKind::Iter(ev) => {
                    fields.push(("name".into(), Json::Str(ev.name().into())));
                    fields.push(("cat".into(), Json::Str("iter".into())));
                    fields.push(("ph".into(), Json::Str("i".into())));
                    fields.push(("s".into(), Json::Str("t".into())));
                    fields.push(("args".into(), ev.args()));
                }
                EventKind::Region { worker, region } => {
                    fields.push(("name".into(), Json::Str("region".into())));
                    fields.push(("cat".into(), Json::Str("pool".into())));
                    fields.push(("ph".into(), Json::Str("X".into())));
                    fields.push(("dur".into(), Json::Num(e.dur_ns as f64 / 1_000.0)));
                    fields.push((
                        "args".into(),
                        Json::obj([
                            ("worker".into(), Json::Num(*worker as f64)),
                            ("region".into(), Json::Num(*region as f64)),
                        ]),
                    ));
                }
                EventKind::Steal { worker, ranges } => {
                    fields.push(("name".into(), Json::Str("steal".into())));
                    fields.push(("cat".into(), Json::Str("pool".into())));
                    fields.push(("ph".into(), Json::Str("i".into())));
                    fields.push(("s".into(), Json::Str("t".into())));
                    fields.push((
                        "args".into(),
                        Json::obj([
                            ("worker".into(), Json::Num(*worker as f64)),
                            ("ranges".into(), Json::Num(*ranges as f64)),
                        ]),
                    ));
                }
                EventKind::Rss {
                    vm_rss_bytes,
                    vm_hwm_bytes,
                } => {
                    fields.push(("name".into(), Json::Str("rss".into())));
                    fields.push(("cat".into(), Json::Str("rss".into())));
                    fields.push(("ph".into(), Json::Str("C".into())));
                    fields.push((
                        "args".into(),
                        Json::obj([
                            ("vm_rss_bytes".into(), Json::Num(*vm_rss_bytes as f64)),
                            ("vm_hwm_bytes".into(), Json::Num(*vm_hwm_bytes as f64)),
                        ]),
                    ));
                }
                EventKind::Trial { label } => {
                    fields.push(("name".into(), Json::Str(label.clone())));
                    fields.push(("cat".into(), Json::Str("trial".into())));
                    fields.push(("ph".into(), Json::Str("X".into())));
                    fields.push(("dur".into(), Json::Num(e.dur_ns as f64 / 1_000.0)));
                }
                EventKind::BuildStage { stage } => {
                    fields.push(("name".into(), Json::Str(format!("build:{stage}"))));
                    fields.push(("cat".into(), Json::Str("build".into())));
                    fields.push(("ph".into(), Json::Str("X".into())));
                    fields.push(("dur".into(), Json::Num(e.dur_ns as f64 / 1_000.0)));
                }
                EventKind::GrbOp { op } => {
                    fields.push(("name".into(), Json::Str(format!("grb:{op}"))));
                    fields.push(("cat".into(), Json::Str("grb".into())));
                    fields.push(("ph".into(), Json::Str("X".into())));
                    fields.push(("dur".into(), Json::Num(e.dur_ns as f64 / 1_000.0)));
                }
            }
            out.push(Json::obj(fields));
        }
        Json::Arr(out)
    }

    /// Writes the Chrome trace-event JSON to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_chrome_json().encode())
    }
}

/// VmRSS / VmHWM of the current process, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStatus {
    /// Current resident set size.
    pub vm_rss_bytes: u64,
    /// Peak resident set size (the kernel's high-water mark).
    pub vm_hwm_bytes: u64,
}

/// Reads VmRSS/VmHWM from `/proc/self/status`. `None` where procfs is
/// unavailable (non-Linux) or the fields are missing.
pub fn read_vm_status() -> Option<VmStatus> {
    parse_vm_status(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmRSS:`/`VmHWM:` lines of a `/proc/<pid>/status` dump.
fn parse_vm_status(text: &str) -> Option<VmStatus> {
    let field = |key: &str| -> Option<u64> {
        text.lines().find_map(|line| {
            let rest = line.strip_prefix(key)?;
            // "VmRSS:\t   1234 kB" — the value is always in kB.
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            Some(kb * 1024)
        })
    };
    Some(VmStatus {
        vm_rss_bytes: field("VmRSS:")?,
        vm_hwm_bytes: field("VmHWM:")?,
    })
}

// ---------------------------------------------------------------------
// Per-thread lanes and the global session.

/// One thread's event buffer, registered in [`LANES`] on first use. The
/// owning thread pushes under an uncontended lock; only the collector
/// ever contends for it (at [`stop`]).
#[derive(Debug, Clone)]
struct Lane {
    id: u32,
    name: String,
    events: Arc<Mutex<Vec<Event>>>,
}

static LANES: Mutex<Vec<Lane>> = Mutex::new(Vec::new());
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL_LANE: std::cell::OnceCell<Lane> = const { std::cell::OnceCell::new() };
}

fn with_lane<R>(f: impl FnOnce(&Lane) -> R) -> R {
    LOCAL_LANE.with(|cell| {
        let lane = cell.get_or_init(|| {
            let lane = Lane {
                id: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| "unnamed".into()),
                events: Arc::new(Mutex::new(Vec::new())),
            };
            lock(&LANES).push(lane.clone());
            lane
        });
        f(lane)
    })
}

fn push(kind: EventKind, ts_ns: u64, dur_ns: u64) {
    with_lane(|lane| {
        lock(&lane.events).push(Event {
            ts_ns,
            dur_ns,
            lane: lane.id,
            kind,
        });
    });
}

/// Nanoseconds since the trace epoch — the timestamp base every event
/// uses. Callers capture it before timed work to later report durations.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// `true` when the hot-path emitters should record: the `enabled`
/// feature is compiled in *and* a trace session is active. Without the
/// feature this is a compile-time `false` and guarded call sites fold
/// away entirely.
#[inline(always)]
pub fn is_on() -> bool {
    cfg!(feature = "enabled") && ACTIVE.load(Ordering::Relaxed)
}

/// `true` while a trace session is active, regardless of the `enabled`
/// feature — the guard for cold-path emitters (trial spans, samples).
#[inline]
pub fn session_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Records a kernel iteration event. Guard with [`is_on`] (or call
/// through [`trace_iter!`](crate::trace_iter), which does).
pub fn iter(event: IterEvent) {
    push(EventKind::Iter(event), now_ns(), 0);
}

/// Records one worker's participation in a pool region that began at
/// `start_ns` (from [`now_ns`]). Guard with [`is_on`].
pub fn region(worker: usize, region: u64, start_ns: u64) {
    let end = now_ns();
    push(
        EventKind::Region {
            worker: worker as u32,
            region,
        },
        start_ns,
        end.saturating_sub(start_ns),
    );
}

/// Records ranges stolen by a worker within a region. Guard with
/// [`is_on`].
pub fn steal(worker: usize, ranges: u64) {
    push(
        EventKind::Steal {
            worker: worker as u32,
            ranges,
        },
        now_ns(),
        0,
    );
}

/// Records one timed trial as a duration event (cold path: emitted once
/// per trial by the runner; records in any build while a session is
/// active).
pub fn trial(label: String, start_ns: u64) {
    if !session_active() {
        return;
    }
    let end = now_ns();
    push(
        EventKind::Trial { label },
        start_ns,
        end.saturating_sub(start_ns),
    );
}

/// Records one graph-build pipeline stage as a duration event (cold
/// path: a handful per build; records in any build while a session is
/// active).
pub fn build_stage(stage: &'static str, start_ns: u64) {
    if !session_active() {
        return;
    }
    let end = now_ns();
    push(
        EventKind::BuildStage { stage },
        start_ns,
        end.saturating_sub(start_ns),
    );
}

/// Records one GraphBLAS engine operation as a duration event. Callers
/// should gate the paired [`now_ns`] with [`is_on`] so untraced runs pay
/// nothing.
pub fn grb_op(op: &'static str, start_ns: u64) {
    if !session_active() {
        return;
    }
    let end = now_ns();
    push(
        EventKind::GrbOp { op },
        start_ns,
        end.saturating_sub(start_ns),
    );
}

/// The resource sampler thread handle, if one is running.
struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

static SAMPLER: Mutex<Option<Sampler>> = Mutex::new(None);

/// Starts a trace session: clears previously buffered events, arms the
/// emitters, and (for `sampler_cadence` > 0) spawns the resource sampler
/// thread reading `/proc/self/status` at that cadence.
///
/// Sessions don't nest; a second `start` resets the first.
pub fn start(sampler_cadence: Duration) {
    stop(); // reset any previous session (joins a live sampler)
    for lane in lock(&LANES).iter() {
        lock(&lane.events).clear();
    }
    ACTIVE.store(true, Ordering::Relaxed);
    if sampler_cadence > Duration::ZERO && read_vm_status().is_some() {
        let stop_flag = Arc::new(AtomicBool::new(false));
        let thread_flag = Arc::clone(&stop_flag);
        let handle = std::thread::Builder::new()
            .name("gapbs-rss-sampler".into())
            .spawn(move || {
                while !thread_flag.load(Ordering::Relaxed) {
                    if let Some(vm) = read_vm_status() {
                        push(
                            EventKind::Rss {
                                vm_rss_bytes: vm.vm_rss_bytes,
                                vm_hwm_bytes: vm.vm_hwm_bytes,
                            },
                            now_ns(),
                            0,
                        );
                    }
                    std::thread::sleep(sampler_cadence);
                }
            })
            .expect("spawn rss sampler");
        *lock(&SAMPLER) = Some(Sampler {
            stop: stop_flag,
            handle,
        });
    }
}

/// Ends the session and drains every lane into a time-sorted [`Trace`].
/// Returns an empty trace when no session was active.
pub fn stop() -> Trace {
    ACTIVE.store(false, Ordering::Relaxed);
    if let Some(sampler) = lock(&SAMPLER).take() {
        sampler.stop.store(true, Ordering::Relaxed);
        let _ = sampler.handle.join();
        // A closing sample, so even sessions shorter than one cadence
        // (or ones the OS never scheduled the sampler thread for) carry
        // at least one RSS reading.
        if let Some(vm) = read_vm_status() {
            push(
                EventKind::Rss {
                    vm_rss_bytes: vm.vm_rss_bytes,
                    vm_hwm_bytes: vm.vm_hwm_bytes,
                },
                now_ns(),
                0,
            );
        }
    }
    let mut events = Vec::new();
    let mut lanes = Vec::new();
    for lane in lock(&LANES).iter() {
        let mut drained = std::mem::take(&mut *lock(&lane.events));
        if !drained.is_empty() {
            lanes.push((lane.id, lane.name.clone()));
        }
        events.append(&mut drained);
    }
    events.sort_by_key(|e| (e.ts_ns, e.lane));
    lanes.sort();
    Trace { events, lanes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace sessions are global; tests that run one serialize here.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn vm_status_parses_proc_format() {
        let text = "Name:\tcat\nVmRSS:\t    1234 kB\nVmHWM:\t    2048 kB\n";
        let vm = parse_vm_status(text).unwrap();
        assert_eq!(vm.vm_rss_bytes, 1234 * 1024);
        assert_eq!(vm.vm_hwm_bytes, 2048 * 1024);
        assert_eq!(parse_vm_status("Name:\tcat\n"), None);
    }

    #[test]
    fn vm_status_reads_on_linux() {
        // On Linux procfs must parse; elsewhere None is the contract.
        if cfg!(target_os = "linux") {
            let vm = read_vm_status().expect("VmRSS/VmHWM in /proc/self/status");
            assert!(vm.vm_rss_bytes > 0);
            assert!(vm.vm_hwm_bytes >= vm.vm_rss_bytes / 2);
        }
    }

    #[test]
    fn dir_and_event_names_are_stable() {
        assert_eq!(Dir::from_pull(true).name(), "pull");
        assert_eq!(Dir::from_pull(false).name(), "push");
        let ev = IterEvent::BfsLevel {
            depth: 1,
            frontier: 2,
            dir: Dir::Push,
        };
        assert_eq!(ev.name(), "bfs_level");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn session_collects_events_across_threads() {
        let _guard = lock(&SESSION_LOCK);
        start(Duration::ZERO);
        assert!(is_on());
        iter(IterEvent::PrSweep {
            sweep: 1,
            residual: 0.5,
        });
        let t0 = now_ns();
        std::thread::spawn(move || {
            region(1, 7, t0);
            steal(1, 3);
        })
        .join()
        .unwrap();
        trial("GAP bfs Kron Baseline #0".into(), t0);
        let trace = stop();
        assert!(!is_on());
        assert_eq!(trace.events.len(), 4);
        assert!(trace.lanes.len() >= 2, "main + spawned thread lanes");
        // Sorted by timestamp.
        assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // A fresh session starts clean.
        start(Duration::ZERO);
        assert!(stop().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn sampler_emits_rss_counter_events() {
        if read_vm_status().is_none() {
            return; // no procfs on this host
        }
        let _guard = lock(&SESSION_LOCK);
        start(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(30));
        let trace = stop();
        let samples = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Rss { .. }))
            .count();
        assert!(samples >= 1, "sampler produced no Rss events");
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn hot_path_is_off_without_the_feature() {
        assert!(!is_on());
        // The macro's guard means this records nothing even mid-session.
        let _guard = lock(&SESSION_LOCK);
        start(Duration::ZERO);
        crate::trace_iter!(BfsLevel {
            depth: 0,
            frontier: 1,
            dir: Dir::Push
        });
        let trace = stop();
        assert!(
            !trace
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Iter(_))),
            "iteration events must not record without the feature"
        );
    }

    #[test]
    fn chrome_export_is_a_valid_trace_event_array() {
        // Synthetic trace, hand-built so the test is independent of the
        // global session machinery.
        let trace = Trace {
            events: vec![
                Event {
                    ts_ns: 1_000,
                    dur_ns: 500,
                    lane: 0,
                    kind: EventKind::Region {
                        worker: 0,
                        region: 1,
                    },
                },
                Event {
                    ts_ns: 1_200,
                    dur_ns: 0,
                    lane: 1,
                    kind: EventKind::Iter(IterEvent::BfsLevel {
                        depth: 2,
                        frontier: 37,
                        dir: Dir::Pull,
                    }),
                },
                Event {
                    ts_ns: 2_000,
                    dur_ns: 0,
                    lane: 1,
                    kind: EventKind::Rss {
                        vm_rss_bytes: 4096,
                        vm_hwm_bytes: 8192,
                    },
                },
                Event {
                    ts_ns: 3_000,
                    dur_ns: 2_000,
                    lane: 0,
                    kind: EventKind::Trial {
                        label: "GAP bfs Kron Baseline #0".into(),
                    },
                },
            ],
            lanes: vec![(0, "main".into()), (1, "gapbs-pool-1".into())],
        };
        let text = trace.to_chrome_json().encode();
        let parsed = Json::parse(&text).unwrap();
        let Json::Arr(items) = parsed else {
            panic!("chrome trace must be a JSON array");
        };
        assert_eq!(items.len(), 4 + 2, "4 events + 2 thread_name records");
        let mut last_ts_per_tid = std::collections::BTreeMap::new();
        for item in &items {
            for key in ["ph", "ts", "pid", "tid", "name"] {
                assert!(item.get(key).is_some(), "missing {key:?} in {item:?}");
            }
            let ph = item.get("ph").and_then(Json::as_str).unwrap();
            if ph == "M" {
                continue; // metadata events carry no timeline position
            }
            let tid = item.get("tid").and_then(Json::as_f64).unwrap() as u64;
            let ts = item.get("ts").and_then(Json::as_f64).unwrap();
            let last = last_ts_per_tid.entry(tid).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *last, "events out of order on tid {tid}");
            *last = ts;
            if ph == "X" {
                assert!(item.get("dur").and_then(Json::as_f64).unwrap() > 0.0);
            }
        }
        // The BFS level event carries its narrative args.
        let bfs = items
            .iter()
            .find(|i| i.get("name").and_then(Json::as_str) == Some("bfs_level"))
            .unwrap();
        assert_eq!(
            bfs.get("args")
                .and_then(|a| a.get("dir"))
                .and_then(Json::as_str),
            Some("pull")
        );
        assert_eq!(
            bfs.get("args")
                .and_then(|a| a.get("frontier"))
                .and_then(Json::as_u64),
            Some(37)
        );
    }

    #[test]
    fn write_chrome_file_creates_directories() {
        let dir = std::env::temp_dir().join(format!(
            "gapbs-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested/trace.json");
        let trace = Trace {
            events: vec![Event {
                ts_ns: 0,
                dur_ns: 0,
                lane: 0,
                kind: EventKind::Steal {
                    worker: 0,
                    ranges: 1,
                },
            }],
            lanes: vec![(0, "main".into())],
        };
        trace.write_chrome_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
