//! Execution telemetry for the GAPBS reproduction.
//!
//! The paper's §V narratives are claims about *work performed* — edges
//! examined, direction switches, bucket relaxations, iterations — but a
//! wall-clock-only harness can assert Table V ratios without explaining
//! them. This crate makes the work visible:
//!
//! * [`counters`] — a lock-free registry of per-thread relaxed-atomic
//!   cells over a fixed counter vocabulary, aggregated on demand;
//! * [`span`] — phase timers (`build`, `relabel`, `kernel`, `verify`)
//!   that expose restructuring cost per the GAP timing rules;
//! * [`ledger`] — the JSON-lines run ledger (`results/ledger.jsonl`):
//!   one record per trial with times, counters, and the git revision, the
//!   machine-checkable perf trajectory `perf_compare` diffs;
//! * [`json`] — the dependency-free JSON encoder/parser the ledger uses;
//! * [`metrics`] — always-on live metrics: lock-free log₂ latency
//!   histograms (p50/p90/p99/p999) and a named counter/gauge/histogram
//!   registry with Prometheus text exposition, for the serving daemon's
//!   scrapeable stats plane (`docs/OPERATIONS.md`).
//!
//! # Feature gating
//!
//! Instrumentation sites in the framework crates call [`record`]
//! unconditionally. With the `enabled` cargo feature off (the default)
//! that call is an empty `#[inline(always)]` function and the hot loops
//! compile to the uninstrumented code — Baseline timing claims are
//! unaffected. Each dependent crate forwards a `telemetry` feature here.

pub mod counters;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod span;
pub mod trace;

pub use counters::{record, snapshot, Counter, CounterSet, Registry};
pub use ledger::{Ledger, LedgerSink, TrialRecord};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{Phase, PhaseTimes, Span};
pub use trace::Trace;

/// `true` when the crate was compiled with global recording active.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Runs `f` with the global counter registry zeroed, returning its result
/// plus everything counted during the call.
///
/// Captures serialize on an internal lock so concurrent captures (e.g.
/// parallel test threads) don't attribute each other's work.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, CounterSet) {
    static CAPTURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    counters::reset();
    let result = f();
    (result, counters::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_matches_feature() {
        assert_eq!(is_enabled(), cfg!(feature = "enabled"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capture_scopes_global_counts() {
        let ((), counts) = capture(|| {
            record(Counter::EdgesExamined, 7);
            record(Counter::EdgesExamined, 5);
        });
        assert_eq!(counts.get(Counter::EdgesExamined), 12);
        let ((), empty) = capture(|| {});
        assert_eq!(empty.get(Counter::EdgesExamined), 0);
    }
}
