//! Phase span timers.
//!
//! GAP's timing rules (DESIGN.md §5) only time the kernel proper — graph
//! build, heuristic relabeling, and verification are untimed. These spans
//! make those *untimed* phases visible so restructuring cost can be
//! reported next to kernel time in the run ledger.
//!
//! Spans nest: a `Relabel` span opened inside a `Build` span accrues to
//! both (inclusive timing), matching how the phases physically nest in
//! the runner. Accrual happens at span close into relaxed atomics, so
//! guards are cheap and thread-safe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The timed phases of one benchmark cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Graph/matrix construction inside `prepare` (untimed by Table IV).
    Build,
    /// Heuristic-controlled relabeling/reordering (Table III footnote 2).
    Relabel,
    /// The kernel proper — what Table IV times.
    Kernel,
    /// Output verification against the sequential oracles.
    Verify,
}

impl Phase {
    /// Every phase, in ledger order.
    pub const ALL: [Phase; 4] = [Phase::Build, Phase::Relabel, Phase::Kernel, Phase::Verify];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable snake_case ledger key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Relabel => "relabel",
            Phase::Kernel => "kernel",
            Phase::Verify => "verify",
        }
    }

    /// Parses a ledger key back to the phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Aggregated per-phase wall time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    seconds: [f64; Phase::COUNT],
}

impl PhaseTimes {
    /// The all-zero table.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Accrued seconds of one phase.
    pub fn get(&self, p: Phase) -> f64 {
        self.seconds[p as usize]
    }

    /// Sets one phase's seconds (ledger parsing and tests).
    pub fn set(&mut self, p: Phase, s: f64) {
        self.seconds[p as usize] = s;
    }

    /// `self - other`, clamped at zero — the time between two snapshots.
    pub fn delta(&self, other: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::zero();
        for p in Phase::ALL {
            out.set(p, (self.get(p) - other.get(p)).max(0.0));
        }
        out
    }

    /// `(key, seconds)` pairs in ledger order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, f64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self.get(p)))
    }
}

/// A per-phase accumulator of nanoseconds.
#[derive(Debug, Default)]
pub struct PhaseClock {
    nanos: [AtomicU64; Phase::COUNT],
}

impl PhaseClock {
    /// Creates a zeroed clock.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        PhaseClock {
            nanos: [ZERO; Phase::COUNT],
        }
    }

    /// Accrues `nanos` to `phase`.
    pub fn accrue(&self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot in seconds.
    pub fn times(&self) -> PhaseTimes {
        let mut out = PhaseTimes::zero();
        for p in Phase::ALL {
            out.set(
                p,
                self.nanos[p as usize].load(Ordering::Relaxed) as f64 / 1e9,
            );
        }
        out
    }

    /// Zeroes every phase.
    pub fn reset(&self) {
        for cell in &self.nanos {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

static GLOBAL_CLOCK: PhaseClock = PhaseClock::new();

/// The global phase clock the runner's spans accrue into.
pub fn clock() -> &'static PhaseClock {
    &GLOBAL_CLOCK
}

/// Snapshot of the global clock in seconds.
pub fn phase_times() -> PhaseTimes {
    GLOBAL_CLOCK.times()
}

/// Zeroes the global clock.
pub fn reset() {
    GLOBAL_CLOCK.reset();
}

/// An open span: accrues its inclusive elapsed time to its phase on drop
/// (or on an explicit [`Span::close`], which also returns the seconds).
#[derive(Debug)]
pub struct Span {
    phase: Phase,
    start: Instant,
    open: bool,
}

impl Span {
    /// Opens a span on the global clock.
    pub fn enter(phase: Phase) -> Span {
        Span {
            phase,
            start: Instant::now(),
            open: true,
        }
    }

    /// The span's phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Closes the span, accruing and returning its elapsed seconds.
    pub fn close(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        if !self.open {
            return 0.0;
        }
        self.open = false;
        let elapsed = self.start.elapsed();
        GLOBAL_CLOCK.accrue(self.phase, elapsed.as_nanos() as u64);
        elapsed.as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn private_clock_accrues_and_resets() {
        let clock = PhaseClock::new();
        clock.accrue(Phase::Build, 2_000_000_000);
        clock.accrue(Phase::Kernel, 0);
        let t = clock.times();
        assert!((t.get(Phase::Build) - 2.0).abs() < 1e-9);
        clock.reset();
        assert_eq!(clock.times().get(Phase::Build), 0.0);
    }

    #[test]
    fn spans_nest_inclusively() {
        // A child span's time is also inside the parent's window: both
        // phases see at least the child's duration.
        let before = phase_times();
        {
            let _build = Span::enter(Phase::Build);
            {
                let _relabel = Span::enter(Phase::Relabel);
                std::thread::sleep(Duration::from_millis(20));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let d = phase_times().delta(&before);
        assert!(d.get(Phase::Relabel) >= 0.015, "relabel {:?}", d);
        assert!(
            d.get(Phase::Build) >= d.get(Phase::Relabel),
            "parent must include child: {:?}",
            d
        );
    }

    #[test]
    fn close_returns_elapsed() {
        let span = Span::enter(Phase::Verify);
        std::thread::sleep(Duration::from_millis(5));
        let secs = span.close();
        assert!(secs >= 0.004, "close returned {secs}");
    }

    #[test]
    fn delta_clamps_at_zero() {
        let mut a = PhaseTimes::zero();
        a.set(Phase::Kernel, 1.0);
        let mut b = PhaseTimes::zero();
        b.set(Phase::Kernel, 3.0);
        assert_eq!(a.delta(&b).get(Phase::Kernel), 0.0);
    }
}
