//! Semirings: the algebra that turns sparse linear algebra into graph
//! traversal.
//!
//! In `C = A ⊕.⊗ B`, the multiplicative operator `⊗` combines a matrix
//! entry with a vector entry and the additive monoid `⊕` reduces the
//! products. The kernels use exactly the semirings named in the paper
//! (§III-A): `any-secondi` (BFS), `min-plus` (SSSP), `plus-second` (PR),
//! `plus-first` (BC), `min-second` (FastSV CC), `plus-pair` (TC).

use crate::GrbIndex;
use gapbs_graph::types::Distance;

/// The additive monoid of a semiring: an associative, commutative combine
/// with an identity, and optionally a *terminal* value that allows early
/// exit (the `any` monoid terminates on the first hit).
pub trait AddMonoid<T> {
    /// Identity element of the combine.
    fn identity(&self) -> T;
    /// Combines two partial results.
    fn combine(&self, a: T, b: T) -> T;
    /// `true` if `v` is terminal — no further combining can change it.
    fn is_terminal(&self, _v: &T) -> bool {
        false
    }
}

/// A full semiring: multiplicative operator plus additive monoid.
///
/// The multiply receives the joining index `k` (the row index of the
/// second operand) so that index-valued operators like `secondi` are
/// expressible, along with the matrix entry's weight and the vector value.
pub trait Semiring<X, Y = X> {
    /// The additive monoid type.
    type Add: AddMonoid<Y>;
    /// The additive monoid instance.
    fn add(&self) -> &Self::Add;
    /// Multiplicative operator: `k` is the joining index, `weight` the
    /// matrix entry value, `x` the vector entry value.
    fn multiply(&self, k: GrbIndex, weight: i32, x: &X) -> Y;
}

/// `any` monoid: any operand is acceptable; terminal immediately. Used by
/// BFS so a vertex stops combining once *a* parent is found.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyMonoid;

impl AddMonoid<Option<GrbIndex>> for AnyMonoid {
    fn identity(&self) -> Option<GrbIndex> {
        None
    }
    fn combine(&self, a: Option<GrbIndex>, b: Option<GrbIndex>) -> Option<GrbIndex> {
        a.or(b)
    }
    fn is_terminal(&self, v: &Option<GrbIndex>) -> bool {
        v.is_some()
    }
}

/// `min` monoid over distances.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMonoid;

impl AddMonoid<Distance> for MinMonoid {
    fn identity(&self) -> Distance {
        Distance::MAX
    }
    fn combine(&self, a: Distance, b: Distance) -> Distance {
        a.min(b)
    }
}

/// `min` monoid over indices (FastSV labels).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinIndexMonoid;

impl AddMonoid<GrbIndex> for MinIndexMonoid {
    fn identity(&self) -> GrbIndex {
        GrbIndex::MAX
    }
    fn combine(&self, a: GrbIndex, b: GrbIndex) -> GrbIndex {
        a.min(b)
    }
}

/// `plus` monoid over floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusMonoid;

impl AddMonoid<f64> for PlusMonoid {
    fn identity(&self) -> f64 {
        0.0
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `plus` monoid over counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusCountMonoid;

impl AddMonoid<u64> for PlusCountMonoid {
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// `any-secondi`: the BFS semiring. The product is the joining index (the
/// prospective parent); the `any` monoid keeps whichever arrives first.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnySecondI {
    add: AnyMonoid,
}

impl Semiring<(), Option<GrbIndex>> for AnySecondI {
    type Add = AnyMonoid;
    fn add(&self) -> &AnyMonoid {
        &self.add
    }
    fn multiply(&self, k: GrbIndex, _weight: i32, _x: &()) -> Option<GrbIndex> {
        Some(k)
    }
}

/// `min-plus` (tropical): the SSSP semiring.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPlus {
    add: MinMonoid,
}

impl Semiring<Distance, Distance> for MinPlus {
    type Add = MinMonoid;
    fn add(&self) -> &MinMonoid {
        &self.add
    }
    fn multiply(&self, _k: GrbIndex, weight: i32, x: &Distance) -> Distance {
        x.saturating_add(Distance::from(weight))
    }
}

/// `plus-second`: the PR semiring — matrix values are ignored, only the
/// structure routes the score contributions.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusSecond {
    add: PlusMonoid,
}

impl Semiring<f64, f64> for PlusSecond {
    type Add = PlusMonoid;
    fn add(&self) -> &PlusMonoid {
        &self.add
    }
    fn multiply(&self, _k: GrbIndex, _weight: i32, x: &f64) -> f64 {
        *x
    }
}

/// `min-second`: the FastSV semiring — propagates the neighbor's label.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinSecond {
    add: MinIndexMonoid,
}

impl Semiring<GrbIndex, GrbIndex> for MinSecond {
    type Add = MinIndexMonoid;
    fn add(&self) -> &MinIndexMonoid {
        &self.add
    }
    fn multiply(&self, _k: GrbIndex, _weight: i32, x: &GrbIndex) -> GrbIndex {
        *x
    }
}

/// `plus-pair`: the TC semiring — every structural match contributes 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusPair {
    add: PlusCountMonoid,
}

impl Semiring<(), u64> for PlusPair {
    type Add = PlusCountMonoid;
    fn add(&self) -> &PlusCountMonoid {
        &self.add
    }
    fn multiply(&self, _k: GrbIndex, _weight: i32, _x: &()) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_monoid_is_terminal_on_first_hit() {
        let m = AnyMonoid;
        assert!(!m.is_terminal(&m.identity()));
        let v = m.combine(None, Some(3));
        assert_eq!(v, Some(3));
        assert!(m.is_terminal(&v));
        // `any` keeps an existing value.
        assert_eq!(m.combine(Some(5), Some(9)), Some(5));
    }

    #[test]
    fn min_plus_behaves_tropically() {
        let s = MinPlus::default();
        assert_eq!(s.multiply(0, 4, &10), 14);
        assert_eq!(s.add().combine(14, 9), 9);
        assert_eq!(s.add().identity(), Distance::MAX);
        // Saturation instead of overflow.
        assert_eq!(s.multiply(0, 1, &Distance::MAX), Distance::MAX);
    }

    #[test]
    fn secondi_returns_joining_index() {
        let s = AnySecondI::default();
        assert_eq!(s.multiply(42, 0, &()), Some(42));
    }

    #[test]
    fn plus_pair_counts_structure_only() {
        let s = PlusPair::default();
        assert_eq!(s.multiply(9, -7, &()), 1);
        assert_eq!(s.add().combine(2, 3), 5);
    }
}
