//! Batched Brandes BC: all four root vertices advance through *one* pass
//! over the adjacency matrix per level.
//!
//! The paper (§V-E): "Most of the operations are matrix-matrix, where one
//! matrix is dense and 4-by-n." This module reproduces that data shape —
//! frontier, path-count and dependency state are 4-wide values, and each
//! level is a single sweep over `A` that advances every column at once —
//! instead of running four independent vector sweeps.

use super::LaGraphContext;
use crate::frontier::{vxm_multi, FrontierMatrix};
use crate::semiring::PlusSecond;
use crate::GrbIndex;
use gapbs_graph::types::{NodeId, Score};
use gapbs_parallel::ThreadPool;

/// Number of batched roots (the GAP spec's BC approximation width).
pub const BATCH: usize = 4;

/// Runs batch Brandes over up to [`BATCH`] sources per sweep, returning
/// scores normalized by the maximum (the GAP output convention).
pub fn bc_batch(ctx: &LaGraphContext, sources: &[NodeId], pool: &ThreadPool) -> Vec<Score> {
    let n = ctx.num_vertices() as usize;
    let mut scores = vec![0.0; n];
    if n == 0 {
        return scores;
    }
    for chunk in sources.chunks(BATCH) {
        batch_pass(ctx, chunk, &mut scores, pool);
    }
    let max = scores.iter().cloned().fold(0.0, Score::max);
    if max > 0.0 {
        for s in &mut scores {
            *s /= max;
        }
    }
    scores
}

/// One 4-wide forward/backward pass.
fn batch_pass(ctx: &LaGraphContext, sources: &[NodeId], scores: &mut [Score], pool: &ThreadPool) {
    let n = ctx.num_vertices() as usize;
    let k = sources.len();
    // numsp: n×4 dense path counts; 0 = "column has not discovered this
    // vertex yet" (the structural role the matrix mask plays in LAGraph).
    let mut numsp = vec![[0.0f64; BATCH]; n];
    // depth per column, for the backward level checks.
    let mut depth = vec![[u32::MAX; BATCH]; n];
    for (c, &s) in sources.iter().enumerate() {
        numsp[s as usize][c] = 1.0;
        depth[s as usize][c] = 0;
    }
    // The union frontier: vertices active in at least one column, with
    // their per-column path counts. Duplicate sources merge into one row.
    let semiring = PlusSecond::default();
    let mut frontier: FrontierMatrix<f64> = FrontierMatrix::new(k);
    {
        let mut uniq: Vec<GrbIndex> = sources.iter().map(|&s| GrbIndex::from(s)).collect();
        uniq.sort_unstable();
        uniq.dedup();
        for s in uniq {
            let active = (0..k)
                .filter(|&c| sources[c] == s as NodeId)
                .fold(0u64, |m, c| m | 1 << c);
            let vals: Vec<f64> = (0..k)
                .map(|c| if sources[c] == s as NodeId { 1.0 } else { 0.0 })
                .collect();
            frontier.push_row(s, active, &vals);
        }
    }
    let mut levels: Vec<FrontierMatrix<f64>> = vec![frontier.clone()];
    let mut d = 0u32;
    // Forward: one multi-column vxm over A per level advances every
    // column, masked to the columns that have not discovered each output.
    while !frontier.is_empty() {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        gapbs_telemetry::trace_iter!(BcLevel {
            depth: d,
            frontier: frontier.len() as u64
        });
        let advanced = {
            let undiscovered = |j: GrbIndex| {
                let row = &numsp[j as usize];
                (0..k)
                    .filter(|&c| row[c] == 0.0)
                    .fold(0u64, |m, c| m | 1 << c)
            };
            vxm_multi(
                &semiring,
                &frontier,
                &ctx.a,
                &undiscovered,
                &ctx.workspace,
                pool,
            )
        };
        if advanced.is_empty() {
            break;
        }
        // Commit the level: record depths and fold counts into numsp.
        // Every active column passed the mask, so its count is fresh.
        for (j, active, counts) in advanced.iter() {
            let mut cols = active;
            while cols != 0 {
                let c = cols.trailing_zeros() as usize;
                cols &= cols - 1;
                numsp[j as usize][c] = counts[c];
                depth[j as usize][c] = d + 1;
            }
        }
        levels.push(advanced.clone());
        frontier = advanced;
        d += 1;
    }
    // Backward: one sweep over A' per level accumulates all columns.
    let mut delta = vec![[0.0f64; BATCH]; n];
    for level_idx in (1..levels.len()).rev() {
        for (j, _, _) in levels[level_idx].iter() {
            // t1[j][c] = (1 + delta_j) / numsp_j for columns where j sits
            // at this level.
            let mut t1 = [0.0f64; BATCH];
            for c in 0..k {
                if depth[j as usize][c] == level_idx as u32 {
                    t1[c] = (1.0 + delta[j as usize][c]) / numsp[j as usize][c];
                }
            }
            for i in ctx.at.row(j) {
                let i = *i as usize;
                for c in 0..k {
                    let di = depth[i][c];
                    if t1[c] > 0.0 && di != u32::MAX && di + 1 == level_idx as u32 {
                        delta[i][c] += numsp[i][c] * t1[c];
                    }
                }
            }
        }
    }
    for v in 0..n {
        for (c, &s) in sources.iter().enumerate() {
            if v as NodeId != s {
                scores[v] += delta[v][c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::{edgelist::edges, gen, Builder};

    fn oracle(g: &gapbs_graph::Graph, sources: &[NodeId]) -> Vec<Score> {
        use std::collections::VecDeque;
        let n = g.num_vertices();
        let mut scores = vec![0.0; n];
        for &s in sources {
            let mut depth = vec![i64::MAX; n];
            let mut sigma = vec![0.0f64; n];
            let mut order = Vec::new();
            let mut q = VecDeque::new();
            depth[s as usize] = 0;
            sigma[s as usize] = 1.0;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                order.push(u);
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == i64::MAX {
                        depth[v as usize] = depth[u as usize] + 1;
                        q.push_back(v);
                    }
                    if depth[v as usize] == depth[u as usize] + 1 {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            for &u in order.iter().rev() {
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == depth[u as usize] + 1 {
                        delta[u as usize] +=
                            (sigma[u as usize] / sigma[v as usize]) * (1.0 + delta[v as usize]);
                    }
                }
                if u != s {
                    scores[u as usize] += delta[u as usize];
                }
            }
        }
        let max = scores.iter().cloned().fold(0.0, f64::max);
        if max > 0.0 {
            for v in &mut scores {
                *v /= max;
            }
        }
        scores
    }

    fn assert_close(a: &[Score], b: &[Score]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn batch_matches_oracle_on_random_graphs() {
        let pool = ThreadPool::new(2);
        for seed in [1, 2, 3] {
            let g = gen::kron(8, 8, seed);
            let ctx = crate::lagraph::LaGraphContext::from_graph(&g);
            let sources = [0, 7, 13, 42];
            assert_close(&bc_batch(&ctx, &sources, &pool), &oracle(&g, &sources));
        }
    }

    #[test]
    fn batch_matches_per_source_implementation() {
        let g = gen::urand(8, 8, 4);
        let ctx = crate::lagraph::LaGraphContext::from_graph(&g);
        let sources = [3, 9, 27, 81];
        let pool = gapbs_parallel::ThreadPool::new(2);
        let batched = bc_batch(&ctx, &sources, &pool);
        let per_source = crate::lagraph::bc(&ctx, &sources, &pool);
        assert_close(&batched, &per_source);
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let g = gen::kron(9, 10, 6);
        let ctx = crate::lagraph::LaGraphContext::from_graph(&g);
        let sources = [0, 7, 13, 42];
        let serial = bc_batch(&ctx, &sources, &ThreadPool::new(1));
        for threads in [2, 7] {
            let got = bc_batch(&ctx, &sources, &ThreadPool::new(threads));
            for (v, (a, b)) in serial.iter().zip(&got).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "vertex {v}: {a} vs {b} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn duplicate_and_short_source_sets_work() {
        let g = Builder::new()
            .build(edges([(0, 1), (0, 2), (1, 3), (2, 3)]))
            .unwrap();
        let ctx = crate::lagraph::LaGraphContext::from_graph(&g);
        let pool = ThreadPool::new(2);
        assert_close(&bc_batch(&ctx, &[0], &pool), &oracle(&g, &[0]));
        assert_close(&bc_batch(&ctx, &[0, 0], &pool), &oracle(&g, &[0, 0]));
        // More than BATCH sources chunk into multiple passes.
        let many = [0, 1, 2, 3, 0];
        assert_close(&bc_batch(&ctx, &many, &pool), &oracle(&g, &many));
    }

    #[test]
    fn deep_road_graph_levels_align_per_column() {
        let g = gen::road(&gen::RoadConfig::gap_like(14), 5);
        let ctx = crate::lagraph::LaGraphContext::from_graph(&g);
        let sources = [0, 7, 50, 120];
        let pool = ThreadPool::new(2);
        assert_close(&bc_batch(&ctx, &sources, &pool), &oracle(&g, &sources));
    }
}
