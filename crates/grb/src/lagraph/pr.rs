//! LAGraph PageRank over the `plus-second` semiring: only the adjacency
//! *structure* routes contributions, so the matrix values are never read
//! (§III-A). Jacobi iteration on full vectors, like the GAP reference —
//! the paper observes SuiteSparse PR lands within ~10% of GAP because both
//! run the same algorithm.

use super::LaGraphContext;
use crate::ops::{mxv, Mask};
use crate::semiring::PlusSecond;
use crate::vector::GrbVector;
use gapbs_graph::types::Score;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Fixed block width for pooled f64 sums. Blocks depend only on vector
/// length, so the floating-point association — and thus the converged
/// scores — is identical at every thread count.
const PR_BLOCK: usize = 1 << 12;

/// Deterministic pooled sum of `f(i)` for `i in 0..len`: per-block
/// partials are computed serially inside fixed-width blocks and folded
/// in block index order, so the result is bit-identical at any pool
/// size (only *which worker* runs a block varies).
fn blocked_sum(pool: &ThreadPool, len: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    if len < 2 * PR_BLOCK || pool.num_threads() == 1 {
        return (0..len).map(f).sum();
    }
    let blocks = len.div_ceil(PR_BLOCK);
    let mut partials = vec![0.0f64; blocks];
    let out = SharedSlice::new(&mut partials);
    pool.for_each_index(blocks, Schedule::Static, |b| {
        let lo = b * PR_BLOCK;
        let hi = (lo + PR_BLOCK).min(len);
        let sum: f64 = (lo..hi).map(&f).sum();
        // SAFETY: each block index is visited exactly once.
        unsafe { out.write(b, sum) };
    });
    partials.iter().sum()
}

/// Runs PageRank; returns `(scores, iterations)`.
pub fn pr(
    ctx: &LaGraphContext,
    damping: f64,
    tolerance: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> (Vec<Score>, usize) {
    let n = ctx.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let nf = n as f64;
    let base = (1.0 - damping) / nf;
    let semiring = PlusSecond::default();
    let mut scores: GrbVector<f64> = GrbVector::full(n, 1.0 / nf);
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        gapbs_telemetry::record(gapbs_telemetry::Counter::PrIterations, 1);
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        // c_k = scores_k / outdeg_k, held as a *full* vector so the mxv
        // gather reads it with O(1) indexing — SuiteSparse keeps PR's
        // iteration vectors dense for exactly this reason. Dangling
        // vertices contribute through the uniform redistribution term.
        let mut contrib = GrbVector::full(n, 0.0f64);
        {
            let sv = scores.as_full_slice();
            let slice = contrib.as_full_slice_mut();
            if slice.len() < 2 * PR_BLOCK || pool.num_threads() == 1 {
                for (k, &s) in sv.iter().enumerate() {
                    if ctx.out_degree[k] > 0 {
                        slice[k] = s / ctx.out_degree[k] as f64;
                    }
                }
            } else {
                let out = SharedSlice::new(slice);
                pool.for_each_index(sv.len(), Schedule::Static, |k| {
                    if ctx.out_degree[k] > 0 {
                        // SAFETY: one writer per index k.
                        unsafe { out.write(k, sv[k] / ctx.out_degree[k] as f64) };
                    }
                });
            }
        }
        let sv = scores.as_full_slice();
        let dangling: f64 = blocked_sum(pool, sv.len(), |k| {
            if ctx.out_degree[k] == 0 {
                sv[k]
            } else {
                0.0
            }
        }) / nf;
        // importance = A' * contrib  (pull over in-edges).
        let importance: GrbVector<f64> = mxv(
            &semiring,
            &ctx.at,
            &contrib,
            None::<&Mask<'_, ()>>,
            &ctx.workspace,
            pool,
        );
        let mut next = GrbVector::full(n, base + damping * dangling);
        {
            let slice = next.as_full_slice_mut();
            let found = importance
                .sparse_entries()
                .expect("engine products are sparse");
            if found.len() < 2 * PR_BLOCK || pool.num_threads() == 1 {
                for &(i, imp) in found {
                    slice[i as usize] += damping * imp;
                }
            } else {
                let out = SharedSlice::new(slice);
                pool.for_each_index(found.len(), Schedule::Static, |e| {
                    let (i, imp) = found[e];
                    // SAFETY: sparse indices are unique → one writer per slot.
                    unsafe {
                        let cur = out.read(i as usize);
                        out.write(i as usize, cur + damping * imp);
                    }
                });
            }
        }
        let (sv, nv) = (scores.as_full_slice(), next.as_full_slice());
        let error: f64 = blocked_sum(pool, sv.len(), |i| (sv[i] - nv[i]).abs());
        scores = next;
        gapbs_telemetry::trace_iter!(PrSweep {
            sweep: iterations as u32,
            residual: error
        });
        if error < tolerance {
            break;
        }
    }
    (scores.as_full_slice().to_vec(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn scores_sum_to_one() {
        let g = gen::kron(7, 8, 2);
        let ctx = LaGraphContext::from_graph(&g);
        let (scores, _) = pr(&ctx, 0.85, 1e-6, 200, &pool());
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn agrees_with_two_cycle_fixed_point() {
        let g = Builder::new().build(edges([(0, 1), (1, 0)])).unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let (scores, _) = pr(&ctx, 0.85, 1e-10, 500, &pool());
        assert!((scores[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dangling_mass_redistributed() {
        let g = Builder::new().build(edges([(0, 1)])).unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let (scores, _) = pr(&ctx, 0.85, 1e-10, 500, &pool());
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(scores[1] > scores[0], "1 receives from 0 plus dangling");
    }
}
