//! LAGraph connected components: FastSV (Zhang, Azad, Hu) over the
//! `min-second` semiring.
//!
//! FastSV iterates three dense-vector rules — stochastic hooking,
//! aggressive hooking, and shortcutting — until the parent vector `f`
//! stabilizes. The paper notes the GraphBLAS C API's assignment with a MIN
//! accumulator is undefined for duplicate indices, so LAGraph's CC carries
//! its own scatter-min kernel; [`scatter_min`] is that kernel here.

use super::LaGraphContext;
use crate::ops::{mxv, Mask};
use crate::semiring::MinSecond;
use crate::vector::GrbVector;
use crate::GrbIndex;
use gapbs_graph::types::NodeId;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Below this vector length the per-round dense steps run serially.
const CC_CUTOFF: usize = 1 << 12;

/// Runs FastSV, returning per-vertex component labels.
pub fn cc(ctx: &LaGraphContext, pool: &ThreadPool) -> Vec<NodeId> {
    let n = ctx.num_vertices();
    let mut f: Vec<GrbIndex> = (0..n).collect();
    if n == 0 {
        return Vec::new();
    }
    let semiring = MinSecond::default();
    let mut round: u32 = 0;
    loop {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        // gp = f[f] (grandparent). Pure gather: every slot is written by
        // exactly one index from reads of the immutable `f`, so the
        // pooled path is value-identical to the serial one.
        let par = n as usize >= CC_CUTOFF && pool.num_threads() > 1;
        let gp: Vec<GrbIndex> = if par {
            let mut gp = vec![0 as GrbIndex; n as usize];
            let out = SharedSlice::new(&mut gp);
            pool.for_each_index(n as usize, Schedule::Static, |i| {
                // SAFETY: one writer per index i.
                unsafe { out.write(i, f[f[i] as usize]) };
            });
            gp
        } else {
            f.iter().map(|&p| f[p as usize]).collect()
        };
        // mngp = min over neighbors of gp: one masked-free mxv per
        // direction (weak connectivity on directed graphs needs both).
        // Full storage: FastSV's vectors are dense, and the mxv gather
        // needs O(1) access to gp.
        let mut gp_vec = GrbVector::full(n, GrbIndex::MAX);
        gp_vec.as_full_slice_mut().copy_from_slice(&gp);
        let mut mngp: Vec<GrbIndex> = gp.clone();
        let pulled: GrbVector<GrbIndex> = mxv(
            &semiring,
            &ctx.a,
            &gp_vec,
            None::<&Mask<'_, ()>>,
            &ctx.workspace,
            pool,
        );
        merge_min(&mut mngp, &pulled, par, pool);
        if ctx.directed {
            let pulled_t: GrbVector<GrbIndex> = mxv(
                &semiring,
                &ctx.at,
                &gp_vec,
                None::<&Mask<'_, ()>>,
                &ctx.workspace,
                pool,
            );
            merge_min(&mut mngp, &pulled_t, par, pool);
        }
        let mut changed = false;
        // Stochastic hooking: f[f[i]] = min(f[f[i]], mngp[i]).
        let hooks: Vec<(GrbIndex, GrbIndex)> = (0..n as usize).map(|i| (f[i], mngp[i])).collect();
        changed |= scatter_min(&mut f, &hooks);
        // Aggressive hooking: f[i] = min(f[i], mngp[i], gp[i]). Each
        // slot depends only on its own index, so the pooled version is
        // value-identical; `changed` is OR-reduced (order-free).
        if par {
            let out = SharedSlice::new(&mut f);
            changed |= pool.reduce_index(
                n as usize,
                Schedule::Static,
                false,
                |i| {
                    let target = mngp[i].min(gp[i]);
                    // SAFETY: one writer per index i.
                    unsafe {
                        if target < out.read(i) {
                            out.write(i, target);
                            return true;
                        }
                    }
                    false
                },
                |a, b| a | b,
            );
        } else {
            for i in 0..n as usize {
                let target = mngp[i].min(gp[i]);
                if target < f[i] {
                    f[i] = target;
                    changed = true;
                }
            }
        }
        // Shortcutting: f[i] = f[f[i]].
        for i in 0..n as usize {
            let ff = f[f[i] as usize];
            if ff < f[i] {
                f[i] = ff;
                changed = true;
            }
        }
        gapbs_telemetry::trace_iter!(CcRound {
            round,
            changed: u64::from(changed)
        });
        round += 1;
        if !changed {
            break;
        }
    }
    f.into_iter().map(|x| x as NodeId).collect()
}

/// Folds a pulled min-second product into `mngp` slot-wise. The sparse
/// product has unique indices, so the pooled path writes disjointly and
/// matches the serial fold exactly.
fn merge_min(mngp: &mut [GrbIndex], pulled: &GrbVector<GrbIndex>, par: bool, pool: &ThreadPool) {
    let entries = pulled.sparse_entries().expect("engine products are sparse");
    if par && entries.len() >= CC_CUTOFF {
        let out = SharedSlice::new(mngp);
        pool.for_each_index(entries.len(), Schedule::Static, |e| {
            let (i, v) = entries[e];
            // SAFETY: sparse indices are unique → one writer per slot.
            unsafe {
                let cur = out.read(i as usize);
                if v < cur {
                    out.write(i as usize, v);
                }
            }
        });
    } else {
        for &(i, v) in entries {
            let slot = &mut mngp[i as usize];
            *slot = (*slot).min(v);
        }
    }
}

/// Scatter with MIN reduction on duplicate targets: `dst[idx] =
/// min(dst[idx], value)` for every `(idx, value)` pair. Returns whether
/// anything changed. (The GraphBLAS C API leaves duplicate-index assign
/// undefined; FastSV needs the min-reduction semantics, §V-C.)
pub fn scatter_min(dst: &mut [GrbIndex], updates: &[(GrbIndex, GrbIndex)]) -> bool {
    let mut changed = false;
    for &(idx, value) in updates {
        let slot = &mut dst[idx as usize];
        if value < *slot {
            *slot = value;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    fn labels_partition_eq(a: &[NodeId], b: &[NodeId]) -> bool {
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        a.iter()
            .zip(b)
            .all(|(&x, &y)| *fwd.entry(x).or_insert(y) == y && *bwd.entry(y).or_insert(x) == x)
    }

    #[test]
    fn islands_get_distinct_labels() {
        let g = Builder::new()
            .symmetrize(true)
            .num_vertices(5)
            .build(edges([(0, 1), (2, 3)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let c = cc(&ctx, &pool());
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[4], c[0]);
    }

    #[test]
    fn directed_weak_connectivity() {
        let g = Builder::new().build(edges([(0, 1), (2, 1)])).unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let c = cc(&ctx, &pool());
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in 1..4 {
            let g = gen::urand(8, 6, seed);
            let ctx = LaGraphContext::from_graph(&g);
            let got = cc(&ctx, &pool());
            let want = union_find(&g);
            assert!(labels_partition_eq(&got, &want), "seed {seed}");
        }
    }

    fn union_find(g: &gapbs_graph::Graph) -> Vec<NodeId> {
        let n = g.num_vertices();
        let mut p: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for u in 0..n {
            for &v in g.out_neighbors(u as NodeId) {
                let (a, b) = (find(&mut p, u), find(&mut p, v as usize));
                if a != b {
                    p[a.max(b)] = a.min(b);
                }
            }
        }
        (0..n).map(|u| find(&mut p, u) as NodeId).collect()
    }

    #[test]
    fn scatter_min_reduces_duplicates() {
        let mut dst = vec![9, 9, 9];
        let changed = scatter_min(&mut dst, &[(1, 5), (1, 3), (1, 7)]);
        assert!(changed);
        assert_eq!(dst, vec![9, 3, 9]);
        assert!(!scatter_min(&mut dst, &[(1, 4)]));
    }
}
