//! LAGraph triangle counting: `L = tril(A,-1); U = triu(A,1);
//! C<L> = L * U'; count = sum(C)` over the `plus-pair` semiring, after an
//! optional heuristic-driven degree permutation (§III-A).
//!
//! Per the paper's §V-F discussion, the masked product is materialized and
//! then reduced (a fused kernel would be ~2× faster but is future work in
//! SuiteSparse's non-blocking mode).

use super::LaGraphContext;
use crate::matrix::GrbMatrix;
use crate::ops::mxm_pair_masked_sum;
use gapbs_parallel::ThreadPool;

/// Counts triangles. The graph behind `ctx` must be undirected
/// (symmetrized), per the GAP spec.
pub fn tc(ctx: &LaGraphContext, pool: &ThreadPool) -> u64 {
    tc_on_matrix(&ctx.a, pool)
}

/// Counts triangles of a symmetric adjacency matrix, with the optional
/// presort decided by a degree-skew heuristic (relabeling time is part of
/// the kernel, per the benchmark rules).
pub fn tc_on_matrix(a: &GrbMatrix, pool: &ThreadPool) -> u64 {
    let a_sorted;
    let a = if worth_sorting(a) {
        a_sorted = permute_by_degree(a);
        &a_sorted
    } else {
        a
    };
    let l = a.tril();
    let u = a.triu();
    let ut = u.transpose();
    mxm_pair_masked_sum(&l, &ut, pool)
}

/// Degree-skew heuristic mirroring GAP's `WorthRelabelling`.
fn worth_sorting(a: &GrbMatrix) -> bool {
    let n = a.nrows();
    if n < 10 {
        return false;
    }
    let sample = 1000.min(n) as usize;
    let stride = (n as usize / sample).max(1);
    let mut degrees: Vec<usize> = (0..n as usize)
        .step_by(stride)
        .take(sample)
        .map(|i| a.row(i as u64).len())
        .collect();
    degrees.sort_unstable();
    let median = degrees[degrees.len() / 2];
    let average = degrees.iter().sum::<usize>() / degrees.len();
    average > 2 * median.max(1)
}

/// Rebuilds the matrix with vertices relabeled by descending degree.
fn permute_by_degree(a: &GrbMatrix) -> GrbMatrix {
    let n = a.nrows();
    let mut order: Vec<u64> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(a.row(i).len()), i));
    let mut new_of_old = vec![0u64; n as usize];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as u64;
    }
    // Scatter and re-sort rows under the permutation.
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    for i in 0..n {
        let ni = new_of_old[i as usize];
        for &j in a.row(i) {
            rows[ni as usize].push(new_of_old[j as usize]);
        }
    }
    let mut offsets = Vec::with_capacity(n as usize + 1);
    offsets.push(0u64);
    let mut cols = Vec::new();
    for row in &mut rows {
        row.sort_unstable();
        cols.extend_from_slice(row);
        offsets.push(cols.len() as u64);
    }
    GrbMatrix::from_csr(n, n, offsets, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagraph::LaGraphContext;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn triangle_counts_one() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2), (2, 0)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        assert_eq!(tc(&ctx, &pool()), 1);
    }

    #[test]
    fn matches_sequential_count_on_random_graphs() {
        for seed in 1..4 {
            let g = gen::kron(8, 10, seed);
            let ctx = LaGraphContext::from_graph(&g);
            let want = brute_force(&g);
            assert_eq!(tc(&ctx, &pool()), want, "seed {seed}");
        }
    }

    #[test]
    fn presort_does_not_change_count() {
        let g = gen::kron(9, 12, 5);
        let a = GrbMatrix::from_graph(&g);
        let plain = {
            let l = a.tril();
            let ut = a.triu().transpose();
            mxm_pair_masked_sum(&l, &ut, &pool())
        };
        let sorted = {
            let p = permute_by_degree(&a);
            let l = p.tril();
            let ut = p.triu().transpose();
            mxm_pair_masked_sum(&l, &ut, &pool())
        };
        assert_eq!(plain, sorted);
    }

    fn brute_force(g: &gapbs_graph::Graph) -> u64 {
        let mut count = 0;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if v <= u {
                    continue;
                }
                for &w in g.out_neighbors(v) {
                    if w > v && g.out_csr().has_edge(u, w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}
