//! LAGraph SSSP: delta-stepping over the `min-plus` tropical semiring.
//!
//! Each relaxation wave is a whole-vector `vxm`; bucket membership is
//! recomputed with `select` over the full distance vector. The paper notes
//! SuiteSparse SSSP "cannot yet exploit the bitmap data structure", so
//! every bucket pays bulk-operation overhead — the source of its extreme
//! slowness on Road (Table V).

use super::LaGraphContext;
use crate::ops::{select, vxm, Mask};
use crate::semiring::MinPlus;
use crate::vector::GrbVector;
use crate::GrbIndex;
use gapbs_graph::types::{Distance, NodeId, INF_DIST};
use gapbs_graph::Weight;
use gapbs_parallel::{Schedule, ThreadPool};

/// Below this vector length the next-bucket scan runs serially.
const SCAN_CUTOFF: usize = 1 << 13;

/// Runs delta-stepping from `source`, returning distances.
///
/// # Panics
///
/// Panics if the context has no weighted matrix.
pub fn sssp(
    ctx: &LaGraphContext,
    source: NodeId,
    delta: Weight,
    pool: &ThreadPool,
) -> Vec<Distance> {
    let aw = ctx
        .aw
        .as_ref()
        .expect("LaGraphContext::from_wgraph required for SSSP");
    let n = ctx.num_vertices();
    let mut dist = vec![INF_DIST; n as usize];
    if n == 0 {
        return dist;
    }
    let delta_d = Distance::from(delta.max(1));
    let semiring = MinPlus::default();

    // t: full distance vector (GraphBLAS full storage).
    let mut t: GrbVector<Distance> = GrbVector::full(n, INF_DIST);
    t.set(GrbIndex::from(source), 0);

    let mut bucket: i64 = 0;
    loop {
        // Active vertices of the current bucket, via select over t — the
        // O(n) whole-vector scan LAGraph pays per bucket.
        let lo = bucket * delta_d;
        let hi = lo + delta_d;
        let mut active = select(&t, |_, &d| d >= lo && d < hi, pool);
        // Drain the bucket to a fixed point.
        while active.nvals() > 0 {
            gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
            gapbs_telemetry::trace_iter!(SsspBucket {
                bucket: bucket as u64,
                size: active.nvals()
            });
            let reach: GrbVector<Distance> = vxm(
                &semiring,
                &active,
                aw,
                None::<&Mask<'_, ()>>,
                &ctx.workspace,
                pool,
            );
            let reached = reach.sparse_entries().expect("engine products are sparse");
            let mut next_active = Vec::new();
            {
                let tv = t.as_full_slice_mut();
                for &(j, nd) in reached {
                    if nd < tv[j as usize] {
                        tv[j as usize] = nd;
                        gapbs_telemetry::record(gapbs_telemetry::Counter::BucketRelaxations, 1);
                        if nd < hi {
                            next_active.push((j, nd));
                        }
                    }
                }
            }
            active = GrbVector::from_sorted_entries(n, next_active);
        }
        // Find the next non-empty bucket by scanning the minimum
        // unfinished distance (full-vector reduce; min is
        // order-independent, so the pooled scan is deterministic).
        let tv = t.as_full_slice();
        let scan_min = |d: Distance| (d >= hi && d < INF_DIST).then_some(d);
        let next_min = if tv.len() < SCAN_CUTOFF {
            tv.iter().filter_map(|&d| scan_min(d)).min()
        } else {
            pool.reduce_index(
                tv.len(),
                Schedule::Static,
                None,
                |i| scan_min(tv[i]),
                |a, b| match (a, b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, None) => x,
                    (None, y) => y,
                },
            )
        };
        match next_min {
            Some(d) => bucket = d / delta_d,
            None => break,
        }
    }

    dist.copy_from_slice(t.as_full_slice());
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::wedges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn tiny_graph_distances() {
        let g = Builder::new()
            .build_weighted(wedges([(0, 1, 1), (1, 2, 1), (0, 2, 5)]))
            .unwrap();
        let gd = Builder::new()
            .build(gapbs_graph::edgelist::edges([(0, 1), (1, 2), (0, 2)]))
            .unwrap();
        let ctx = LaGraphContext::from_wgraph(&gd, &g);
        assert_eq!(sssp(&ctx, 0, 2, &pool()), vec![0, 1, 2]);
    }

    #[test]
    fn matches_dijkstra_for_multiple_deltas() {
        let edges = gen::kron_edges(7, 8, 11);
        let wg = gen::weighted_companion(128, &edges, true, 11);
        let g = {
            let mut b = Vec::new();
            for u in wg.vertices() {
                for v in wg.out_neighbors(u) {
                    b.push(gapbs_graph::Edge::new(u, *v));
                }
            }
            Builder::new().num_vertices(128).build(b).unwrap()
        };
        let ctx = LaGraphContext::from_wgraph(&g, &wg);
        let want = gapbs_verify_dijkstra(&wg, 0);
        let pool = pool();
        for delta in [1, 16, 300] {
            assert_eq!(sssp(&ctx, 0, delta, &pool), want, "delta={delta}");
        }
    }

    fn gapbs_verify_dijkstra(g: &gapbs_graph::WGraph, source: NodeId) -> Vec<Distance> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![INF_DIST; g.num_vertices()];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0 as Distance, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.out_neighbors_weighted(u) {
                let nd = d + Distance::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = Builder::new()
            .num_vertices(3)
            .build(gapbs_graph::edgelist::edges([(0, 1)]))
            .unwrap();
        let wg = Builder::new()
            .num_vertices(3)
            .build_weighted(wedges([(0, 1, 2)]))
            .unwrap();
        let ctx = LaGraphContext::from_wgraph(&g, &wg);
        let d = sssp(&ctx, 0, 4, &pool());
        assert_eq!(d, vec![0, 2, INF_DIST]);
    }
}
