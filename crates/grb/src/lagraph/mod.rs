//! LAGraph-style graph kernels, written strictly against the GraphBLAS
//! engine ([`ops`](crate::ops), [`GrbMatrix`], [`GrbVector`](crate::GrbVector)).
//!
//! Per the paper (§III-A): "GraphBLAS does not include any graph
//! algorithms directly; these are in algorithms that use GraphBLAS." This
//! module is the analogue of the six LAGraph algorithms the SuiteSparse
//! team developed for the GAP benchmark.

mod bc;
mod bc_batch;
mod bfs;
mod cc;
mod pr;
mod sssp;
mod tc;

pub use bc::bc;
pub use bc_batch::{bc_batch, BATCH};
pub use bfs::bfs;
pub use cc::cc;
pub use pr::pr;
pub use sssp::sssp;
pub use tc::tc;

use crate::matrix::GrbMatrix;
use crate::workspace::OpWorkspace;
use gapbs_graph::{Graph, OffsetIndex, WGraph};

/// Prepared GraphBLAS state for one benchmark graph: the adjacency matrix,
/// its transpose, and (for SSSP) the weighted matrix.
///
/// Building these is graph *loading* for a linear-algebra framework — its
/// native graph format is the matrix — so it happens outside the timed
/// region, exactly as GAP lets every framework store both graph directions
/// ahead of time.
#[derive(Debug, Clone)]
pub struct LaGraphContext {
    /// Adjacency matrix (out-edges).
    pub a: GrbMatrix,
    /// Transposed adjacency (in-edges).
    pub at: GrbMatrix,
    /// Weighted adjacency, when the graph has weights.
    pub aw: Option<GrbMatrix>,
    /// Out-degrees as a dense vector (used by PR and the BFS frontier
    /// accounting).
    pub out_degree: Vec<u64>,
    /// Whether the source graph was directed.
    pub directed: bool,
    /// Reusable operation scratch (SPAs, spill buffers); every engine
    /// call on this context draws from it instead of allocating.
    /// Cloning a context starts with a cold (empty) workspace.
    pub workspace: OpWorkspace,
}

impl LaGraphContext {
    /// Prepares matrices for an unweighted graph.
    pub fn from_graph<O: OffsetIndex>(g: &Graph<O>) -> Self {
        let a = GrbMatrix::from_graph(g);
        let at = GrbMatrix::from_graph_transposed(g);
        let out_degree = g.vertices().map(|u| g.out_degree(u) as u64).collect();
        LaGraphContext {
            a,
            at,
            aw: None,
            out_degree,
            directed: g.is_directed(),
            workspace: OpWorkspace::new(),
        }
    }

    /// Prepares matrices for a weighted graph (adds `aw`).
    pub fn from_wgraph<O: OffsetIndex>(g: &Graph<O>, wg: &WGraph<O>) -> Self {
        let mut ctx = Self::from_graph(g);
        ctx.aw = Some(GrbMatrix::from_wgraph(wg));
        ctx
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.a.nrows()
    }
}
