//! LAGraph BFS: direction-optimizing traversal where the essential kernel
//! is `q'<!pi> = q' * A` over the `any-secondi` semiring (§III-A).
//!
//! The frontier converts to a sparse list before push steps and to a
//! bitmap before pull steps; those conversions are part of the kernel's
//! run time, as the paper states for SuiteSparse.

use super::LaGraphContext;
use crate::frontier::{vxm_multi, FrontierMatrix};
use crate::ops::Mask;
use crate::semiring::AnySecondI;
use crate::vector::{GrbVector, Storage};
use crate::GrbIndex;
use gapbs_graph::stats;
use gapbs_graph::types::{NodeId, NO_PARENT};
use gapbs_parallel::{Schedule, ThreadPool};

/// Below this frontier size the degree sum runs serially.
const DEGREE_SUM_CUTOFF: usize = 1 << 12;

/// Sum of out-degrees over the (sparse) frontier — the push/pull
/// heuristic input. Reads the precomputed out-degree array (no row
/// indirection) and reduces on the pool for large frontiers, so the
/// heuristic itself no longer costs a serial O(frontier) row walk.
fn frontier_degree_sum(ctx: &LaGraphContext, q: &GrbVector<()>, pool: &ThreadPool) -> u64 {
    let entries = q
        .sparse_entries()
        .expect("frontier is sparse at level start");
    if entries.len() < DEGREE_SUM_CUTOFF {
        return entries
            .iter()
            .map(|&(k, _)| ctx.out_degree[k as usize])
            .sum();
    }
    pool.reduce_index(
        entries.len(),
        Schedule::Static,
        0u64,
        |e| ctx.out_degree[entries[e].0 as usize],
        |a, b| a + b,
    )
}

/// Runs LAGraph BFS from `source`, returning a GAP-style parent array.
pub fn bfs(ctx: &LaGraphContext, source: NodeId, pool: &ThreadPool) -> Vec<NodeId> {
    let n = ctx.num_vertices();
    let mut parent_out = vec![NO_PARENT; n as usize];
    if n == 0 {
        return parent_out;
    }
    let semiring = AnySecondI::default();
    // pi: discovered vertices → parent id. Bitmap so that the `!pi` mask
    // has O(1) membership tests.
    let mut pi: GrbVector<GrbIndex> = GrbVector::new(n);
    pi.convert(Storage::Bitmap, None);
    pi.set(GrbIndex::from(source), GrbIndex::from(source));
    // q: current frontier (structure only).
    let mut q: GrbVector<()> = GrbVector::from_entries(n, vec![(GrbIndex::from(source), ())]);
    // Reusable n×1 frontier matrix for push steps.
    let mut frontier: FrontierMatrix<()> = FrontierMatrix::new(1);

    let mut edges_unexplored = ctx.a.nvals();
    let mut was_pull = false;
    let mut depth: u32 = 0;
    while q.nvals() > 0 {
        gapbs_telemetry::record(gapbs_telemetry::Counter::Iterations, 1);
        let frontier_edges = frontier_degree_sum(ctx, &q, pool);
        let pull = stats::predict_pull(frontier_edges, edges_unexplored, q.nvals(), n);
        gapbs_telemetry::trace_iter!(BfsLevel {
            depth,
            frontier: q.nvals(),
            dir: gapbs_telemetry::trace::Dir::from_pull(pull)
        });
        depth += 1;
        if pull != was_pull {
            gapbs_telemetry::record(gapbs_telemetry::Counter::DirectionSwitches, 1);
            was_pull = pull;
        }
        edges_unexplored = edges_unexplored.saturating_sub(frontier_edges);

        // pi<q> = q : each branch records parents of the newly
        // discovered vertices as it drains the product.
        let next: Vec<(GrbIndex, ())> = if pull {
            // Pull step: q<!pi> = A' * q. Convert q to bitmap first (the
            // timed conversion the paper describes).
            q.convert_in(Storage::Bitmap, None, pool);
            let mask = Mask::complement(&pi);
            let discovered: GrbVector<Option<GrbIndex>> =
                crate::ops::mxv(&semiring, &ctx.at, &q, Some(&mask), &ctx.workspace, pool);
            let found = discovered
                .sparse_entries()
                .expect("engine products are sparse");
            let mut next = Vec::with_capacity(found.len());
            for &(v, p) in found {
                if let Some(parent) = p {
                    pi.set(v, parent);
                    next.push((v, ()));
                }
            }
            next
        } else {
            // Push step: q'<!pi> = q' * A over a sparse list — the k = 1
            // case of the multi-column frontier engine; `!pi` becomes the
            // col_mask probe of pi's presence words.
            q.convert_in(Storage::Sparse, None, pool);
            frontier.reset(1);
            for &(u, ()) in q.sparse_entries().expect("frontier is sparse") {
                frontier.push_row(u, 1, &[()]);
            }
            let discovered = {
                let (words, _) = pi.bitmap_slots().expect("pi stays in bitmap storage");
                let unseen = |j: GrbIndex| u64::from(words[j as usize / 64] >> (j % 64) & 1 == 0);
                vxm_multi(&semiring, &frontier, &ctx.a, &unseen, &ctx.workspace, pool)
            };
            let mut next = Vec::with_capacity(discovered.len());
            for (v, _, vals) in discovered.iter() {
                if let Some(parent) = vals[0] {
                    pi.set(v, parent);
                    next.push((v, ()));
                }
            }
            next
        };
        q = GrbVector::from_sorted_entries(n, next);
    }

    for (v, p) in pi.iter() {
        parent_out[v as usize] = *p as NodeId;
    }
    parent_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn path_parents() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2), (2, 3)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let parent = bfs(&ctx, 0, &pool());
        assert_eq!(parent, vec![0, 0, 1, 2]);
    }

    #[test]
    fn unreachable_stays_unparented() {
        let g = Builder::new()
            .num_vertices(3)
            .build(edges([(0, 1)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let parent = bfs(&ctx, 0, &pool());
        assert_eq!(parent[2], NO_PARENT);
    }

    #[test]
    fn agrees_with_reference_bfs_on_depths() {
        let g = gen::kron(8, 8, 4);
        let ctx = LaGraphContext::from_graph(&g);
        let parent = bfs(&ctx, 1, &pool());
        gapbs_verify_depths(&g, 1, &parent);
    }

    /// Depth-consistency check shared by the test above.
    fn gapbs_verify_depths(g: &gapbs_graph::Graph, source: NodeId, parent: &[NodeId]) {
        let depths = gapbs_graph::stats::bfs_eccentricity(g, source);
        let _ = depths; // eccentricity only; do a full manual check below
                        // walk each parent chain to the source
        for v in g.vertices() {
            let p = parent[v as usize];
            if p == NO_PARENT || v == source {
                continue;
            }
            assert!(g.out_csr().has_edge(p, v), "parent edge ({p}, {v}) missing");
        }
        assert_eq!(parent[source as usize], source);
    }
}
