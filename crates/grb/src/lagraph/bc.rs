//! LAGraph betweenness centrality: batch Brandes over the `plus-second` /
//! `plus-first` semirings, using the frontier-per-level structure the
//! LAGraph implementation keeps ("a mere 97 lines of very readable code",
//! §V-E). Roots are processed as a batch of independent sweeps.

use super::LaGraphContext;
use crate::ops::{vxm, Mask};
use crate::semiring::PlusSecond;
use crate::vector::{GrbVector, Storage};
use crate::GrbIndex;
use gapbs_graph::types::{NodeId, Score};
use gapbs_parallel::ThreadPool;

/// Runs batch Brandes BC from `sources`, returning scores normalized by
/// the maximum (the GAP output convention).
pub fn bc(ctx: &LaGraphContext, sources: &[NodeId], pool: &ThreadPool) -> Vec<Score> {
    let n = ctx.num_vertices();
    let mut scores = vec![0.0; n as usize];
    if n == 0 {
        return scores;
    }
    let semiring = PlusSecond::default();
    for &s in sources {
        // Forward: per-level frontiers carrying shortest-path counts.
        // Bitmap storage gives the `!numsp` mask O(1) word-probe tests
        // and `set`/`get` O(1) slot access as the discovered set grows.
        let mut numsp: GrbVector<f64> = GrbVector::new(n);
        numsp.convert(Storage::Bitmap, None);
        numsp.set(GrbIndex::from(s), 1.0);
        let mut frontier = GrbVector::from_entries(n, vec![(GrbIndex::from(s), 1.0f64)]);
        let mut levels: Vec<GrbVector<f64>> = vec![frontier.clone()];
        while frontier.nvals() > 0 {
            // q<!numsp> = frontier' * A : propagate path counts.
            let mask = Mask::complement(&numsp);
            let next: GrbVector<f64> = vxm(
                &semiring,
                &frontier,
                &ctx.a,
                Some(&mask),
                &ctx.workspace,
                pool,
            );
            for (i, &v) in next.iter() {
                numsp.set(i, v);
            }
            if next.nvals() == 0 {
                break;
            }
            levels.push(next.clone());
            frontier = next;
        }
        // Backward: dependency accumulation level by level.
        let mut delta: Vec<f64> = vec![0.0; n as usize];
        for d in (1..levels.len()).rev() {
            // t1_j = (1 + delta_j) / numsp_j over level-d vertices.
            let t1_entries: Vec<(GrbIndex, f64)> = levels[d]
                .iter()
                .map(|(j, _)| {
                    let sp = *numsp.get(j).expect("level vertex has path count");
                    (j, (1.0 + delta[j as usize]) / sp)
                })
                .collect();
            let t1 = GrbVector::from_entries(n, t1_entries);
            // t2<level d-1> = t1' * A' : pull contributions back one level.
            let mask = Mask::structural(&levels[d - 1]);
            let t2: GrbVector<f64> =
                vxm(&semiring, &t1, &ctx.at, Some(&mask), &ctx.workspace, pool);
            for (i, &v) in t2.iter() {
                let sp = *numsp.get(i).expect("level vertex has path count");
                delta[i as usize] += v * sp;
            }
        }
        for (v, d) in delta.iter().enumerate() {
            if v as NodeId != s {
                scores[v] += d;
            }
        }
    }
    let max = scores.iter().cloned().fold(0.0, f64::max);
    if max > 0.0 {
        for s in &mut scores {
            *s /= max;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    /// Sequential Brandes oracle (same convention).
    fn oracle(g: &gapbs_graph::Graph, sources: &[NodeId]) -> Vec<Score> {
        use std::collections::VecDeque;
        let n = g.num_vertices();
        let mut scores = vec![0.0; n];
        for &s in sources {
            let mut depth = vec![i64::MAX; n];
            let mut sigma = vec![0.0f64; n];
            let mut order = Vec::new();
            let mut q = VecDeque::new();
            depth[s as usize] = 0;
            sigma[s as usize] = 1.0;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                order.push(u);
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == i64::MAX {
                        depth[v as usize] = depth[u as usize] + 1;
                        q.push_back(v);
                    }
                    if depth[v as usize] == depth[u as usize] + 1 {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            for &u in order.iter().rev() {
                for &v in g.out_neighbors(u) {
                    if depth[v as usize] == depth[u as usize] + 1 {
                        delta[u as usize] +=
                            (sigma[u as usize] / sigma[v as usize]) * (1.0 + delta[v as usize]);
                    }
                }
                if u != s {
                    scores[u as usize] += delta[u as usize];
                }
            }
        }
        let max = scores.iter().cloned().fold(0.0, f64::max);
        if max > 0.0 {
            for s in &mut scores {
                *s /= max;
            }
        }
        scores
    }

    fn assert_close(a: &[Score], b: &[Score]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn diamond_splits_dependency() {
        let g = Builder::new()
            .build(edges([(0, 1), (0, 2), (1, 3), (2, 3)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let got = bc(&ctx, &[0], &pool());
        assert_close(&got, &oracle(&g, &[0]));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 1..4 {
            let g = gen::kron(7, 8, seed);
            let ctx = LaGraphContext::from_graph(&g);
            let sources = [0, 5, 9, 33];
            assert_close(&bc(&ctx, &sources, &pool()), &oracle(&g, &sources));
        }
    }

    #[test]
    fn source_itself_scores_zero_on_a_path() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2)]))
            .unwrap();
        let ctx = LaGraphContext::from_graph(&g);
        let got = bc(&ctx, &[0], &pool());
        assert_eq!(got[0], 0.0);
        assert!(got[1] > 0.0);
    }
}
