//! GraphBLAS vectors with switchable storage.
//!
//! SuiteSparse internally moves vectors between a sparse list, a bitmap
//! and a full array; the paper notes the BFS converts `q` to a bitmap for
//! pull steps and to a sparse list for push steps, *with the conversion
//! time included in the run time*. [`GrbVector`] exposes the same three
//! representations and explicit conversions so the kernels can (and must)
//! pay that cost.

use crate::GrbIndex;

/// Storage representation of a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Sorted `(index, value)` list — best for very sparse vectors.
    Sparse,
    /// Presence bitmap plus value slots — best for medium density and
    /// O(1) membership tests.
    Bitmap,
    /// Every entry present — best for dense data like PageRank scores.
    Full,
}

#[derive(Debug, Clone)]
enum Repr<T> {
    Sparse(Vec<(GrbIndex, T)>),
    Bitmap(Vec<Option<T>>),
    Full(Vec<T>),
}

/// A GraphBLAS vector of logical length `n` with explicit entries.
#[derive(Debug, Clone)]
pub struct GrbVector<T> {
    n: GrbIndex,
    repr: Repr<T>,
}

impl<T: Clone> GrbVector<T> {
    /// An empty sparse vector of length `n`.
    pub fn new(n: GrbIndex) -> Self {
        GrbVector {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A full vector with every entry set to `fill`.
    pub fn full(n: GrbIndex, fill: T) -> Self {
        GrbVector {
            n,
            repr: Repr::Full(vec![fill; n as usize]),
        }
    }

    /// A sparse vector from `(index, value)` entries.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or duplicated.
    pub fn from_entries(n: GrbIndex, mut entries: Vec<(GrbIndex, T)>) -> Self {
        entries.sort_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate index {}", w[0].0);
        }
        if let Some(&(last, _)) = entries.last() {
            assert!(last < n, "index {last} out of range {n}");
        }
        GrbVector {
            n,
            repr: Repr::Sparse(entries),
        }
    }

    /// Logical length.
    pub fn size(&self) -> GrbIndex {
        self.n
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> u64 {
        match &self.repr {
            Repr::Sparse(v) => v.len() as u64,
            Repr::Bitmap(b) => b.iter().filter(|e| e.is_some()).count() as u64,
            Repr::Full(v) => v.len() as u64,
        }
    }

    /// Current storage representation.
    pub fn storage(&self) -> Storage {
        match &self.repr {
            Repr::Sparse(_) => Storage::Sparse,
            Repr::Bitmap(_) => Storage::Bitmap,
            Repr::Full(_) => Storage::Full,
        }
    }

    /// Value at `i`, if present.
    pub fn get(&self, i: GrbIndex) -> Option<&T> {
        match &self.repr {
            Repr::Sparse(v) => v
                .binary_search_by_key(&i, |&(idx, _)| idx)
                .ok()
                .map(|pos| &v[pos].1),
            Repr::Bitmap(b) => b[i as usize].as_ref(),
            Repr::Full(v) => Some(&v[i as usize]),
        }
    }

    /// `true` if entry `i` exists.
    pub fn contains(&self, i: GrbIndex) -> bool {
        self.get(i).is_some()
    }

    /// Sets entry `i` to `value` (inserting if absent).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: GrbIndex, value: T) {
        assert!(i < self.n, "index {i} out of range {}", self.n);
        match &mut self.repr {
            Repr::Sparse(v) => match v.binary_search_by_key(&i, |&(idx, _)| idx) {
                Ok(pos) => v[pos].1 = value,
                Err(pos) => v.insert(pos, (i, value)),
            },
            Repr::Bitmap(b) => b[i as usize] = Some(value),
            Repr::Full(v) => v[i as usize] = value,
        }
    }

    /// Iterates `(index, value)` entries in ascending index order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (GrbIndex, &T)> + '_> {
        match &self.repr {
            Repr::Sparse(v) => Box::new(v.iter().map(|(i, t)| (*i, t))),
            Repr::Bitmap(b) => Box::new(
                b.iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.as_ref().map(|t| (i as GrbIndex, t))),
            ),
            Repr::Full(v) => Box::new(v.iter().enumerate().map(|(i, t)| (i as GrbIndex, t))),
        }
    }

    /// Converts to the requested representation, returning the number of
    /// entries moved (a proxy for the conversion cost SuiteSparse pays).
    /// Converting to `Full` requires a `fill` for missing entries.
    pub fn convert(&mut self, to: Storage, fill: Option<T>) -> u64 {
        let moved = self.nvals();
        let n = self.n as usize;
        let old = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        self.repr = match to {
            Storage::Sparse => {
                let mut entries: Vec<(GrbIndex, T)> = Vec::new();
                collect_entries(old, &mut entries);
                Repr::Sparse(entries)
            }
            Storage::Bitmap => {
                let mut slots: Vec<Option<T>> = vec![None; n];
                let mut entries = Vec::new();
                collect_entries(old, &mut entries);
                for (i, t) in entries {
                    slots[i as usize] = Some(t);
                }
                Repr::Bitmap(slots)
            }
            Storage::Full => {
                let fill = fill.expect("converting to Full requires a fill value");
                let mut values = vec![fill; n];
                let mut entries = Vec::new();
                collect_entries(old, &mut entries);
                for (i, t) in entries {
                    values[i as usize] = t;
                }
                Repr::Full(values)
            }
        };
        moved
    }

    /// Removes all entries (keeps the representation).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(v) => v.clear(),
            Repr::Bitmap(b) => b.iter_mut().for_each(|e| *e = None),
            Repr::Full(_) => {
                self.repr = Repr::Sparse(Vec::new());
            }
        }
    }

    /// Direct slice access for full vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not in `Full` storage.
    pub fn as_full_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Full(v) => v,
            _ => panic!("vector is not in Full storage"),
        }
    }

    /// Mutable slice access for full vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not in `Full` storage.
    pub fn as_full_slice_mut(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Full(v) => v,
            _ => panic!("vector is not in Full storage"),
        }
    }
}

fn collect_entries<T>(repr: Repr<T>, out: &mut Vec<(GrbIndex, T)>) {
    match repr {
        Repr::Sparse(v) => out.extend(v),
        Repr::Bitmap(b) => out.extend(
            b.into_iter()
                .enumerate()
                .filter_map(|(i, e)| e.map(|t| (i as GrbIndex, t))),
        ),
        Repr::Full(v) => out.extend(v.into_iter().enumerate().map(|(i, t)| (i as GrbIndex, t))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_set_get_roundtrip() {
        let mut v: GrbVector<i32> = GrbVector::new(10);
        assert_eq!(v.nvals(), 0);
        v.set(3, 30);
        v.set(7, 70);
        v.set(3, 31); // overwrite
        assert_eq!(v.get(3), Some(&31));
        assert_eq!(v.get(4), None);
        assert_eq!(v.nvals(), 2);
    }

    #[test]
    fn conversions_preserve_entries() {
        let mut v = GrbVector::from_entries(8, vec![(1, 'a'), (5, 'b')]);
        for (to, fill) in [
            (Storage::Bitmap, None),
            (Storage::Sparse, None),
            (Storage::Full, Some('?')),
        ] {
            let moved = v.convert(to, fill);
            assert_eq!(moved, 2, "both entries move on every conversion");
            assert_eq!(v.storage(), to);
            assert_eq!(v.get(1), Some(&'a'));
            assert_eq!(v.get(5), Some(&'b'));
        }
        // Full storage fills the holes.
        assert_eq!(v.get(0), Some(&'?'));
        assert_eq!(v.nvals(), 8);
    }

    #[test]
    fn iter_is_index_ordered() {
        let v = GrbVector::from_entries(10, vec![(7, 1), (2, 2), (4, 3)]);
        let idx: Vec<GrbIndex> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![2, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_entries_rejected() {
        let _ = GrbVector::from_entries(4, vec![(1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_rejected() {
        let mut v: GrbVector<u8> = GrbVector::new(2);
        v.set(2, 0);
    }

    #[test]
    fn full_slice_access() {
        let mut v = GrbVector::full(3, 1.5f64);
        v.as_full_slice_mut()[1] = 2.5;
        assert_eq!(v.as_full_slice(), &[1.5, 2.5, 1.5]);
    }
}
