//! GraphBLAS vectors with switchable storage.
//!
//! SuiteSparse internally moves vectors between a sparse list, a bitmap
//! and a full array; the paper notes the BFS converts `q` to a bitmap for
//! pull steps and to a sparse list for push steps, *with the conversion
//! time included in the run time*. [`GrbVector`] exposes the same three
//! representations and explicit conversions so the kernels can (and must)
//! pay that cost.
//!
//! The operation engine leans on three things this module provides:
//! a **cached entry count** (`nvals` is O(1), never a scan), a
//! **word-packed presence bitmap** for Bitmap storage (mask tests are one
//! `u64` probe instead of a binary search), and **slice accessors**
//! (`sparse_entries`/`full_values`/`bitmap_slots`) so hot loops iterate
//! borrowed slices instead of a `Box<dyn Iterator>`.

use crate::GrbIndex;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};

/// Storage representation of a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Sorted `(index, value)` list — best for very sparse vectors.
    Sparse,
    /// Presence bitmap plus value slots — best for medium density and
    /// O(1) membership tests.
    Bitmap,
    /// Every entry present — best for dense data like PageRank scores.
    Full,
}

#[derive(Debug, Clone)]
enum Repr<T> {
    Sparse(Vec<(GrbIndex, T)>),
    Bitmap {
        /// Presence bits, one word per 64 indices (`words[i / 64] >> (i % 64) & 1`).
        words: Vec<u64>,
        /// Value slots; `slots[i]` is `Some` exactly when bit `i` is set.
        slots: Vec<Option<T>>,
    },
    Full(Vec<T>),
}

/// Below this logical length the pooled conversion paths run serially —
/// region launch overhead would dominate the data movement.
const CONVERT_CUTOFF: usize = 1 << 12;

/// Index block width for ordered parallel gathers (Bitmap/Full → Sparse).
const GATHER_BLOCK: usize = 1 << 12;

fn word_count(n: GrbIndex) -> usize {
    (n as usize).div_ceil(64)
}

/// Builds the presence words for a sorted unique entry list.
fn words_of_entries<T>(n: GrbIndex, entries: &[(GrbIndex, T)]) -> Vec<u64> {
    let mut words = vec![0u64; word_count(n)];
    for &(i, _) in entries {
        words[i as usize / 64] |= 1 << (i % 64);
    }
    words
}

/// A GraphBLAS vector of logical length `n` with explicit entries.
#[derive(Debug, Clone)]
pub struct GrbVector<T> {
    n: GrbIndex,
    /// Cached entry count; maintained by every mutating method.
    nvals: u64,
    repr: Repr<T>,
}

impl<T: Clone> GrbVector<T> {
    /// An empty sparse vector of length `n`.
    pub fn new(n: GrbIndex) -> Self {
        GrbVector {
            n,
            nvals: 0,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A full vector with every entry set to `fill`.
    pub fn full(n: GrbIndex, fill: T) -> Self {
        GrbVector {
            n,
            nvals: n,
            repr: Repr::Full(vec![fill; n as usize]),
        }
    }

    /// A sparse vector from `(index, value)` entries.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or duplicated.
    pub fn from_entries(n: GrbIndex, mut entries: Vec<(GrbIndex, T)>) -> Self {
        entries.sort_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate index {}", w[0].0);
        }
        if let Some(&(last, _)) = entries.last() {
            assert!(last < n, "index {last} out of range {n}");
        }
        GrbVector {
            n,
            nvals: entries.len() as u64,
            repr: Repr::Sparse(entries),
        }
    }

    /// A sparse vector from entries already sorted by index — the
    /// operation engine's constructor for outputs it produced in order.
    ///
    /// # Panics
    ///
    /// Panics if the last index is out of range; sortedness and
    /// uniqueness are debug-asserted.
    pub fn from_sorted_entries(n: GrbIndex, entries: Vec<(GrbIndex, T)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        if let Some(&(last, _)) = entries.last() {
            assert!(last < n, "index {last} out of range {n}");
        }
        GrbVector {
            n,
            nvals: entries.len() as u64,
            repr: Repr::Sparse(entries),
        }
    }

    /// Logical length.
    pub fn size(&self) -> GrbIndex {
        self.n
    }

    /// Number of stored entries — O(1), the count is cached.
    pub fn nvals(&self) -> u64 {
        self.nvals
    }

    /// Current storage representation.
    pub fn storage(&self) -> Storage {
        match &self.repr {
            Repr::Sparse(_) => Storage::Sparse,
            Repr::Bitmap { .. } => Storage::Bitmap,
            Repr::Full(_) => Storage::Full,
        }
    }

    /// Value at `i`, if present.
    pub fn get(&self, i: GrbIndex) -> Option<&T> {
        match &self.repr {
            Repr::Sparse(v) => v
                .binary_search_by_key(&i, |&(idx, _)| idx)
                .ok()
                .map(|pos| &v[pos].1),
            Repr::Bitmap { slots, .. } => slots[i as usize].as_ref(),
            Repr::Full(v) => Some(&v[i as usize]),
        }
    }

    /// `true` if entry `i` exists. Bitmap storage answers with one word
    /// probe.
    pub fn contains(&self, i: GrbIndex) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.binary_search_by_key(&i, |&(idx, _)| idx).is_ok(),
            Repr::Bitmap { words, .. } => words[i as usize / 64] >> (i % 64) & 1 != 0,
            Repr::Full(_) => true,
        }
    }

    /// Sets entry `i` to `value` (inserting if absent).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: GrbIndex, value: T) {
        assert!(i < self.n, "index {i} out of range {}", self.n);
        match &mut self.repr {
            Repr::Sparse(v) => {
                match v.binary_search_by_key(&i, |&(idx, _)| idx) {
                    Ok(pos) => v[pos].1 = value,
                    Err(pos) => v.insert(pos, (i, value)),
                }
                self.nvals = v.len() as u64;
            }
            Repr::Bitmap { words, slots } => {
                let (w, b) = (i as usize / 64, i % 64);
                if words[w] >> b & 1 == 0 {
                    words[w] |= 1 << b;
                    self.nvals += 1;
                }
                slots[i as usize] = Some(value);
            }
            Repr::Full(v) => v[i as usize] = value,
        }
    }

    /// Iterates `(index, value)` entries in ascending index order.
    ///
    /// Hot loops should prefer the slice accessors ([`sparse_entries`],
    /// [`full_values`], [`bitmap_slots`]) over this boxed iterator.
    ///
    /// [`sparse_entries`]: GrbVector::sparse_entries
    /// [`full_values`]: GrbVector::full_values
    /// [`bitmap_slots`]: GrbVector::bitmap_slots
    pub fn iter(&self) -> Box<dyn Iterator<Item = (GrbIndex, &T)> + '_> {
        match &self.repr {
            Repr::Sparse(v) => Box::new(v.iter().map(|(i, t)| (*i, t))),
            Repr::Bitmap { slots, .. } => Box::new(
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.as_ref().map(|t| (i as GrbIndex, t))),
            ),
            Repr::Full(v) => Box::new(v.iter().enumerate().map(|(i, t)| (i as GrbIndex, t))),
        }
    }

    /// The sorted entry slice, when in Sparse storage.
    pub fn sparse_entries(&self) -> Option<&[(GrbIndex, T)]> {
        match &self.repr {
            Repr::Sparse(v) => Some(v),
            _ => None,
        }
    }

    /// The dense value slice, when in Full storage.
    pub fn full_values(&self) -> Option<&[T]> {
        match &self.repr {
            Repr::Full(v) => Some(v),
            _ => None,
        }
    }

    /// The presence words and value slots, when in Bitmap storage.
    pub fn bitmap_slots(&self) -> Option<(&[u64], &[Option<T>])> {
        match &self.repr {
            Repr::Bitmap { words, slots } => Some((words, slots)),
            _ => None,
        }
    }

    /// Converts to the requested representation, returning the number of
    /// entries moved (a proxy for the conversion cost SuiteSparse pays).
    /// Converting to `Full` requires a `fill` for missing entries.
    pub fn convert(&mut self, to: Storage, fill: Option<T>) -> u64 {
        let moved = self.nvals;
        let n = self.n as usize;
        let old = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        self.repr = match to {
            Storage::Sparse => {
                let mut entries: Vec<(GrbIndex, T)> = Vec::new();
                collect_entries(old, &mut entries);
                self.nvals = entries.len() as u64;
                Repr::Sparse(entries)
            }
            Storage::Bitmap => {
                let mut slots: Vec<Option<T>> = vec![None; n];
                let mut entries = Vec::new();
                collect_entries(old, &mut entries);
                let words = words_of_entries(self.n, &entries);
                for (i, t) in entries {
                    slots[i as usize] = Some(t);
                }
                Repr::Bitmap { words, slots }
            }
            Storage::Full => {
                let fill = fill.expect("converting to Full requires a fill value");
                let mut values = vec![fill; n];
                let mut entries = Vec::new();
                collect_entries(old, &mut entries);
                for (i, t) in entries {
                    values[i as usize] = t;
                }
                self.nvals = self.n;
                Repr::Full(values)
            }
        };
        moved
    }

    /// Direct slice access for full vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not in `Full` storage.
    pub fn as_full_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Full(v) => v,
            _ => panic!("vector is not in Full storage"),
        }
    }

    /// Mutable slice access for full vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not in `Full` storage.
    pub fn as_full_slice_mut(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Full(v) => v,
            _ => panic!("vector is not in Full storage"),
        }
    }
}

impl<T: Clone + Send + Sync> GrbVector<T> {
    /// [`convert`](GrbVector::convert) with the entry movement running on
    /// `pool` above a size cutoff. Output is value-identical to the
    /// serial conversion at every pool size.
    pub fn convert_in(&mut self, to: Storage, fill: Option<T>, pool: &ThreadPool) -> u64 {
        let n = self.n as usize;
        if pool.num_threads() == 1 || n < CONVERT_CUTOFF || self.storage() == to {
            return self.convert(to, fill);
        }
        let moved = self.nvals;
        match (
            std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new())),
            to,
        ) {
            // Sparse → Bitmap: the BFS pull-side conversion. Slot scatter
            // is parallel (entries are unique, so writes are disjoint);
            // the presence words are a serial O(nnz) bit pass.
            (Repr::Sparse(entries), Storage::Bitmap) => {
                let words = words_of_entries(self.n, &entries);
                let mut slots: Vec<Option<T>> = vec![None; n];
                let out = SharedSlice::new(&mut slots);
                pool.for_each_index(entries.len(), Schedule::Static, |e| {
                    let (i, t) = entries[e].clone();
                    // SAFETY: entry indices are unique, so each slot has
                    // one writer.
                    unsafe { out.write(i as usize, Some(t)) };
                });
                self.repr = Repr::Bitmap { words, slots };
            }
            // Sparse → Full: parallel scatter over the fill background.
            (Repr::Sparse(entries), Storage::Full) => {
                let fill = fill.expect("converting to Full requires a fill value");
                let mut values = vec![fill; n];
                let out = SharedSlice::new(&mut values);
                pool.for_each_index(entries.len(), Schedule::Static, |e| {
                    let (i, t) = entries[e].clone();
                    // SAFETY: entry indices are unique.
                    unsafe { out.write(i as usize, t.clone()) };
                });
                self.nvals = self.n;
                self.repr = Repr::Full(values);
            }
            // Bitmap/Full → Sparse: ordered parallel gather — fixed index
            // blocks collect independently and concatenate in block
            // order, so the entry list is sorted and identical to the
            // serial gather.
            (old @ (Repr::Bitmap { .. } | Repr::Full(_)), Storage::Sparse) => {
                let blocks = n.div_ceil(GATHER_BLOCK);
                let mut per_block: Vec<Vec<(GrbIndex, T)>> = vec![Vec::new(); blocks];
                let out = SharedSlice::new(&mut per_block);
                pool.for_each_index(blocks, Schedule::Dynamic(1), |b| {
                    let lo = b * GATHER_BLOCK;
                    let hi = (lo + GATHER_BLOCK).min(n);
                    let mut local = Vec::new();
                    match &old {
                        Repr::Bitmap { slots, .. } => {
                            for (i, e) in slots[lo..hi].iter().enumerate() {
                                if let Some(t) = e {
                                    local.push(((lo + i) as GrbIndex, t.clone()));
                                }
                            }
                        }
                        Repr::Full(v) => {
                            for (i, t) in v[lo..hi].iter().enumerate() {
                                local.push(((lo + i) as GrbIndex, t.clone()));
                            }
                        }
                        Repr::Sparse(_) => unreachable!("matched Bitmap/Full above"),
                    }
                    // SAFETY: one writer per block slot.
                    unsafe { out.write(b, local) };
                });
                let mut entries = Vec::with_capacity(moved as usize);
                for block in per_block {
                    entries.extend(block);
                }
                self.nvals = entries.len() as u64;
                self.repr = Repr::Sparse(entries);
            }
            // Remaining combinations are cold in the kernels; restore and
            // take the serial path.
            (old, _) => {
                self.repr = old;
                return self.convert(to, fill);
            }
        }
        moved
    }
}

impl<T: Clone + Default> GrbVector<T> {
    /// Removes all entries, keeping the representation. `Full` storage
    /// has no notion of absence, so its slots reset to `T::default()`
    /// and the vector stays full (callers relying on
    /// [`as_full_slice_mut`](GrbVector::as_full_slice_mut) after a clear
    /// keep working).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(v) => {
                v.clear();
                self.nvals = 0;
            }
            Repr::Bitmap { words, slots } => {
                words.fill(0);
                slots.iter_mut().for_each(|e| *e = None);
                self.nvals = 0;
            }
            Repr::Full(v) => {
                v.fill(T::default());
                self.nvals = self.n;
            }
        }
    }
}

fn collect_entries<T>(repr: Repr<T>, out: &mut Vec<(GrbIndex, T)>) {
    match repr {
        Repr::Sparse(v) => out.extend(v),
        Repr::Bitmap { slots, .. } => out.extend(
            slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, e)| e.map(|t| (i as GrbIndex, t))),
        ),
        Repr::Full(v) => out.extend(v.into_iter().enumerate().map(|(i, t)| (i as GrbIndex, t))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_set_get_roundtrip() {
        let mut v: GrbVector<i32> = GrbVector::new(10);
        assert_eq!(v.nvals(), 0);
        v.set(3, 30);
        v.set(7, 70);
        v.set(3, 31); // overwrite
        assert_eq!(v.get(3), Some(&31));
        assert_eq!(v.get(4), None);
        assert_eq!(v.nvals(), 2);
    }

    #[test]
    fn conversions_preserve_entries() {
        let mut v = GrbVector::from_entries(8, vec![(1, 'a'), (5, 'b')]);
        for (to, fill) in [
            (Storage::Bitmap, None),
            (Storage::Sparse, None),
            (Storage::Full, Some('?')),
        ] {
            let moved = v.convert(to, fill);
            assert_eq!(moved, 2, "both entries move on every conversion");
            assert_eq!(v.storage(), to);
            assert_eq!(v.get(1), Some(&'a'));
            assert_eq!(v.get(5), Some(&'b'));
        }
        // Full storage fills the holes.
        assert_eq!(v.get(0), Some(&'?'));
        assert_eq!(v.nvals(), 8);
    }

    #[test]
    fn iter_is_index_ordered() {
        let v = GrbVector::from_entries(10, vec![(7, 1), (2, 2), (4, 3)]);
        let idx: Vec<GrbIndex> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![2, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_entries_rejected() {
        let _ = GrbVector::from_entries(4, vec![(1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_rejected() {
        let mut v: GrbVector<u8> = GrbVector::new(2);
        v.set(2, 0);
    }

    #[test]
    fn full_slice_access() {
        let mut v = GrbVector::full(3, 1.5f64);
        v.as_full_slice_mut()[1] = 2.5;
        assert_eq!(v.as_full_slice(), &[1.5, 2.5, 1.5]);
    }

    #[test]
    fn nvals_stays_cached_through_mutation_and_conversion() {
        let mut v: GrbVector<u8> = GrbVector::new(200);
        v.convert(Storage::Bitmap, None);
        for i in 0..100 {
            v.set(i * 2, i as u8);
        }
        v.set(0, 9); // overwrite must not double-count
        assert_eq!(v.nvals(), 100);
        assert!(v.contains(0) && v.contains(198) && !v.contains(1));
        v.convert(Storage::Sparse, None);
        assert_eq!(v.nvals(), 100);
        v.convert(Storage::Full, Some(0));
        assert_eq!(v.nvals(), 200);
    }

    #[test]
    fn clear_keeps_full_storage_for_slice_callers() {
        // Regression: `clear` used to silently switch Full storage to
        // Sparse, so a following `as_full_slice_mut` panicked.
        let mut v = GrbVector::full(4, 7u64);
        v.clear();
        assert_eq!(v.storage(), Storage::Full);
        v.as_full_slice_mut()[2] = 5;
        assert_eq!(v.as_full_slice(), &[0, 0, 5, 0]);

        let mut b: GrbVector<u64> = GrbVector::new(130);
        b.convert(Storage::Bitmap, None);
        b.set(129, 1);
        b.clear();
        assert_eq!(b.storage(), Storage::Bitmap);
        assert_eq!(b.nvals(), 0);
        assert!(!b.contains(129));
    }

    #[test]
    fn pooled_convert_matches_serial_convert() {
        let n: GrbIndex = 3 * CONVERT_CUTOFF as GrbIndex;
        let entries: Vec<(GrbIndex, u32)> = (0..n).step_by(3).map(|i| (i, i as u32)).collect();
        let pool = ThreadPool::new(4);
        for (to, fill) in [
            (Storage::Bitmap, None),
            (Storage::Sparse, None),
            (Storage::Full, Some(0)),
            (Storage::Sparse, None),
        ] {
            let mut serial = GrbVector::from_entries(n, entries.clone());
            let mut pooled = GrbVector::from_entries(n, entries.clone());
            // Walk both through the same conversion chain.
            serial.convert(Storage::Bitmap, None);
            pooled.convert_in(Storage::Bitmap, None, &pool);
            let a = serial.convert(to, fill);
            let b = pooled.convert_in(to, fill, &pool);
            assert_eq!(a, b, "moved counts diverge for {to:?}");
            assert_eq!(serial.nvals(), pooled.nvals());
            assert_eq!(serial.storage(), pooled.storage());
            assert!(
                serial.iter().eq(pooled.iter()),
                "entries diverge for {to:?}"
            );
        }
    }
}
