//! The GraphBLAS matrix: CSR with 64-bit indices.
//!
//! Built once from a [`Graph`] or
//! [`WGraph`] outside the timed region (GAP stores
//! both graph directions ahead of time). Weights default to 1 for pattern
//! matrices.

use crate::GrbIndex;
use gapbs_graph::{Graph, OffsetIndex, WGraph};

/// A sparse matrix in CSR form with `u64` row offsets and column indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrbMatrix {
    nrows: GrbIndex,
    ncols: GrbIndex,
    offsets: Vec<u64>,
    cols: Vec<GrbIndex>,
    weights: Vec<i32>,
}

impl GrbMatrix {
    /// Builds a pattern matrix (all weights 1) from raw CSR parts.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent offsets.
    pub fn from_csr(nrows: u64, ncols: u64, offsets: Vec<u64>, cols: Vec<GrbIndex>) -> Self {
        assert_eq!(offsets.len() as u64, nrows + 1, "offset length mismatch");
        assert_eq!(
            *offsets.last().unwrap_or(&0),
            cols.len() as u64,
            "offsets must end at nnz"
        );
        let weights = vec![1; cols.len()];
        GrbMatrix {
            nrows,
            ncols,
            offsets,
            cols,
            weights,
        }
    }

    /// Adjacency matrix of `g` (row `i` = out-neighbors of vertex `i`).
    ///
    /// Accepts either offset width; the matrix always widens to `u64`
    /// indices internally (the paper's index-width tax, kept on purpose).
    pub fn from_graph<O: OffsetIndex>(g: &Graph<O>) -> Self {
        Self::convert(g.num_vertices(), g.out_csr())
    }

    /// Transposed adjacency (row `i` = in-neighbors of vertex `i`).
    pub fn from_graph_transposed<O: OffsetIndex>(g: &Graph<O>) -> Self {
        Self::convert(g.num_vertices(), g.in_csr())
    }

    fn convert<O: OffsetIndex>(n: usize, csr: &gapbs_graph::CsrGraph<O>) -> Self {
        let offsets: Vec<u64> = csr
            .offsets_raw()
            .iter()
            .map(|&o| o.to_usize() as u64)
            .collect();
        let cols: Vec<GrbIndex> = csr
            .targets_raw()
            .iter()
            .map(|&t| GrbIndex::from(t))
            .collect();
        GrbMatrix {
            nrows: n as u64,
            ncols: n as u64,
            weights: vec![1; cols.len()],
            offsets,
            cols,
        }
    }

    /// Weighted adjacency matrix of `wg`.
    pub fn from_wgraph<O: OffsetIndex>(wg: &WGraph<O>) -> Self {
        let csr = wg.out_wcsr();
        let n = wg.num_vertices();
        let offsets: Vec<u64> = csr
            .unweighted()
            .offsets_raw()
            .iter()
            .map(|&o| o.to_usize() as u64)
            .collect();
        let cols: Vec<GrbIndex> = csr
            .unweighted()
            .targets_raw()
            .iter()
            .map(|&t| GrbIndex::from(t))
            .collect();
        GrbMatrix {
            nrows: n as u64,
            ncols: n as u64,
            offsets,
            cols,
            weights: csr.weights_raw().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> GrbIndex {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> GrbIndex {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> u64 {
        self.cols.len() as u64
    }

    /// Degree-aware row strips for pull-direction walks over this matrix
    /// (LLC-sized entry mass per strip; see [`gapbs_graph::Strips`]).
    pub fn pull_strips(&self) -> gapbs_graph::Strips {
        gapbs_graph::Strips::pull_offsets(&self.offsets)
    }

    /// Column indices of row `i`, sorted ascending.
    pub fn row(&self, i: GrbIndex) -> &[GrbIndex] {
        let lo = self.offsets[i as usize] as usize;
        let hi = self.offsets[i as usize + 1] as usize;
        &self.cols[lo..hi]
    }

    /// `(column, weight)` pairs of row `i`.
    pub fn row_weighted(&self, i: GrbIndex) -> impl Iterator<Item = (GrbIndex, i32)> + '_ {
        let (cols, weights) = self.row_parts(i);
        cols.iter().copied().zip(weights.iter().copied())
    }

    /// Column and weight slices of row `i` — the zero-overhead accessor
    /// the operation engine's hot loops index directly.
    pub fn row_parts(&self, i: GrbIndex) -> (&[GrbIndex], &[i32]) {
        let lo = self.offsets[i as usize] as usize;
        let hi = self.offsets[i as usize + 1] as usize;
        (&self.cols[lo..hi], &self.weights[lo..hi])
    }

    /// Lower-triangular part, strictly below the diagonal (`tril(A, -1)`).
    pub fn tril(&self) -> GrbMatrix {
        self.filtered(|i, j| j < i)
    }

    /// Upper-triangular part, strictly above the diagonal (`triu(A, 1)`).
    pub fn triu(&self) -> GrbMatrix {
        self.filtered(|i, j| j > i)
    }

    /// Explicit transpose (`A'`).
    pub fn transpose(&self) -> GrbMatrix {
        let n = self.ncols as usize;
        let mut counts = vec![0u64; n];
        for &c in &self.cols {
            counts[c as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cols = vec![0 as GrbIndex; self.cols.len()];
        let mut weights = vec![0i32; self.cols.len()];
        let mut cursor = offsets.clone();
        for i in 0..self.nrows {
            for (j, w) in self.row_weighted(i) {
                let slot = cursor[j as usize] as usize;
                cols[slot] = i;
                weights[slot] = w;
                cursor[j as usize] += 1;
            }
        }
        GrbMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            offsets,
            cols,
            weights,
        }
    }

    fn filtered<F: Fn(GrbIndex, GrbIndex) -> bool>(&self, keep: F) -> GrbMatrix {
        let mut offsets = Vec::with_capacity(self.nrows as usize + 1);
        offsets.push(0u64);
        let mut cols = Vec::new();
        let mut weights = Vec::new();
        for i in 0..self.nrows {
            for (j, w) in self.row_weighted(i) {
                if keep(i, j) {
                    cols.push(j);
                    weights.push(w);
                }
            }
            offsets.push(cols.len() as u64);
        }
        GrbMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            offsets,
            cols,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::Builder;

    fn triangle() -> Graph {
        Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2), (2, 0)]))
            .unwrap()
    }

    #[test]
    fn adjacency_rows_match_graph() {
        let g = triangle();
        let a = GrbMatrix::from_graph(&g);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nvals(), 6);
        assert_eq!(a.row(0), &[1, 2]);
    }

    #[test]
    fn tril_triu_split_the_matrix() {
        let a = GrbMatrix::from_graph(&triangle());
        let l = a.tril();
        let u = a.triu();
        assert_eq!(l.nvals() + u.nvals(), a.nvals());
        assert_eq!(l.row(2), &[0, 1]);
        assert_eq!(u.row(0), &[1, 2]);
        assert_eq!(l.row(0), &[] as &[GrbIndex]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = Builder::new().build(edges([(0, 1), (0, 2)])).unwrap();
        let a = GrbMatrix::from_graph(&g);
        let at = a.transpose();
        assert_eq!(at.row(1), &[0]);
        assert_eq!(at.row(2), &[0]);
        assert_eq!(at.row(0), &[] as &[GrbIndex]);
    }

    #[test]
    fn weighted_matrix_keeps_weights() {
        use gapbs_graph::edgelist::wedges;
        let wg = Builder::new()
            .build_weighted(wedges([(0, 1, 7), (0, 2, 9)]))
            .unwrap();
        let a = GrbMatrix::from_wgraph(&wg);
        let row: Vec<_> = a.row_weighted(0).collect();
        assert_eq!(row, vec![(1, 7), (2, 9)]);
    }
}
