//! Bulk GraphBLAS operations: masked matrix-vector products over semirings,
//! assignment, apply, reduce, element-wise combination, and the masked
//! matrix-matrix product triangle counting uses.
//!
//! Push (`vxm`) scatters from the sparse input vector; pull (`mxv`)
//! gathers per output row and parallelizes across rows. Masks follow the
//! GraphBLAS convention: `C<M> = ...` touches only positions `M` allows,
//! and a *complemented* mask (`C<!M>`) allows positions where `M` has no
//! entry.

use crate::matrix::GrbMatrix;
use crate::semiring::{AddMonoid, Semiring};
use crate::vector::GrbVector;
use crate::GrbIndex;
use gapbs_parallel::{Schedule, ThreadPool};
use gapbs_parallel::sync::Mutex;

/// A structural mask over vector positions.
#[derive(Debug, Clone, Copy)]
pub struct Mask<'a, M: Clone> {
    vector: &'a GrbVector<M>,
    complemented: bool,
}

impl<'a, M: Clone> Mask<'a, M> {
    /// `C<M>`: positions where `vector` has an entry.
    pub fn structural(vector: &'a GrbVector<M>) -> Self {
        Mask {
            vector,
            complemented: false,
        }
    }

    /// `C<!M>`: positions where `vector` has *no* entry.
    pub fn complement(vector: &'a GrbVector<M>) -> Self {
        Mask {
            vector,
            complemented: true,
        }
    }

    /// Whether position `i` may be written.
    pub fn allows(&self, i: GrbIndex) -> bool {
        self.vector.contains(i) != self.complemented
    }
}

/// Push-direction product `y<mask> = x' * A`: every entry `x_k` scatters
/// along row `k` of `A`.
pub fn vxm<X, Y, S, M>(
    semiring: &S,
    x: &GrbVector<X>,
    a: &GrbMatrix,
    mask: Option<&Mask<'_, M>>,
) -> GrbVector<Y>
where
    X: Clone,
    Y: Clone,
    M: Clone,
    S: Semiring<X, Y>,
{
    let n = a.ncols();
    let mut acc: Vec<Option<Y>> = vec![None; n as usize];
    let add = semiring.add();
    let mut scanned = 0u64;
    for (k, xv) in x.iter() {
        for (j, w) in a.row_weighted(k) {
            scanned += 1;
            if let Some(m) = mask {
                if !m.allows(j) {
                    continue;
                }
            }
            let slot = &mut acc[j as usize];
            if let Some(cur) = slot {
                if add.is_terminal(cur) {
                    continue;
                }
            }
            let product = semiring.multiply(k, w, xv);
            *slot = Some(match slot.take() {
                Some(cur) => add.combine(cur, product),
                None => add.combine(add.identity(), product),
            });
        }
    }
    gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, scanned);
    let entries: Vec<(GrbIndex, Y)> = acc
        .into_iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|y| (j as GrbIndex, y)))
        .collect();
    GrbVector::from_entries(n, entries)
}

/// Pull-direction product `y<mask> = A * x`: each permitted output row `i`
/// gathers over its entries, with early exit when the monoid hits a
/// terminal value. Rows are processed in parallel.
pub fn mxv<X, Y, S, M>(
    semiring: &S,
    a: &GrbMatrix,
    x: &GrbVector<X>,
    mask: Option<&Mask<'_, M>>,
    pool: &ThreadPool,
) -> GrbVector<Y>
where
    X: Clone + Sync,
    Y: Clone + Send,
    M: Clone + Sync,
    S: Semiring<X, Y> + Sync,
{
    let n = a.nrows();
    let collected = Mutex::new(Vec::new());
    pool.for_each_index(n as usize, Schedule::Dynamic(512), |i| {
        let i = i as GrbIndex;
        if let Some(m) = mask {
            if !m.allows(i) {
                return;
            }
        }
        let add = semiring.add();
        let mut acc: Option<Y> = None;
        let mut scanned = 0u64;
        for (k, w) in a.row_weighted(i) {
            scanned += 1;
            if let Some(xv) = x.get(k) {
                let product = semiring.multiply(k, w, xv);
                acc = Some(match acc.take() {
                    Some(cur) => add.combine(cur, product),
                    None => add.combine(add.identity(), product),
                });
                if add.is_terminal(acc.as_ref().expect("just set")) {
                    break;
                }
            }
        }
        gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, scanned);
        if let Some(y) = acc {
            collected.lock().push((i, y));
        }
    });
    GrbVector::from_entries(n, collected.into_inner())
}

/// Masked assignment `dst<mask> = src` (structural mask over `src`'s own
/// entries when `mask` is `None`).
pub fn assign_masked<T, M>(dst: &mut GrbVector<T>, src: &GrbVector<T>, mask: Option<&Mask<'_, M>>)
where
    T: Clone,
    M: Clone,
{
    for (i, v) in src.iter() {
        let allowed = mask.map(|m| m.allows(i)).unwrap_or(true);
        if allowed {
            dst.set(i, v.clone());
        }
    }
}

/// Reduces a vector's entries with a monoid.
pub fn reduce<T: Clone, A: AddMonoid<T>>(vec: &GrbVector<T>, add: &A) -> T {
    let mut acc = add.identity();
    for (_, v) in vec.iter() {
        acc = add.combine(acc, v.clone());
    }
    acc
}

/// Applies a function to every entry, producing a new vector.
pub fn apply<T, U, F>(vec: &GrbVector<T>, f: F) -> GrbVector<U>
where
    T: Clone,
    U: Clone,
    F: Fn(GrbIndex, &T) -> U,
{
    let entries = vec.iter().map(|(i, v)| (i, f(i, v))).collect();
    GrbVector::from_entries(vec.size(), entries)
}

/// Keeps entries satisfying a predicate (GraphBLAS `select`).
pub fn select<T, F>(vec: &GrbVector<T>, keep: F) -> GrbVector<T>
where
    T: Clone,
    F: Fn(GrbIndex, &T) -> bool,
{
    let entries = vec
        .iter()
        .filter(|(i, v)| keep(*i, v))
        .map(|(i, v)| (i, v.clone()))
        .collect();
    GrbVector::from_entries(vec.size(), entries)
}

/// Masked matrix-matrix product reduced to a scalar with the `plus_pair`
/// semiring: `sum(C)` where `C<L> = L * U'`. Following the paper's
/// description of SuiteSparse TC, the product's entries are materialized
/// and then summed (LAGraph notes a fused version would be ~2× faster).
pub fn mxm_pair_masked_sum(l: &GrbMatrix, u_t: &GrbMatrix, pool: &ThreadPool) -> u64 {
    let entries = Mutex::new(Vec::new());
    pool.for_each_index(l.nrows() as usize, Schedule::Dynamic(128), |i| {
        let i = i as GrbIndex;
        let row_l = l.row(i);
        if row_l.is_empty() {
            return;
        }
        gapbs_telemetry::record(
            gapbs_telemetry::Counter::TcIntersections,
            row_l.len() as u64,
        );
        gapbs_telemetry::record(gapbs_telemetry::Counter::EdgesExamined, row_l.len() as u64);
        let mut local = Vec::new();
        // Mask C by L: only positions (i, j) with L_ij present.
        for &j in row_l {
            let c = intersection_size(row_l, u_t.row(j));
            if c > 0 {
                local.push(c);
            }
        }
        if !local.is_empty() {
            entries.lock().append(&mut local);
        }
    });
    // "The entire matrix is first formed, then summed ... and discarded."
    entries.into_inner().into_iter().sum()
}

fn intersection_size(a: &[GrbIndex], b: &[GrbIndex]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{AnySecondI, MinPlus, PlusPair, PlusSecond};
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::Builder;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    fn path_matrix() -> GrbMatrix {
        // 0 -> 1 -> 2
        let g = Builder::new().build(edges([(0, 1), (1, 2)])).unwrap();
        GrbMatrix::from_graph(&g)
    }

    #[test]
    fn vxm_push_step_finds_children() {
        let a = path_matrix();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let s = AnySecondI::default();
        let next: GrbVector<Option<GrbIndex>> = vxm(&s, &q, &a, None::<&Mask<'_, ()>>);
        assert_eq!(next.nvals(), 1);
        assert_eq!(next.get(1), Some(&Some(0)), "parent of 1 is 0");
    }

    #[test]
    fn vxm_respects_complement_mask() {
        let a = path_matrix();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let mut pi: GrbVector<GrbIndex> = GrbVector::new(3);
        pi.set(1, 99); // pretend 1 is already visited
        let s = AnySecondI::default();
        let masked = Mask::complement(&pi);
        let next: GrbVector<Option<GrbIndex>> = vxm(&s, &q, &a, Some(&masked));
        assert_eq!(next.nvals(), 0, "visited vertex must not be rediscovered");
    }

    #[test]
    fn mxv_pull_step_gathers() {
        // Pull over A': children gather from parents. A' row 1 = {0}.
        let at = path_matrix().transpose();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let s = AnySecondI::default();
        let next: GrbVector<Option<GrbIndex>> =
            mxv(&s, &at, &q, None::<&Mask<'_, ()>>, &pool());
        assert_eq!(next.get(1), Some(&Some(0)));
        assert!(next.get(2).is_none());
    }

    #[test]
    fn min_plus_vxm_relaxes_distances() {
        use gapbs_graph::edgelist::wedges;
        let wg = Builder::new()
            .build_weighted(wedges([(0, 1, 5), (0, 2, 2), (2, 1, 1)]))
            .unwrap();
        let a = GrbMatrix::from_wgraph(&wg);
        let s = MinPlus::default();
        let d0 = GrbVector::from_entries(3, vec![(0, 0i64)]);
        let d1: GrbVector<i64> = vxm(&s, &d0, &a, None::<&Mask<'_, ()>>);
        assert_eq!(d1.get(1), Some(&5));
        assert_eq!(d1.get(2), Some(&2));
    }

    #[test]
    fn plus_second_sums_contributions() {
        // two sources point at vertex 2
        let g = Builder::new().build(edges([(0, 2), (1, 2)])).unwrap();
        let at = GrbMatrix::from_graph(&g).transpose();
        let x = GrbVector::from_entries(3, vec![(0, 0.25f64), (1, 0.5)]);
        let s = PlusSecond::default();
        let y: GrbVector<f64> = mxv(&s, &at, &x, None::<&Mask<'_, ()>>, &pool());
        assert_eq!(y.get(2), Some(&0.75));
    }

    #[test]
    fn masked_mxm_counts_triangles() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2), (2, 0), (2, 3)]))
            .unwrap();
        let a = GrbMatrix::from_graph(&g);
        let (l, u) = (a.tril(), a.triu());
        let count = mxm_pair_masked_sum(&l, &u.transpose(), &pool());
        assert_eq!(count, 1);
        let _ = PlusPair::default(); // semiring is hard-wired in the fused op
    }

    #[test]
    fn reduce_apply_select_roundtrip() {
        use crate::semiring::PlusMonoid;
        let v = GrbVector::from_entries(5, vec![(0, 1.0f64), (3, 2.0)]);
        let doubled = apply(&v, |_, x| x * 2.0);
        assert_eq!(reduce(&doubled, &PlusMonoid), 6.0);
        let big = select(&doubled, |_, x| *x > 3.0);
        assert_eq!(big.nvals(), 1);
        assert_eq!(big.get(3), Some(&4.0));
    }
}
