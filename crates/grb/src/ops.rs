//! Bulk GraphBLAS operations: masked matrix-vector products over semirings,
//! assignment, apply, reduce, element-wise combination, and the masked
//! matrix-matrix product triangle counting uses.
//!
//! Push (`vxm`) scatters from the sparse input vector; pull (`mxv`)
//! gathers per output row and parallelizes across rows. Masks follow the
//! GraphBLAS convention: `C<M> = ...` touches only positions `M` allows,
//! and a *complemented* mask (`C<!M>`) allows positions where `M` has no
//! entry.
//!
//! # Engine design
//!
//! Every operation draws scratch from an [`OpWorkspace`] and runs on a
//! [`ThreadPool`], and every output path is lock-free:
//!
//! * `vxm` is a two-phase SpMSpV. Phase A partitions the frontier into
//!   fixed blocks and radix-buckets each block's `(index, product)`
//!   pairs by output range; phase B gives each range worker a disjoint
//!   window of one shared generation-stamped SPA and replays buckets in
//!   block order. Because the per-index combine order equals the serial
//!   frontier order regardless of which worker runs what, results are
//!   **bit-identical at every thread count** — even for order-sensitive
//!   monoids like `any` and floating-point `plus`.
//! * `mxv` spills per-worker `(row, value)` pairs ([`PerWorker`]) and
//!   concatenates after the region; rows are unique, so one sort by
//!   index restores a canonical order. No mutex is touched.
//! * `mxm_pair_masked_sum` is a pure per-row reduction of counts.
//! * `reduce`/`apply`/`select`/`assign_masked` route through the pool
//!   above a size cutoff; `reduce` folds fixed blocks in block order so
//!   float reductions associate identically at every thread count.
//!
//! Masks over Bitmap-stored vectors probe the word-packed presence
//! bitset — one shift/AND per test instead of a binary search.

use crate::matrix::GrbMatrix;
use crate::semiring::{AddMonoid, Semiring};
use crate::vector::GrbVector;
use crate::workspace::{OpWorkspace, VxmScratch};
use crate::GrbIndex;
use gapbs_graph::intersect;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};
use gapbs_telemetry::{record, trace, Counter};

/// Frontier entries per phase-A block of the parallel `vxm`. Fixed (not
/// thread-derived) so block boundaries — and therefore combine order —
/// never depend on the pool. Shared with the multi-column
/// [`vxm_multi`](crate::frontier::vxm_multi) so both engines partition
/// frontiers identically.
pub(crate) const VXM_BLOCK: usize = 128;

/// Below this frontier size `vxm` runs its serial SPA path: two region
/// launches would cost more than the scatter.
pub(crate) const VXM_PAR_CUTOFF: usize = 256;

/// Entry block width for the deterministic blocked `reduce` and the
/// blocked `apply`/`select` gathers.
const ENTRY_BLOCK: usize = 4096;

/// A structural mask over vector positions.
#[derive(Debug, Clone, Copy)]
pub struct Mask<'a, M: Clone> {
    vector: &'a GrbVector<M>,
    complemented: bool,
}

impl<'a, M: Clone> Mask<'a, M> {
    /// `C<M>`: positions where `vector` has an entry.
    pub fn structural(vector: &'a GrbVector<M>) -> Self {
        Mask {
            vector,
            complemented: false,
        }
    }

    /// `C<!M>`: positions where `vector` has *no* entry.
    pub fn complement(vector: &'a GrbVector<M>) -> Self {
        Mask {
            vector,
            complemented: true,
        }
    }

    /// Whether position `i` may be written.
    pub fn allows(&self, i: GrbIndex) -> bool {
        self.vector.contains(i) != self.complemented
    }
}

/// A mask resolved to its storage once per operation, so the per-edge
/// test is a slice probe instead of a storage dispatch.
enum MaskProbe<'a, M> {
    Sparse {
        entries: &'a [(GrbIndex, M)],
        complemented: bool,
    },
    /// The word-packed fast path for Bitmap-stored masks.
    Words {
        words: &'a [u64],
        complemented: bool,
    },
    Full {
        complemented: bool,
    },
}

impl<'a, M: Clone> MaskProbe<'a, M> {
    fn new(mask: &Mask<'a, M>) -> Self {
        let complemented = mask.complemented;
        if let Some(entries) = mask.vector.sparse_entries() {
            MaskProbe::Sparse {
                entries,
                complemented,
            }
        } else if let Some((words, _)) = mask.vector.bitmap_slots() {
            MaskProbe::Words {
                words,
                complemented,
            }
        } else {
            MaskProbe::Full { complemented }
        }
    }

    /// Whether position `j` may be written.
    #[inline]
    fn allows(&self, j: GrbIndex) -> bool {
        match self {
            MaskProbe::Sparse {
                entries,
                complemented,
            } => entries.binary_search_by_key(&j, |&(i, _)| i).is_ok() != *complemented,
            MaskProbe::Words {
                words,
                complemented,
            } => (words[j as usize / 64] >> (j % 64) & 1 != 0) != *complemented,
            MaskProbe::Full { complemented } => !*complemented,
        }
    }

    /// `true` when tests hit the word-packed bitmap fast path.
    fn words_backed(&self) -> bool {
        matches!(self, MaskProbe::Words { .. })
    }
}

/// The input vector of a pull product, resolved to its storage once.
enum VecProbe<'a, X> {
    Sparse(&'a [(GrbIndex, X)]),
    Bitmap(&'a [Option<X>]),
    Full(&'a [X]),
}

impl<'a, X: Clone> VecProbe<'a, X> {
    fn new(x: &'a GrbVector<X>) -> Self {
        if let Some(entries) = x.sparse_entries() {
            VecProbe::Sparse(entries)
        } else if let Some((_, slots)) = x.bitmap_slots() {
            VecProbe::Bitmap(slots)
        } else {
            VecProbe::Full(x.as_full_slice())
        }
    }

    #[inline]
    fn get(&self, k: GrbIndex) -> Option<&X> {
        match self {
            VecProbe::Sparse(entries) => entries
                .binary_search_by_key(&k, |&(i, _)| i)
                .ok()
                .map(|pos| &entries[pos].1),
            VecProbe::Bitmap(slots) => slots[k as usize].as_ref(),
            VecProbe::Full(values) => Some(&values[k as usize]),
        }
    }
}

/// Wraps one engine operation in a session-gated `grb:{op}` trace event.
pub(crate) fn traced<R>(op: &'static str, f: impl FnOnce() -> R) -> R {
    let start = trace::now_ns();
    let out = f();
    trace::grb_op(op, start);
    out
}

/// Push-direction product `y<mask> = x' * A`: every entry `x_k` scatters
/// along row `k` of `A`, accumulating into a workspace SPA. Above
/// [`VXM_PAR_CUTOFF`] frontier entries the scatter runs on `pool` via the
/// radix two-phase described in the module docs; the result is
/// bit-identical to the serial path at every pool size.
pub fn vxm<X, Y, S, M>(
    semiring: &S,
    x: &GrbVector<X>,
    a: &GrbMatrix,
    mask: Option<&Mask<'_, M>>,
    ws: &OpWorkspace,
    pool: &ThreadPool,
) -> GrbVector<Y>
where
    X: Clone + Sync,
    Y: Clone + Send + 'static,
    M: Clone + Sync,
    S: Semiring<X, Y> + Sync,
    S::Add: Sync,
{
    traced("vxm", || {
        let n = a.ncols();
        let mut scratch: VxmScratch<Y> = ws.take();
        let mask_probe = mask.map(MaskProbe::new);
        let frontier = x.sparse_entries();
        let out = match frontier {
            Some(entries) if pool.num_threads() > 1 && entries.len() >= VXM_PAR_CUTOFF && n > 0 => {
                vxm_parallel(
                    semiring,
                    entries,
                    a,
                    mask_probe.as_ref(),
                    &mut scratch,
                    pool,
                )
            }
            Some(entries) => vxm_serial(
                semiring,
                entries.iter().map(|(k, xv)| (*k, xv)),
                a,
                mask_probe.as_ref(),
                &mut scratch,
            ),
            None => vxm_serial(semiring, x.iter(), a, mask_probe.as_ref(), &mut scratch),
        };
        ws.put(scratch);
        out
    })
}

/// The serial SPA scatter: exact GraphBLAS semantics, no per-call O(n)
/// allocation — the accumulator is generation-reset in O(1).
fn vxm_serial<'a, X, Y, S, M>(
    semiring: &S,
    frontier: impl Iterator<Item = (GrbIndex, &'a X)>,
    a: &GrbMatrix,
    mask: Option<&MaskProbe<'_, M>>,
    scratch: &mut VxmScratch<Y>,
) -> GrbVector<Y>
where
    X: Clone + 'a,
    Y: Clone,
    M: Clone,
    S: Semiring<X, Y>,
{
    let n = a.ncols();
    let add = semiring.add();
    scratch.spa.begin(n as usize);
    scratch.touched.clear();
    let bitmap_mask = mask.is_some_and(MaskProbe::words_backed);
    let (mut scanned, mut hits, mut inserts) = (0u64, 0u64, 0u64);
    for (k, xv) in frontier {
        let (cols, weights) = a.row_parts(k);
        scanned += cols.len() as u64;
        for (t, &j) in cols.iter().enumerate() {
            if let Some(m) = mask {
                if !m.allows(j) {
                    continue;
                }
            }
            let ju = j as usize;
            if scratch.spa.is_live(ju) && add.is_terminal(scratch.spa.peek(ju)) {
                continue;
            }
            let product = semiring.multiply(k, weights[t], xv);
            let value = add.combine(add.identity(), product);
            if scratch
                .spa
                .upsert(ju, value, |cur, new| add.combine(cur, new))
            {
                hits += 1;
            } else {
                inserts += 1;
                scratch.touched.push(j);
            }
        }
    }
    record(Counter::EdgesExamined, scanned);
    if bitmap_mask {
        record(Counter::MaskBitmapTests, scanned);
    }
    record(Counter::SpaHits, hits);
    record(Counter::SpaInserts, inserts);
    scratch.touched.sort_unstable();
    let entries = scratch
        .touched
        .iter()
        .map(|&j| (j, scratch.spa.take_value(j as usize)))
        .collect();
    GrbVector::from_sorted_entries(n, entries)
}

/// The two-phase radix SpMSpV. Phase A buckets products by output range
/// in frontier order; phase B replays buckets in block order into
/// disjoint windows of the shared SPA. See the determinism argument in
/// the module docs.
fn vxm_parallel<X, Y, S, M>(
    semiring: &S,
    frontier: &[(GrbIndex, X)],
    a: &GrbMatrix,
    mask: Option<&MaskProbe<'_, M>>,
    scratch: &mut VxmScratch<Y>,
    pool: &ThreadPool,
) -> GrbVector<Y>
where
    X: Clone + Sync,
    Y: Clone + Send,
    M: Clone + Sync,
    S: Semiring<X, Y> + Sync,
    S::Add: Sync,
{
    let n = a.ncols() as usize;
    let add = semiring.add();
    let blocks = frontier.len().div_ceil(VXM_BLOCK);
    // Range count tracks the pool for load balance; the output is
    // partition-independent, so this does not affect results.
    let range_width = n.div_ceil((4 * pool.num_threads()).min(n));
    let ranges = n.div_ceil(range_width);

    let VxmScratch {
        spa,
        touched: _,
        buckets,
        range_touched,
        range_entries,
    } = scratch;
    if buckets.len() < blocks * ranges {
        buckets.resize_with(blocks * ranges, Vec::new);
    }
    debug_assert!(
        buckets.iter().all(Vec::is_empty),
        "buckets drained per call"
    );
    if range_touched.len() < ranges {
        range_touched.resize_with(ranges, Vec::new);
    }
    if range_entries.len() < ranges {
        range_entries.resize_with(ranges, Vec::new);
    }

    // Phase A: scatter products into per-(block, range) buckets. Each
    // block is owned by exactly one worker, so its `ranges` bucket slots
    // are written disjointly.
    let bucket_slice = SharedSlice::new(&mut buckets[..blocks * ranges]);
    let bitmap_mask = mask.is_some_and(MaskProbe::words_backed);
    pool.for_each_index(blocks, Schedule::Dynamic(1), |b| {
        // SAFETY: block `b` owns bucket slots `[b*ranges, (b+1)*ranges)`.
        let mine = unsafe { bucket_slice.range_mut(b * ranges, (b + 1) * ranges) };
        let lo = b * VXM_BLOCK;
        let hi = (lo + VXM_BLOCK).min(frontier.len());
        let mut scanned = 0u64;
        for (k, xv) in &frontier[lo..hi] {
            let (cols, weights) = a.row_parts(*k);
            scanned += cols.len() as u64;
            for (t, &j) in cols.iter().enumerate() {
                if let Some(m) = mask {
                    if !m.allows(j) {
                        continue;
                    }
                }
                let product = semiring.multiply(*k, weights[t], xv);
                mine[j as usize / range_width].push((j, product));
            }
        }
        record(Counter::EdgesExamined, scanned);
        if bitmap_mask {
            record(Counter::MaskBitmapTests, scanned);
        }
    });

    // Phase B: each range replays its buckets in block order into its
    // disjoint SPA window — per-index combine order is therefore the
    // serial frontier order.
    spa.begin(n);
    let (stamps, values, generation) = spa.parts_mut();
    let stamp_slice = SharedSlice::new(&mut stamps[..n]);
    let value_slice = SharedSlice::new(&mut values[..n]);
    let touched_slice = SharedSlice::new(&mut range_touched[..ranges]);
    let entries_slice = SharedSlice::new(&mut range_entries[..ranges]);
    pool.for_each_index(ranges, Schedule::Dynamic(1), |r| {
        let jlo = r * range_width;
        let jhi = (jlo + range_width).min(n);
        // SAFETY: range `r` owns SPA window `[jlo, jhi)`, bucket slots
        // `b*ranges + r` for every block, and its own output vectors.
        let stamps_r = unsafe { stamp_slice.range_mut(jlo, jhi) };
        let values_r = unsafe { value_slice.range_mut(jlo, jhi) };
        let touched = &mut unsafe { touched_slice.range_mut(r, r + 1) }[0];
        let out = &mut unsafe { entries_slice.range_mut(r, r + 1) }[0];
        let (mut hits, mut inserts) = (0u64, 0u64);
        for b in 0..blocks {
            let bucket =
                &mut unsafe { bucket_slice.range_mut(b * ranges + r, b * ranges + r + 1) }[0];
            for (j, product) in bucket.drain(..) {
                let jj = j as usize - jlo;
                if stamps_r[jj] == generation {
                    let cur = values_r[jj].as_ref().expect("live SPA slot holds a value");
                    if add.is_terminal(cur) {
                        continue;
                    }
                    let old = values_r[jj].take().expect("live SPA slot holds a value");
                    // Same shape as the serial path (`combine(identity,
                    // product)` first) so results match bit-for-bit.
                    values_r[jj] = Some(add.combine(old, add.combine(add.identity(), product)));
                    hits += 1;
                } else {
                    stamps_r[jj] = generation;
                    values_r[jj] = Some(add.combine(add.identity(), product));
                    inserts += 1;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        out.extend(touched.drain(..).map(|j| {
            (
                j,
                values_r[j as usize - jlo]
                    .take()
                    .expect("touched slot is live"),
            )
        }));
        record(Counter::SpaHits, hits);
        record(Counter::SpaInserts, inserts);
    });

    // Ranges cover ascending index windows, so concatenation in range
    // order yields the globally sorted entry list.
    let total = range_entries.iter().map(Vec::len).sum();
    let mut entries = Vec::with_capacity(total);
    for out in range_entries.iter_mut() {
        entries.append(out);
    }
    GrbVector::from_sorted_entries(n as GrbIndex, entries)
}

/// Pull-direction product `y<mask> = A * x`: each permitted output row `i`
/// gathers over its entries, with early exit when the monoid hits a
/// terminal value. Rows are processed in parallel; each worker spills
/// finished rows into its own buffer, so the output path has no lock.
pub fn mxv<X, Y, S, M>(
    semiring: &S,
    a: &GrbMatrix,
    x: &GrbVector<X>,
    mask: Option<&Mask<'_, M>>,
    ws: &OpWorkspace,
    pool: &ThreadPool,
) -> GrbVector<Y>
where
    X: Clone + Sync,
    Y: Clone + Send + 'static,
    M: Clone + Sync,
    S: Semiring<X, Y> + Sync,
{
    traced("mxv", || {
        let n = a.nrows();
        let threads = pool.num_threads();
        let mut spills: Vec<Vec<(GrbIndex, Y)>> = ws.take();
        if spills.len() < threads {
            spills.resize_with(threads, Vec::new);
        }
        debug_assert!(spills.iter().all(Vec::is_empty), "spills drained per call");
        let probe = VecProbe::new(x);
        let mask_probe = mask.map(MaskProbe::new);
        let bitmap_mask = mask_probe.as_ref().is_some_and(MaskProbe::words_backed);
        let spill_slice = SharedSlice::new(&mut spills[..threads]);
        // Degree-aware strips: each worker walks rows whose combined
        // entry mass fits the LLC budget, keeping the gathered slice of
        // `x` and the output spill warm for the whole strip.
        let strips = a.pull_strips();
        pool.for_each_index_tid(strips.len(), Schedule::Dynamic(1), |tid, s| {
            let mut scanned = 0u64;
            let mut bitmap_tests = 0u64;
            for i in strips.range(s) {
                let i = i as GrbIndex;
                if let Some(m) = &mask_probe {
                    if bitmap_mask {
                        bitmap_tests += 1;
                    }
                    if !m.allows(i) {
                        continue;
                    }
                }
                let add = semiring.add();
                let mut acc: Option<Y> = None;
                let (cols, weights) = a.row_parts(i);
                for (t, &k) in cols.iter().enumerate() {
                    scanned += 1;
                    if let Some(xv) = probe.get(k) {
                        let product = semiring.multiply(k, weights[t], xv);
                        acc = Some(match acc.take() {
                            Some(cur) => add.combine(cur, product),
                            None => add.combine(add.identity(), product),
                        });
                        if add.is_terminal(acc.as_ref().expect("just set")) {
                            break;
                        }
                    }
                }
                if let Some(y) = acc {
                    // SAFETY: slot `tid` is exclusive to the worker
                    // running as `tid` for the duration of this body.
                    let spill = unsafe { &mut spill_slice.range_mut(tid, tid + 1)[0] };
                    spill.push((i, y));
                }
            }
            record(Counter::EdgesExamined, scanned);
            if bitmap_tests > 0 {
                record(Counter::MaskBitmapTests, bitmap_tests);
            }
        });
        // Row indices are unique, so one sort restores canonical order
        // regardless of which worker produced which row.
        let total = spills.iter().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        for spill in &mut spills {
            entries.append(spill);
        }
        ws.put(spills);
        entries.sort_unstable_by_key(|&(i, _)| i);
        GrbVector::from_sorted_entries(n, entries)
    })
}

/// Masked assignment `dst<mask> = src` (structural mask over `src`'s own
/// entries when `mask` is `None`). When `dst` is Full and `src` Sparse,
/// the writes are disjoint per entry and run on `pool`.
pub fn assign_masked<T, M>(
    dst: &mut GrbVector<T>,
    src: &GrbVector<T>,
    mask: Option<&Mask<'_, M>>,
    pool: &ThreadPool,
) where
    T: Clone + Send + Sync,
    M: Clone + Sync,
{
    traced("assign", || {
        if dst.full_values().is_some() && pool.num_threads() > 1 {
            if let Some(entries) = src.sparse_entries() {
                if entries.len() >= ENTRY_BLOCK {
                    let mask_probe = mask.map(MaskProbe::new);
                    let out = SharedSlice::new(dst.as_full_slice_mut());
                    pool.for_each_index(entries.len(), Schedule::Static, |e| {
                        let (i, v) = &entries[e];
                        if mask_probe.as_ref().is_none_or(|m| m.allows(*i)) {
                            // SAFETY: source entry indices are unique, so
                            // each destination slot has one writer.
                            unsafe { out.write(*i as usize, v.clone()) };
                        }
                    });
                    return;
                }
            }
        }
        for (i, v) in src.iter() {
            if mask.is_none_or(|m| m.allows(i)) {
                dst.set(i, v.clone());
            }
        }
    })
}

/// Reduces a vector's entries with a monoid.
///
/// Above [`ENTRY_BLOCK`] entries the fold runs on the pool in fixed
/// blocks whose partials combine in block order — the choice of path and
/// the association both depend only on the entry count, so the result is
/// identical at every thread count even for floating-point monoids.
pub fn reduce<T, A>(vec: &GrbVector<T>, add: &A, pool: &ThreadPool) -> T
where
    T: Clone + Send + Sync,
    A: AddMonoid<T> + Sync,
{
    traced("reduce", || {
        if let Some(values) = vec.full_values() {
            return reduce_blocked(values, |v| v.clone(), add, pool);
        }
        if let Some(entries) = vec.sparse_entries() {
            return reduce_blocked(entries, |(_, v)| v.clone(), add, pool);
        }
        let mut acc = add.identity();
        for (_, v) in vec.iter() {
            acc = add.combine(acc, v.clone());
        }
        acc
    })
}

/// Fixed-block fold: block partials combine in block index order, so the
/// association is a pure function of `items.len()`.
fn reduce_blocked<I, T, A>(
    items: &[I],
    value: impl Fn(&I) -> T + Sync,
    add: &A,
    pool: &ThreadPool,
) -> T
where
    I: Sync,
    T: Clone + Send + Sync,
    A: AddMonoid<T> + Sync,
{
    if items.len() < 2 * ENTRY_BLOCK {
        return items
            .iter()
            .fold(add.identity(), |acc, i| add.combine(acc, value(i)));
    }
    let blocks = items.len().div_ceil(ENTRY_BLOCK);
    let mut partials: Vec<Option<T>> = vec![None; blocks];
    let out = SharedSlice::new(&mut partials);
    pool.for_each_index(blocks, Schedule::Dynamic(1), |b| {
        let lo = b * ENTRY_BLOCK;
        let hi = (lo + ENTRY_BLOCK).min(items.len());
        let acc = items[lo..hi]
            .iter()
            .fold(add.identity(), |acc, i| add.combine(acc, value(i)));
        // SAFETY: one writer per block slot.
        unsafe { out.write(b, Some(acc)) };
    });
    partials
        .into_iter()
        .map(|p| p.expect("every block reduced"))
        .fold(add.identity(), |acc, p| add.combine(acc, p))
}

/// Applies a function to every entry, producing a new (sparse) vector.
/// Large Sparse/Full inputs map their entry blocks on the pool.
pub fn apply<T, U, F>(vec: &GrbVector<T>, f: F, pool: &ThreadPool) -> GrbVector<U>
where
    T: Clone + Sync,
    U: Clone + Send,
    F: Fn(GrbIndex, &T) -> U + Sync,
{
    traced("apply", || {
        let entries = gather_blocked(vec, |i, v| Some((i, f(i, v))), pool);
        GrbVector::from_sorted_entries(vec.size(), entries)
    })
}

/// Keeps entries satisfying a predicate (GraphBLAS `select`). Large
/// Sparse/Full inputs filter their entry blocks on the pool.
pub fn select<T, F>(vec: &GrbVector<T>, keep: F, pool: &ThreadPool) -> GrbVector<T>
where
    T: Clone + Send + Sync,
    F: Fn(GrbIndex, &T) -> bool + Sync,
{
    traced("select", || {
        let entries = gather_blocked(vec, |i, v| keep(i, v).then(|| (i, v.clone())), pool);
        GrbVector::from_sorted_entries(vec.size(), entries)
    })
}

/// Maps a vector's present entries through `f` in index order,
/// parallelizing over fixed blocks whose outputs concatenate in block
/// order (so the result is identical to the serial scan).
fn gather_blocked<T, U>(
    vec: &GrbVector<T>,
    f: impl Fn(GrbIndex, &T) -> Option<(GrbIndex, U)> + Sync,
    pool: &ThreadPool,
) -> Vec<(GrbIndex, U)>
where
    T: Clone + Sync,
    U: Send,
{
    enum Items<'a, T> {
        Entries(&'a [(GrbIndex, T)]),
        Values(&'a [T]),
    }
    let items = if let Some(entries) = vec.sparse_entries() {
        Items::Entries(entries)
    } else if let Some(values) = vec.full_values() {
        Items::Values(values)
    } else {
        return vec.iter().filter_map(|(i, v)| f(i, v)).collect();
    };
    let len = match &items {
        Items::Entries(e) => e.len(),
        Items::Values(v) => v.len(),
    };
    let visit = |t: usize| match &items {
        Items::Entries(e) => {
            let (i, v) = &e[t];
            f(*i, v)
        }
        Items::Values(v) => f(t as GrbIndex, &v[t]),
    };
    if len < 2 * ENTRY_BLOCK || pool.num_threads() == 1 {
        return (0..len).filter_map(visit).collect();
    }
    let blocks = len.div_ceil(ENTRY_BLOCK);
    let mut per_block: Vec<Vec<(GrbIndex, U)>> = Vec::new();
    per_block.resize_with(blocks, Vec::new);
    let out = SharedSlice::new(&mut per_block);
    pool.for_each_index(blocks, Schedule::Dynamic(1), |b| {
        let lo = b * ENTRY_BLOCK;
        let hi = (lo + ENTRY_BLOCK).min(len);
        let local: Vec<(GrbIndex, U)> = (lo..hi).filter_map(visit).collect();
        // SAFETY: one writer per block slot.
        unsafe { out.write(b, local) };
    });
    let mut entries = Vec::with_capacity(per_block.iter().map(Vec::len).sum());
    for mut block in per_block {
        entries.append(&mut block);
    }
    entries
}

/// Masked matrix-matrix product reduced to a scalar with the `plus_pair`
/// semiring: `sum(C)` where `C<L> = L * U'`. Following the paper's
/// description of SuiteSparse TC, the product's entries are materialized
/// per row and then summed (LAGraph notes a fused version would be ~2×
/// faster). The sum reduces per-worker partials — no shared output.
pub fn mxm_pair_masked_sum(l: &GrbMatrix, u_t: &GrbMatrix, pool: &ThreadPool) -> u64 {
    traced("mxm", || {
        pool.reduce_index(
            l.nrows() as usize,
            Schedule::Dynamic(128),
            0u64,
            |i| {
                let i = i as GrbIndex;
                let row_l = l.row(i);
                if row_l.is_empty() {
                    return 0;
                }
                // Mask C by L: only positions (i, j) with L_ij present.
                // The adaptive intersection kernel is shared with every
                // TC path (gallop on skewed rows, lane scan otherwise).
                let mut found = 0u64;
                let mut comparisons = 0u64;
                for &j in row_l {
                    let r = intersect::count(row_l, u_t.row(j));
                    found += r.count;
                    comparisons += r.comparisons;
                }
                // Comparisons feed both counters so `tc_intersections <=
                // edges_examined` holds by construction.
                record(Counter::TcIntersections, comparisons);
                record(Counter::EdgesExamined, row_l.len() as u64 + comparisons);
                found
            },
            |a, b| a + b,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{AnySecondI, MinPlus, PlusPair, PlusSecond};
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::Builder;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    fn ws() -> OpWorkspace {
        OpWorkspace::new()
    }

    fn path_matrix() -> GrbMatrix {
        // 0 -> 1 -> 2
        let g = Builder::new().build(edges([(0, 1), (1, 2)])).unwrap();
        GrbMatrix::from_graph(&g)
    }

    #[test]
    fn vxm_push_step_finds_children() {
        let a = path_matrix();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let s = AnySecondI::default();
        let next: GrbVector<Option<GrbIndex>> =
            vxm(&s, &q, &a, None::<&Mask<'_, ()>>, &ws(), &pool());
        assert_eq!(next.nvals(), 1);
        assert_eq!(next.get(1), Some(&Some(0)), "parent of 1 is 0");
    }

    #[test]
    fn vxm_respects_complement_mask() {
        let a = path_matrix();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let mut pi: GrbVector<GrbIndex> = GrbVector::new(3);
        pi.set(1, 99); // pretend 1 is already visited
        let s = AnySecondI::default();
        let masked = Mask::complement(&pi);
        let next: GrbVector<Option<GrbIndex>> = vxm(&s, &q, &a, Some(&masked), &ws(), &pool());
        assert_eq!(next.nvals(), 0, "visited vertex must not be rediscovered");
    }

    #[test]
    fn mxv_pull_step_gathers() {
        // Pull over A': children gather from parents. A' row 1 = {0}.
        let at = path_matrix().transpose();
        let q = GrbVector::from_entries(3, vec![(0, ())]);
        let s = AnySecondI::default();
        let next: GrbVector<Option<GrbIndex>> =
            mxv(&s, &at, &q, None::<&Mask<'_, ()>>, &ws(), &pool());
        assert_eq!(next.get(1), Some(&Some(0)));
        assert!(next.get(2).is_none());
    }

    #[test]
    fn min_plus_vxm_relaxes_distances() {
        use gapbs_graph::edgelist::wedges;
        let wg = Builder::new()
            .build_weighted(wedges([(0, 1, 5), (0, 2, 2), (2, 1, 1)]))
            .unwrap();
        let a = GrbMatrix::from_wgraph(&wg);
        let s = MinPlus::default();
        let d0 = GrbVector::from_entries(3, vec![(0, 0i64)]);
        let d1: GrbVector<i64> = vxm(&s, &d0, &a, None::<&Mask<'_, ()>>, &ws(), &pool());
        assert_eq!(d1.get(1), Some(&5));
        assert_eq!(d1.get(2), Some(&2));
    }

    #[test]
    fn plus_second_sums_contributions() {
        // two sources point at vertex 2
        let g = Builder::new().build(edges([(0, 2), (1, 2)])).unwrap();
        let at = GrbMatrix::from_graph(&g).transpose();
        let x = GrbVector::from_entries(3, vec![(0, 0.25f64), (1, 0.5)]);
        let s = PlusSecond::default();
        let y: GrbVector<f64> = mxv(&s, &at, &x, None::<&Mask<'_, ()>>, &ws(), &pool());
        assert_eq!(y.get(2), Some(&0.75));
    }

    #[test]
    fn masked_mxm_counts_triangles() {
        let g = Builder::new()
            .symmetrize(true)
            .build(edges([(0, 1), (1, 2), (2, 0), (2, 3)]))
            .unwrap();
        let a = GrbMatrix::from_graph(&g);
        let (l, u) = (a.tril(), a.triu());
        let count = mxm_pair_masked_sum(&l, &u.transpose(), &pool());
        assert_eq!(count, 1);
        let _ = PlusPair::default(); // semiring is hard-wired in the fused op
    }

    #[test]
    fn reduce_apply_select_roundtrip() {
        use crate::semiring::PlusMonoid;
        let p = pool();
        let v = GrbVector::from_entries(5, vec![(0, 1.0f64), (3, 2.0)]);
        let doubled = apply(&v, |_, x| x * 2.0, &p);
        assert_eq!(reduce(&doubled, &PlusMonoid, &p), 6.0);
        let big = select(&doubled, |_, x| *x > 3.0, &p);
        assert_eq!(big.nvals(), 1);
        assert_eq!(big.get(3), Some(&4.0));
    }

    #[test]
    fn parallel_vxm_is_bit_identical_to_serial() {
        // A frontier big enough to cross VXM_PAR_CUTOFF on a random-ish
        // graph, compared entry-for-entry across pool sizes.
        use gapbs_graph::gen;
        let g = gen::urand(10, 8, 42);
        let a = GrbMatrix::from_graph(&g);
        let n = a.nrows();
        let frontier: Vec<(GrbIndex, i64)> =
            (0..n).step_by(2).map(|i| (i, (i as i64) % 17)).collect();
        assert!(frontier.len() >= VXM_PAR_CUTOFF);
        let x = GrbVector::from_entries(n, frontier);
        let mut visited: GrbVector<()> = GrbVector::new(n);
        visited.convert(crate::vector::Storage::Bitmap, None);
        for i in (0..n).step_by(3) {
            visited.set(i, ());
        }
        let s = MinPlus::default();
        let serial = ThreadPool::new(1);
        let mask = Mask::complement(&visited);
        let reference: GrbVector<i64> = vxm(&s, &x, &a, Some(&mask), &ws(), &serial);
        for threads in [2, 3, 7] {
            let p = ThreadPool::new(threads);
            let w = ws();
            for _ in 0..2 {
                // twice: the second call reuses warm workspace buffers
                let got: GrbVector<i64> = vxm(&s, &x, &a, Some(&mask), &w, &p);
                assert_eq!(got.nvals(), reference.nvals(), "threads={threads}");
                assert!(got.iter().eq(reference.iter()), "threads={threads}");
            }
        }
    }

    #[test]
    fn mxv_is_thread_count_independent() {
        use gapbs_graph::gen;
        let g = gen::urand(9, 6, 7);
        let at = GrbMatrix::from_graph(&g).transpose();
        let n = at.nrows();
        let x =
            GrbVector::from_entries(n, (0..n).step_by(2).map(|i| (i, i as f64 * 0.5)).collect());
        let s = PlusSecond::default();
        let reference: GrbVector<f64> = mxv(
            &s,
            &at,
            &x,
            None::<&Mask<'_, ()>>,
            &ws(),
            &ThreadPool::new(1),
        );
        for threads in [2, 5] {
            let got: GrbVector<f64> = mxv(
                &s,
                &at,
                &x,
                None::<&Mask<'_, ()>>,
                &ws(),
                &ThreadPool::new(threads),
            );
            assert!(got.iter().eq(reference.iter()), "threads={threads}");
        }
    }

    #[test]
    fn blocked_reduce_matches_itself_across_pool_sizes() {
        use crate::semiring::PlusMonoid;
        let n = 3 * ENTRY_BLOCK as GrbIndex;
        let v = GrbVector::full(n, 0.1f64);
        let one = reduce(&v, &PlusMonoid, &ThreadPool::new(1));
        let four = reduce(&v, &PlusMonoid, &ThreadPool::new(4));
        assert_eq!(one.to_bits(), four.to_bits(), "association must be fixed");
    }
}
