//! The frontier matrix and its multi-column SpMSpV.
//!
//! Batched traversals have the data shape the paper describes for LAGraph
//! BC (§V-E): "most of the operations are matrix-matrix, where one matrix
//! is dense and 4-by-n". [`FrontierMatrix`] is that n×k operand stored as
//! the union of k sparse column frontiers: each stored row is a vertex
//! active in at least one column, with an `active` bitmask saying which
//! columns and k column values.
//!
//! [`vxm_multi`] advances all k columns through the adjacency matrix in a
//! single sweep — the `mxm` every batched kernel (BFS k=1, batch BC k=4,
//! MS-BFS up to k=64) reduces to. It reuses the two-phase deterministic
//! radix scatter of the single-column `vxm`: phase A partitions the
//! frontier into fixed blocks and buckets `(column, frontier-row, weight)`
//! triples by output range in frontier order; phase B replays buckets in
//! block order into disjoint windows of one shared k-wide
//! generation-stamped SPA. Per-(vertex, column) combine order therefore
//! equals the serial frontier order regardless of which worker runs what,
//! so results are **bit-identical at every thread count** — even for
//! order-sensitive monoids like `any` and floating-point `plus`.
//!
//! Per-column masking goes through a `col_mask` closure mapping an output
//! vertex to the word of columns allowed to write it. That is the
//! complemented-parent mask of BFS (all-or-nothing across k=1), and the
//! "columns that have not discovered this vertex" mask of batch BC.

use crate::matrix::GrbMatrix;
use crate::ops::{traced, VXM_BLOCK, VXM_PAR_CUTOFF};
use crate::semiring::{AddMonoid, Semiring};
use crate::workspace::{MultiVxmScratch, OpWorkspace};
use crate::GrbIndex;
use gapbs_parallel::{Schedule, SharedSlice, ThreadPool};
use gapbs_telemetry::{record, Counter};

/// Maximum column count of a frontier matrix: one bit per column in the
/// `active` / mask words.
pub const MAX_COLUMNS: usize = 64;

/// A sparse n×k matrix of k column frontiers, stored row-major over the
/// union of the columns' structures. Rows are kept in the order they were
/// pushed; [`vxm_multi`] outputs rows sorted by vertex index.
#[derive(Debug, Clone)]
pub struct FrontierMatrix<X> {
    k: usize,
    indices: Vec<GrbIndex>,
    active: Vec<u64>,
    values: Vec<X>,
}

impl<X> Default for FrontierMatrix<X> {
    fn default() -> Self {
        FrontierMatrix {
            k: 0,
            indices: Vec::new(),
            active: Vec::new(),
            values: Vec::new(),
        }
    }
}

impl<X> FrontierMatrix<X> {
    /// An empty frontier matrix with `k` columns.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_COLUMNS`].
    pub fn new(k: usize) -> Self {
        let mut fm = FrontierMatrix::default();
        fm.reset(k);
        fm
    }

    /// Clears all rows and sets the column count, keeping capacity.
    pub fn reset(&mut self, k: usize) {
        assert!(
            (1..=MAX_COLUMNS).contains(&k),
            "column count {k} outside 1..={MAX_COLUMNS}"
        );
        self.k = k;
        self.indices.clear();
        self.active.clear();
        self.values.clear();
    }

    /// Number of columns.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored rows (vertices active in at least one column).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when no column has an active vertex.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Appends a row: vertex `index`, the word of columns it is active
    /// in, and its `k` column values (inactive slots are ignored).
    pub fn push_row(&mut self, index: GrbIndex, active: u64, values: &[X])
    where
        X: Clone,
    {
        debug_assert_eq!(values.len(), self.k, "row value stride mismatch");
        debug_assert!(active != 0, "a stored row must be active somewhere");
        debug_assert!(self.k == 64 || active < 1u64 << self.k);
        self.indices.push(index);
        self.active.push(active);
        self.values.extend_from_slice(values);
    }

    /// Appends a row whose values come from `value_of(column)`.
    pub fn push_row_with(
        &mut self,
        index: GrbIndex,
        active: u64,
        mut value_of: impl FnMut(usize) -> X,
    ) {
        debug_assert!(active != 0, "a stored row must be active somewhere");
        self.indices.push(index);
        self.active.push(active);
        for c in 0..self.k {
            self.values.push(value_of(c));
        }
    }

    /// Row `t` as `(vertex, active columns, k values)`.
    pub fn row(&self, t: usize) -> (GrbIndex, u64, &[X]) {
        (
            self.indices[t],
            self.active[t],
            &self.values[t * self.k..(t + 1) * self.k],
        )
    }

    /// Iterates rows as `(vertex, active columns, k values)`.
    pub fn iter(&self) -> impl Iterator<Item = (GrbIndex, u64, &[X])> + '_ {
        (0..self.len()).map(move |t| self.row(t))
    }

    /// Moves every row of `other` onto the end of `self`.
    ///
    /// # Panics
    ///
    /// Panics when the column counts differ.
    pub fn append(&mut self, other: &mut FrontierMatrix<X>) {
        assert_eq!(self.k, other.k, "column count mismatch");
        self.indices.append(&mut other.indices);
        self.active.append(&mut other.active);
        self.values.append(&mut other.values);
    }
}

/// Multi-column push product `Y<col_mask> = X' * A`: every frontier row
/// scatters along its adjacency row, advancing all k columns at once.
/// `col_mask(j)` is the word of columns allowed to write output vertex
/// `j`; it must be pure for the duration of the call (both phases of the
/// parallel path re-evaluate it). Above [`VXM_PAR_CUTOFF`] frontier rows
/// the scatter runs on `pool` via the radix two-phase described in the
/// module docs; the result is bit-identical to the serial path at every
/// pool size. Output rows are sorted by vertex index, and inactive value
/// slots hold `Y::default()` so equal inputs produce equal outputs.
pub fn vxm_multi<X, Y, S, F>(
    semiring: &S,
    x: &FrontierMatrix<X>,
    a: &GrbMatrix,
    col_mask: &F,
    ws: &OpWorkspace,
    pool: &ThreadPool,
) -> FrontierMatrix<Y>
where
    X: Clone + Sync,
    Y: Clone + Default + Send + 'static,
    S: Semiring<X, Y> + Sync,
    S::Add: Sync,
    F: Fn(GrbIndex) -> u64 + Sync,
{
    traced("vxm_multi", || {
        let n = a.ncols();
        let mut scratch: MultiVxmScratch<Y> = ws.take();
        let out = if pool.num_threads() > 1 && x.len() >= VXM_PAR_CUTOFF && n > 0 {
            vxm_multi_parallel(semiring, x, a, col_mask, &mut scratch, pool)
        } else {
            vxm_multi_serial(semiring, x, a, col_mask, &mut scratch)
        };
        ws.put(scratch);
        out
    })
}

/// The serial k-wide SPA scatter — the combine-order reference the
/// parallel path reproduces.
fn vxm_multi_serial<X, Y, S, F>(
    semiring: &S,
    x: &FrontierMatrix<X>,
    a: &GrbMatrix,
    col_mask: &F,
    scratch: &mut MultiVxmScratch<Y>,
) -> FrontierMatrix<Y>
where
    X: Clone,
    Y: Clone + Default,
    S: Semiring<X, Y>,
    F: Fn(GrbIndex) -> u64,
{
    let n = a.ncols() as usize;
    let k = x.k();
    let add = semiring.add();
    scratch.spa.begin(n, k);
    scratch.touched.clear();
    let (mut scanned, mut hits, mut inserts) = (0u64, 0u64, 0u64);
    for (u, row_active, row_vals) in x.iter() {
        let (cols, weights) = a.row_parts(u);
        scanned += cols.len() as u64;
        for (e, &j) in cols.iter().enumerate() {
            let mut allowed = row_active & col_mask(j);
            if allowed == 0 {
                continue;
            }
            let ju = j as usize;
            if !scratch.spa.is_live(ju) {
                scratch.spa.make_live(ju);
                scratch.touched.push(j);
            }
            while allowed != 0 {
                let c = allowed.trailing_zeros() as usize;
                allowed &= allowed - 1;
                if scratch.spa.col_active(ju, c) {
                    if add.is_terminal(scratch.spa.peek(ju, c)) {
                        continue;
                    }
                    let product = semiring.multiply(u, weights[e], &row_vals[c]);
                    // Same shape as the single-column engine
                    // (`combine(identity, product)` first) so the two
                    // agree bit-for-bit at k = 1.
                    let value = add.combine(add.identity(), product);
                    let cur = scratch.spa.peek(ju, c).clone();
                    scratch.spa.set(ju, c, add.combine(cur, value));
                    hits += 1;
                } else {
                    let product = semiring.multiply(u, weights[e], &row_vals[c]);
                    scratch.spa.set(ju, c, add.combine(add.identity(), product));
                    inserts += 1;
                }
            }
        }
    }
    record(Counter::EdgesExamined, scanned);
    record(Counter::SpaHits, hits);
    record(Counter::SpaInserts, inserts);
    scratch.touched.sort_unstable();
    let mut out = FrontierMatrix::new(k);
    let spa = &scratch.spa;
    for &j in &scratch.touched {
        let ju = j as usize;
        let active = spa.active_word(ju);
        out.push_row_with(j, active, |c| {
            if active >> c & 1 != 0 {
                spa.peek(ju, c).clone()
            } else {
                Y::default()
            }
        });
    }
    out
}

/// The two-phase radix k-wide SpMSpV. Phase A buckets cheap
/// `(column, frontier-row, weight)` triples by output range in frontier
/// order; phase B replays buckets in block order into disjoint windows of
/// the shared k-wide SPA, recomputing products there. See the determinism
/// argument in the module docs.
fn vxm_multi_parallel<X, Y, S, F>(
    semiring: &S,
    x: &FrontierMatrix<X>,
    a: &GrbMatrix,
    col_mask: &F,
    scratch: &mut MultiVxmScratch<Y>,
    pool: &ThreadPool,
) -> FrontierMatrix<Y>
where
    X: Clone + Sync,
    Y: Clone + Default + Send,
    S: Semiring<X, Y> + Sync,
    S::Add: Sync,
    F: Fn(GrbIndex) -> u64 + Sync,
{
    let n = a.ncols() as usize;
    let k = x.k();
    let add = semiring.add();
    let blocks = x.len().div_ceil(VXM_BLOCK);
    // Range count tracks the pool for load balance; the output is
    // partition-independent, so this does not affect results.
    let range_width = n.div_ceil((4 * pool.num_threads()).min(n));
    let ranges = n.div_ceil(range_width);

    let MultiVxmScratch {
        spa,
        touched: _,
        buckets,
        range_touched,
        range_rows,
    } = scratch;
    if buckets.len() < blocks * ranges {
        buckets.resize_with(blocks * ranges, Vec::new);
    }
    debug_assert!(
        buckets.iter().all(Vec::is_empty),
        "buckets drained per call"
    );
    if range_touched.len() < ranges {
        range_touched.resize_with(ranges, Vec::new);
    }
    if range_rows.len() < ranges {
        range_rows.resize_with(ranges, FrontierMatrix::default);
    }
    for rows in range_rows.iter_mut().take(ranges) {
        rows.reset(k);
    }

    // Phase A: bucket (column, frontier-row, weight) triples by output
    // range. Each block is owned by exactly one worker, so its `ranges`
    // bucket slots are written disjointly.
    let bucket_slice = SharedSlice::new(&mut buckets[..blocks * ranges]);
    pool.for_each_index(blocks, Schedule::Dynamic(1), |b| {
        // SAFETY: block `b` owns bucket slots `[b*ranges, (b+1)*ranges)`.
        let mine = unsafe { bucket_slice.range_mut(b * ranges, (b + 1) * ranges) };
        let lo = b * VXM_BLOCK;
        let hi = (lo + VXM_BLOCK).min(x.len());
        let mut scanned = 0u64;
        for t in lo..hi {
            let (u, row_active, _) = x.row(t);
            let (cols, weights) = a.row_parts(u);
            scanned += cols.len() as u64;
            for (e, &j) in cols.iter().enumerate() {
                if row_active & col_mask(j) == 0 {
                    continue;
                }
                mine[j as usize / range_width].push((j, t as u32, weights[e]));
            }
        }
        record(Counter::EdgesExamined, scanned);
    });

    // Phase B: each range replays its buckets in block order into its
    // disjoint SPA window — per-(vertex, column) combine order is
    // therefore the serial frontier order.
    spa.begin(n, k);
    let (stamps, active, values, generation) = spa.parts_mut();
    let stamp_slice = SharedSlice::new(&mut stamps[..n]);
    let active_slice = SharedSlice::new(&mut active[..n]);
    let value_slice = SharedSlice::new(&mut values[..n * k]);
    let touched_slice = SharedSlice::new(&mut range_touched[..ranges]);
    let rows_slice = SharedSlice::new(&mut range_rows[..ranges]);
    pool.for_each_index(ranges, Schedule::Dynamic(1), |r| {
        let jlo = r * range_width;
        let jhi = (jlo + range_width).min(n);
        // SAFETY: range `r` owns SPA window `[jlo, jhi)` (values window
        // `[jlo*k, jhi*k)`), bucket slots `b*ranges + r` for every block,
        // and its own output vectors.
        let stamps_r = unsafe { stamp_slice.range_mut(jlo, jhi) };
        let active_r = unsafe { active_slice.range_mut(jlo, jhi) };
        let values_r = unsafe { value_slice.range_mut(jlo * k, jhi * k) };
        let touched = &mut unsafe { touched_slice.range_mut(r, r + 1) }[0];
        let out = &mut unsafe { rows_slice.range_mut(r, r + 1) }[0];
        let (mut hits, mut inserts) = (0u64, 0u64);
        for b in 0..blocks {
            let bucket =
                &mut unsafe { bucket_slice.range_mut(b * ranges + r, b * ranges + r + 1) }[0];
            for (j, t, w) in bucket.drain(..) {
                let jj = j as usize - jlo;
                let (u, row_active, row_vals) = x.row(t as usize);
                // Pure closure + unchanged inputs: the same nonzero word
                // phase A saw.
                let mut allowed = row_active & col_mask(j);
                if stamps_r[jj] != generation {
                    stamps_r[jj] = generation;
                    active_r[jj] = 0;
                    touched.push(j);
                }
                while allowed != 0 {
                    let c = allowed.trailing_zeros() as usize;
                    allowed &= allowed - 1;
                    let slot = jj * k + c;
                    if active_r[jj] >> c & 1 != 0 {
                        if add.is_terminal(&values_r[slot]) {
                            continue;
                        }
                        let product = semiring.multiply(u, w, &row_vals[c]);
                        // Same shape as the serial path (`combine(identity,
                        // product)` first) so results match bit-for-bit.
                        let value = add.combine(add.identity(), product);
                        let cur = values_r[slot].clone();
                        values_r[slot] = add.combine(cur, value);
                        hits += 1;
                    } else {
                        let product = semiring.multiply(u, w, &row_vals[c]);
                        values_r[slot] = add.combine(add.identity(), product);
                        active_r[jj] |= 1 << c;
                        inserts += 1;
                    }
                }
            }
        }
        touched.sort_unstable();
        for j in touched.drain(..) {
            let jj = j as usize - jlo;
            let aw = active_r[jj];
            out.push_row_with(j, aw, |c| {
                if aw >> c & 1 != 0 {
                    values_r[jj * k + c].clone()
                } else {
                    Y::default()
                }
            });
        }
        record(Counter::SpaHits, hits);
        record(Counter::SpaInserts, inserts);
    });

    // Ranges cover ascending index windows, so concatenation in range
    // order yields the globally sorted row list.
    let mut out = FrontierMatrix::new(k);
    for rows in range_rows.iter_mut().take(ranges) {
        out.append(rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{vxm, Mask};
    use crate::semiring::{AnySecondI, PlusSecond};
    use crate::vector::{GrbVector, Storage};
    use gapbs_graph::gen;

    fn all_columns(_: GrbIndex) -> u64 {
        u64::MAX
    }

    #[test]
    fn single_column_agrees_with_vxm() {
        let g = gen::kron(8, 8, 3);
        let a = GrbMatrix::from_graph(&g);
        let ws = OpWorkspace::new();
        let pool = ThreadPool::new(2);
        let semiring = AnySecondI::default();
        // A parent bitmap covering some vertices, complemented as the mask.
        let mut pi: GrbVector<GrbIndex> = GrbVector::new(a.ncols());
        pi.convert(Storage::Bitmap, None);
        for v in (0..a.ncols()).step_by(3) {
            pi.set(v, v);
        }
        let frontier: Vec<GrbIndex> = (0..a.ncols()).step_by(5).collect();
        let x: GrbVector<()> =
            GrbVector::from_sorted_entries(a.ncols(), frontier.iter().map(|&v| (v, ())).collect());
        let mask = Mask::complement(&pi);
        let expect = vxm(&semiring, &x, &a, Some(&mask), &ws, &pool);

        let mut fm: FrontierMatrix<()> = FrontierMatrix::new(1);
        for &v in &frontier {
            fm.push_row(v, 1, &[()]);
        }
        let (words, _) = pi.bitmap_slots().expect("pi is bitmap");
        let unseen = |j: GrbIndex| u64::from(words[j as usize / 64] >> (j % 64) & 1 == 0);
        let got = vxm_multi(&semiring, &fm, &a, &unseen, &ws, &pool);

        let expect_entries = expect.sparse_entries().expect("vxm output is sparse");
        assert_eq!(got.len(), expect_entries.len());
        for (t, &(j, p)) in expect_entries.iter().enumerate() {
            let (gj, ga, gv) = got.row(t);
            assert_eq!(gj, j);
            assert_eq!(ga, 1);
            assert_eq!(gv[0], p, "parent mismatch at {j}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_across_widths() {
        for &k in &[1usize, 3, 64] {
            let g = gen::kron(10, 8, 7);
            let a = GrbMatrix::from_graph(&g);
            let n = a.ncols();
            let semiring = PlusSecond::default();
            // A wide frontier with k staggered columns of float values.
            let mut fm: FrontierMatrix<f64> = FrontierMatrix::new(k);
            for v in 0..n {
                if v % 2 == 0 {
                    let active = (0..k)
                        .filter(|c| (v as usize + c) % 3 != 0)
                        .fold(0u64, |m, c| m | 1 << c);
                    if active == 0 {
                        continue;
                    }
                    let vals: Vec<f64> =
                        (0..k).map(|c| 1.0 + (v as f64) * 0.25 + c as f64).collect();
                    fm.push_row(v, active, &vals);
                }
            }
            assert!(fm.len() >= VXM_PAR_CUTOFF, "test must cross the cutoff");
            let mask = |j: GrbIndex| if j % 7 == 0 { 0 } else { u64::MAX };

            let serial_ws = OpWorkspace::new();
            let serial_pool = ThreadPool::new(1);
            let expect = vxm_multi(&semiring, &fm, &a, &mask, &serial_ws, &serial_pool);
            assert!(!expect.is_empty());
            for threads in [2, 3, 7] {
                let ws = OpWorkspace::new();
                let pool = ThreadPool::new(threads);
                // Twice per pool: the second call reuses warm scratch.
                for _ in 0..2 {
                    let got = vxm_multi(&semiring, &fm, &a, &mask, &ws, &pool);
                    assert_eq!(got.len(), expect.len(), "{threads} threads, k={k}");
                    for t in 0..expect.len() {
                        let (ej, ea, ev) = expect.row(t);
                        let (gj, ga, gv) = got.row(t);
                        assert_eq!((gj, ga), (ej, ea), "{threads} threads, k={k}");
                        for c in 0..k {
                            assert!(
                                gv[c].to_bits() == ev[c].to_bits(),
                                "row {ej} col {c}: {} vs {} ({threads} threads, k={k})",
                                gv[c],
                                ev[c]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn col_mask_gates_columns_independently() {
        // Path 0 -> 1 -> 2; column 0 may write vertex 1, column 1 may not.
        let g = gapbs_graph::Builder::new()
            .build(gapbs_graph::edgelist::edges([(0, 1), (1, 2)]))
            .unwrap();
        let a = GrbMatrix::from_graph(&g);
        let ws = OpWorkspace::new();
        let pool = ThreadPool::new(1);
        let semiring = PlusSecond::default();
        let mut fm: FrontierMatrix<f64> = FrontierMatrix::new(2);
        fm.push_row(0, 0b11, &[2.0, 5.0]);
        let mask = |j: GrbIndex| if j == 1 { 0b01 } else { 0b11 };
        let got = vxm_multi(&semiring, &fm, &a, &mask, &ws, &pool);
        assert_eq!(got.len(), 1);
        let (j, active, vals) = got.row(0);
        assert_eq!(j, 1);
        assert_eq!(active, 0b01, "column 1 must be masked out");
        assert_eq!(vals[0], 2.0);
        assert_eq!(vals[1], 0.0, "inactive slots hold the default");
    }

    #[test]
    fn duplicate_contributions_combine_in_frontier_order() {
        // Two frontier rows both reach vertex 2.
        let g = gapbs_graph::Builder::new()
            .build(gapbs_graph::edgelist::edges([(0, 2), (1, 2)]))
            .unwrap();
        let a = GrbMatrix::from_graph(&g);
        let ws = OpWorkspace::new();
        let pool = ThreadPool::new(1);
        let semiring = PlusSecond::default();
        let mut fm: FrontierMatrix<f64> = FrontierMatrix::new(2);
        fm.push_row(0, 0b11, &[1.0, 10.0]);
        fm.push_row(1, 0b01, &[2.0, 0.0]);
        let got = vxm_multi(&semiring, &fm, &a, &all_columns, &ws, &pool);
        assert_eq!(got.len(), 1);
        let (j, active, vals) = got.row(0);
        assert_eq!(j, 2);
        assert_eq!(active, 0b11);
        assert_eq!(vals[0], 3.0, "column 0 sums both rows");
        assert_eq!(vals[1], 10.0, "column 1 sees only row 0");
    }

    #[test]
    fn empty_frontier_yields_empty_output() {
        let g = gen::kron(6, 4, 1);
        let a = GrbMatrix::from_graph(&g);
        let ws = OpWorkspace::new();
        let pool = ThreadPool::new(2);
        let fm: FrontierMatrix<f64> = FrontierMatrix::new(4);
        let got = vxm_multi(&PlusSecond::default(), &fm, &a, &all_columns, &ws, &pool);
        assert!(got.is_empty());
        assert_eq!(got.k(), 4);
    }
}
