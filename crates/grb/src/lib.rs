//! A GraphBLAS-style sparse linear algebra engine plus LAGraph-style graph
//! kernels, mirroring SuiteSparse:GraphBLAS as evaluated in the paper.
//!
//! Three deliberate fidelity choices reproduce the behaviours the paper
//! attributes to SuiteSparse:
//!
//! 1. **64-bit indices everywhere.** GraphBLAS is designed for matrices
//!    with up to 2⁶⁰ rows, so it pays a 64-bit index tax the 32-bit
//!    frameworks do not (§V). [`GrbMatrix`] and [`GrbVector`] use `u64`.
//! 2. **Bulk operations only.** Algorithms are expressed as masked
//!    matrix-vector products over semirings ([`ops`]); there is no
//!    per-vertex early exit beyond what the `any` monoid's terminal
//!    condition allows. High-diameter graphs therefore execute many small,
//!    whole-vector operations — the Road-graph weakness in Table V.
//! 3. **Representation switching.** Vectors convert between sparse-list,
//!    bitmap and full storage ([`vector::Storage`]), and the conversion
//!    time is part of the kernel, as the paper notes for the BFS.
//!
//! The [`lagraph`] module implements the six GAP kernels strictly on top
//! of this engine, the way LAGraph sits on GraphBLAS.

pub mod frontier;
pub mod lagraph;
pub mod matrix;
pub mod ops;
pub mod semiring;
pub mod vector;
pub mod workspace;

pub use frontier::{vxm_multi, FrontierMatrix};
pub use matrix::GrbMatrix;
pub use semiring::{AddMonoid, Semiring};
pub use vector::{GrbVector, Storage};
pub use workspace::OpWorkspace;

/// Index type: 64-bit, per the GraphBLAS design point discussed in §V.
pub type GrbIndex = u64;
