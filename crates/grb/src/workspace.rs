//! Reusable operation workspaces: the allocation story of the engine.
//!
//! SuiteSparse keeps per-operation scratch (sparse accumulators, bucket
//! buffers) alive between calls; our old engine allocated a fresh
//! `vec![None; n]` accumulator on *every* `vxm` — once per BFS level,
//! once per SSSP bucket wave. [`OpWorkspace`] is the fix: a type-keyed
//! pool of scratch buffers threaded through `LaGraphContext`, checked
//! out at the top of an operation and checked back in (with capacity
//! intact) at the bottom. The only lock sits at that boundary — never on
//! an output path.
//!
//! The central buffer is the **generation-stamped sparse accumulator**
//! ([`Spa`]): a dense `(stamp, value)` pair of arrays where "occupied
//! this call" means `stamp[j] == generation`. Resetting between calls is
//! a single integer increment, so the O(n) clear the old engine paid per
//! call disappears entirely.

use crate::GrbIndex;
use gapbs_parallel::sync::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A type-keyed pool of reusable operation scratch buffers.
///
/// `Clone` intentionally produces an *empty* workspace: buffers are pure
/// caches, so a cloned context starts cold rather than sharing (or
/// deep-copying) scratch memory.
#[derive(Default)]
pub struct OpWorkspace {
    inner: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
}

impl OpWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        OpWorkspace::default()
    }

    /// Checks out the buffer of type `B`, or a default-constructed one
    /// if none is pooled (first call, or a concurrent op holds it).
    pub(crate) fn take<B: Any + Send + Default>(&self) -> B {
        self.inner
            .lock()
            .remove(&TypeId::of::<B>())
            .and_then(|b| b.downcast::<B>().ok())
            .map_or_else(B::default, |b| *b)
    }

    /// Returns a buffer to the pool so the next call reuses its capacity.
    pub(crate) fn put<B: Any + Send>(&self, buf: B) {
        self.inner.lock().insert(TypeId::of::<B>(), Box::new(buf));
    }
}

impl Clone for OpWorkspace {
    fn clone(&self) -> Self {
        OpWorkspace::new()
    }
}

impl std::fmt::Debug for OpWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpWorkspace").finish_non_exhaustive()
    }
}

/// A generation-stamped sparse accumulator over index space `0..n`.
///
/// Slot `j` is live iff `stamps[j] == generation`; values of dead slots
/// are stale garbage that is never read. [`begin`](Spa::begin) makes
/// every slot dead in O(1) by bumping the generation (with a full stamp
/// reset only on the u32 wraparound, once per ~4 billion calls).
#[derive(Debug)]
pub(crate) struct Spa<Y> {
    stamps: Vec<u32>,
    values: Vec<Option<Y>>,
    generation: u32,
}

impl<Y> Default for Spa<Y> {
    fn default() -> Self {
        Spa {
            stamps: Vec::new(),
            values: Vec::new(),
            generation: 0,
        }
    }
}

impl<Y> Spa<Y> {
    /// Starts a new accumulation over `0..n`: all slots dead.
    pub fn begin(&mut self, n: usize) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.values.resize_with(n, || None);
        }
    }

    /// Combines `value` into slot `j`: returns `true` on a hit (the slot
    /// was live and `combine` ran) and `false` on a first insert.
    #[inline]
    pub fn upsert(&mut self, j: usize, value: Y, combine: impl FnOnce(Y, Y) -> Y) -> bool {
        if self.stamps[j] == self.generation {
            let old = self.values[j].take().expect("live SPA slot holds a value");
            self.values[j] = Some(combine(old, value));
            true
        } else {
            self.stamps[j] = self.generation;
            self.values[j] = Some(value);
            false
        }
    }

    /// `true` if slot `j` is live this generation.
    #[inline]
    pub fn is_live(&self, j: usize) -> bool {
        self.stamps[j] == self.generation
    }

    /// The value in live slot `j`.
    #[inline]
    pub fn peek(&self, j: usize) -> &Y {
        debug_assert!(self.is_live(j));
        self.values[j]
            .as_ref()
            .expect("live SPA slot holds a value")
    }

    /// Moves the value out of live slot `j` (the slot stays live but
    /// empty — only call once per slot per generation, at emit time).
    #[inline]
    pub fn take_value(&mut self, j: usize) -> Y {
        debug_assert!(self.is_live(j));
        self.values[j].take().expect("live SPA slot holds a value")
    }

    /// Raw stamp/value arrays plus the live generation, for pool regions
    /// that partition the index space into disjoint worker-owned ranges.
    pub fn parts_mut(&mut self) -> (&mut [u32], &mut [Option<Y>], u32) {
        (&mut self.stamps, &mut self.values, self.generation)
    }
}

/// Scratch for `vxm` (SpMSpV): the SPA plus the radix-pass buffers of
/// the parallel path. All vectors keep their capacity across calls.
pub(crate) struct VxmScratch<Y> {
    /// The shared accumulator (serial path and parallel phase B).
    pub spa: Spa<Y>,
    /// Serial path: indices touched this call, emitted in sorted order.
    pub touched: Vec<GrbIndex>,
    /// Parallel phase A output: `blocks × ranges` product buckets,
    /// flat-indexed `block * ranges + range`, drained by phase B.
    pub buckets: Vec<Vec<(GrbIndex, Y)>>,
    /// Parallel phase B: per-range touched-index lists.
    pub range_touched: Vec<Vec<GrbIndex>>,
    /// Parallel phase B: per-range sorted output entries, concatenated
    /// in range order into the result.
    pub range_entries: Vec<Vec<(GrbIndex, Y)>>,
}

impl<Y> Default for VxmScratch<Y> {
    fn default() -> Self {
        VxmScratch {
            spa: Spa::default(),
            touched: Vec::new(),
            buckets: Vec::new(),
            range_touched: Vec::new(),
            range_entries: Vec::new(),
        }
    }
}

/// A k-wide generation-stamped sparse accumulator: the [`Spa`] idea
/// widened to one row of `k` column slots per vertex. Slot `j` is live
/// iff stamped this generation; a live slot carries an `active` word
/// saying which of its `k` columns hold a value. Values are k-strided
/// (`values[j * k + c]`), and dead or inactive slots hold stale garbage
/// that is never read — this is the generalization of the `SlotMap`
/// machinery `bc_batch` used before the multi-column `vxm` existed.
#[derive(Debug)]
pub(crate) struct MultiSpa<Y> {
    stamps: Vec<u32>,
    active: Vec<u64>,
    values: Vec<Y>,
    generation: u32,
    k: usize,
}

impl<Y> Default for MultiSpa<Y> {
    fn default() -> Self {
        MultiSpa {
            stamps: Vec::new(),
            active: Vec::new(),
            values: Vec::new(),
            generation: 0,
            k: 0,
        }
    }
}

impl<Y: Clone + Default> MultiSpa<Y> {
    /// Starts a new k-wide accumulation over `0..n`: all slots dead.
    pub fn begin(&mut self, n: usize, k: usize) {
        self.k = k;
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.active.resize(n, 0);
        }
        if self.values.len() < n * k {
            self.values.resize_with(n * k, Y::default);
        }
    }

    /// `true` if slot `j` is live this generation.
    #[inline]
    pub fn is_live(&self, j: usize) -> bool {
        self.stamps[j] == self.generation
    }

    /// Stamps slot `j` live with no active columns yet.
    #[inline]
    pub fn make_live(&mut self, j: usize) {
        self.stamps[j] = self.generation;
        self.active[j] = 0;
    }

    /// Active-column word of live slot `j`.
    #[inline]
    pub fn active_word(&self, j: usize) -> u64 {
        debug_assert!(self.is_live(j));
        self.active[j]
    }

    /// `true` if column `c` of live slot `j` holds a value.
    #[inline]
    pub fn col_active(&self, j: usize, c: usize) -> bool {
        debug_assert!(self.is_live(j));
        self.active[j] >> c & 1 != 0
    }

    /// The value in active column `c` of slot `j`.
    #[inline]
    pub fn peek(&self, j: usize, c: usize) -> &Y {
        debug_assert!(self.col_active(j, c));
        &self.values[j * self.k + c]
    }

    /// Writes column `c` of live slot `j`, marking it active.
    #[inline]
    pub fn set(&mut self, j: usize, c: usize, value: Y) {
        debug_assert!(self.is_live(j));
        self.values[j * self.k + c] = value;
        self.active[j] |= 1 << c;
    }

    /// Raw stamp/active/value arrays plus the live generation, for pool
    /// regions that partition the index space into disjoint worker-owned
    /// ranges (the value window of range `[lo, hi)` is `[lo*k, hi*k)`).
    pub fn parts_mut(&mut self) -> (&mut [u32], &mut [u64], &mut [Y], u32) {
        (
            &mut self.stamps,
            &mut self.active,
            &mut self.values,
            self.generation,
        )
    }
}

/// Scratch for the multi-column `vxm` over a frontier matrix: the k-wide
/// SPA plus the radix-pass buffers of its parallel path. All vectors keep
/// their capacity across calls.
pub(crate) struct MultiVxmScratch<Y> {
    /// The shared k-wide accumulator (serial path and parallel phase B).
    pub spa: MultiSpa<Y>,
    /// Serial path: indices touched this call, emitted in sorted order.
    pub touched: Vec<GrbIndex>,
    /// Parallel phase A output: `blocks × ranges` buckets of
    /// `(output column, frontier row, weight)` triples, flat-indexed
    /// `block * ranges + range`, drained by phase B.
    pub buckets: Vec<Vec<(GrbIndex, u32, i32)>>,
    /// Parallel phase B: per-range touched-index lists.
    pub range_touched: Vec<Vec<GrbIndex>>,
    /// Parallel phase B: per-range output rows, concatenated in range
    /// order into the result.
    pub range_rows: Vec<crate::frontier::FrontierMatrix<Y>>,
}

impl<Y> Default for MultiVxmScratch<Y> {
    fn default() -> Self {
        MultiVxmScratch {
            spa: MultiSpa::default(),
            touched: Vec::new(),
            buckets: Vec::new(),
            range_touched: Vec::new(),
            range_rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_reuses_capacity_across_checkouts() {
        let ws = OpWorkspace::new();
        let mut scratch: VxmScratch<u64> = ws.take();
        scratch.spa.begin(100);
        assert!(!scratch.spa.upsert(7, 1, |a, b| a + b));
        assert!(scratch.spa.upsert(7, 2, |a, b| a + b));
        assert_eq!(scratch.spa.take_value(7), 3);
        scratch.touched.reserve(4096);
        let cap = scratch.touched.capacity();
        ws.put(scratch);

        let scratch: VxmScratch<u64> = ws.take();
        assert!(scratch.touched.capacity() >= cap, "capacity must survive");
        // A second checkout while the first is out gets a fresh default.
        let fresh: VxmScratch<u64> = ws.take();
        assert_eq!(fresh.touched.capacity(), 0);
    }

    #[test]
    fn spa_generations_isolate_calls() {
        let mut spa: Spa<u32> = Spa::default();
        spa.begin(10);
        spa.upsert(3, 30, |_, _| unreachable!());
        spa.begin(10);
        assert!(!spa.is_live(3), "new generation must kill old slots");
        assert!(!spa.upsert(3, 31, |_, _| unreachable!()));
        assert_eq!(spa.take_value(3), 31);
    }

    #[test]
    fn multi_spa_generations_isolate_calls_per_column() {
        let mut spa: MultiSpa<f64> = MultiSpa::default();
        spa.begin(8, 4);
        assert!(!spa.is_live(5));
        spa.make_live(5);
        assert!(spa.is_live(5));
        assert_eq!(spa.active_word(5), 0);
        spa.set(5, 2, 1.5);
        assert!(spa.col_active(5, 2));
        assert!(!spa.col_active(5, 0));
        assert_eq!(*spa.peek(5, 2), 1.5);
        assert_eq!(spa.active_word(5), 0b100);
        spa.begin(8, 4);
        assert!(!spa.is_live(5), "new generation must kill old slots");
    }

    #[test]
    fn cloned_workspace_starts_cold() {
        let ws = OpWorkspace::new();
        ws.put::<Vec<u64>>(Vec::with_capacity(64));
        let cold = ws.clone();
        let buf: Vec<u64> = cold.take();
        assert_eq!(buf.capacity(), 0);
        let warm: Vec<u64> = ws.take();
        assert!(warm.capacity() >= 64);
    }
}
