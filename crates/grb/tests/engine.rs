//! Integration tests of the GraphBLAS engine: algebraic laws of the
//! semirings, mask semantics, storage-switching equivalence, and
//! engine-level equivalences the LAGraph kernels rely on.

use gapbs_graph::edgelist::edges;
use gapbs_graph::{gen, Builder};
use gapbs_grb::ops::{self, Mask};
use gapbs_grb::semiring::{AddMonoid, AnyMonoid, MinMonoid, MinPlus, PlusMonoid, PlusSecond};
use gapbs_grb::{GrbMatrix, GrbVector, OpWorkspace, Storage};
use gapbs_parallel::ThreadPool;

fn pool() -> ThreadPool {
    ThreadPool::new(2)
}

fn ws() -> OpWorkspace {
    OpWorkspace::new()
}

#[test]
fn monoid_laws_hold() {
    // Associativity + commutativity + identity on sampled values.
    let vals = [0i64, 1, -5, 100, i64::MAX];
    let m = MinMonoid;
    for &a in &vals {
        assert_eq!(m.combine(a, m.identity()), a, "identity");
        for &b in &vals {
            assert_eq!(m.combine(a, b), m.combine(b, a), "commutativity");
            for &c in &vals {
                assert_eq!(
                    m.combine(m.combine(a, b), c),
                    m.combine(a, m.combine(b, c)),
                    "associativity"
                );
            }
        }
    }
    let p = PlusMonoid;
    assert_eq!(p.combine(p.identity(), 2.5), 2.5);
    let any = AnyMonoid;
    assert_eq!(any.combine(None, None), None);
    assert!(any.is_terminal(&Some(1)));
}

#[test]
fn push_and_pull_products_agree() {
    // y = x'A (push) must equal y = A'x (pull over the transpose) for
    // every semiring used by the kernels.
    let g = gen::kron(7, 6, 3);
    let a = GrbMatrix::from_graph(&g);
    let at = a.transpose();
    let x = GrbVector::from_entries(
        a.ncols(),
        (0..a.ncols()).step_by(7).map(|i| (i, 1.0f64)).collect(),
    );
    let s = PlusSecond::default();
    let push: GrbVector<f64> = ops::vxm(&s, &x, &a, None::<&Mask<'_, ()>>, &ws(), &pool());
    let pull: GrbVector<f64> = ops::mxv(&s, &at, &x, None::<&Mask<'_, ()>>, &ws(), &pool());
    assert_eq!(push.nvals(), pull.nvals());
    for (i, v) in push.iter() {
        assert_eq!(pull.get(i), Some(v), "index {i}");
    }
}

#[test]
fn storage_representation_does_not_change_results() {
    let g = gen::urand(7, 6, 5);
    let a = GrbMatrix::from_graph(&g);
    let entries: Vec<(u64, i64)> = (0..a.ncols()).step_by(3).map(|i| (i, i as i64)).collect();
    let s = MinPlus::default();
    let mut results = Vec::new();
    for storage in [Storage::Sparse, Storage::Bitmap, Storage::Full] {
        let mut x = GrbVector::from_entries(a.ncols(), entries.clone());
        x.convert(storage, Some(i64::MAX - 1_000_000));
        let y: GrbVector<i64> = ops::mxv(&s, &a, &x, None::<&Mask<'_, ()>>, &ws(), &pool());
        // Collect only the indices present in the sparse baseline run to
        // compare like with like (Full storage adds near-infinite fill
        // entries that relax nothing meaningful but exist structurally).
        results.push(y);
    }
    // Sparse and Bitmap must agree exactly.
    let (sparse, bitmap) = (&results[0], &results[1]);
    assert_eq!(sparse.nvals(), bitmap.nvals());
    for (i, v) in sparse.iter() {
        assert_eq!(bitmap.get(i), Some(v), "index {i}");
    }
}

#[test]
fn complement_mask_is_exact_set_difference() {
    let g = gen::kron(6, 8, 1);
    let a = GrbMatrix::from_graph(&g);
    let q = GrbVector::from_entries(a.ncols(), vec![(0, ()), (5, ())]);
    let visited = GrbVector::from_entries(a.ncols(), vec![(1u64, 1u8), (2, 1)]);
    let s = gapbs_grb::semiring::AnySecondI::default();
    let unmasked: GrbVector<Option<u64>> =
        ops::vxm(&s, &q, &a, None::<&Mask<'_, ()>>, &ws(), &pool());
    let mask = Mask::complement(&visited);
    let masked: GrbVector<Option<u64>> = ops::vxm(&s, &q, &a, Some(&mask), &ws(), &pool());
    for (i, _) in unmasked.iter() {
        let should_exist = !visited.contains(i);
        assert_eq!(masked.contains(i), should_exist, "index {i}");
    }
}

#[test]
fn tril_triu_transpose_identities() {
    let g = gen::urand(7, 8, 2);
    let a = GrbMatrix::from_graph(&g);
    let l = a.tril();
    let u = a.triu();
    // For a symmetric matrix, L' == U.
    let lt = l.transpose();
    assert_eq!(lt.nvals(), u.nvals());
    for i in 0..lt.nrows() {
        assert_eq!(lt.row(i), u.row(i), "row {i}");
    }
    // Double transpose is the identity.
    let att = a.transpose().transpose();
    for i in 0..a.nrows() {
        assert_eq!(att.row(i), a.row(i));
    }
}

#[test]
fn reduce_matches_manual_sum() {
    let v = GrbVector::from_entries(10, vec![(1, 2.0f64), (4, 3.5), (9, -1.0)]);
    assert_eq!(ops::reduce(&v, &PlusMonoid, &pool()), 4.5);
}

#[test]
fn masked_mxm_tc_equals_reference_count_on_corpus_shapes() {
    for g in [gen::kron(7, 8, 9), gen::urand(7, 8, 9)] {
        let a = GrbMatrix::from_graph(&g);
        let count = ops::mxm_pair_masked_sum(&a.tril(), &a.triu().transpose(), &pool());
        let mut brute = 0u64;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if v <= u {
                    continue;
                }
                for &w in g.out_neighbors(v) {
                    if w > v && g.out_csr().has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count, brute);
    }
}

#[test]
fn empty_matrix_and_vector_edge_cases() {
    let g = Builder::new().num_vertices(4).build(edges([])).unwrap();
    let a = GrbMatrix::from_graph(&g);
    assert_eq!(a.nvals(), 0);
    let x: GrbVector<f64> = GrbVector::new(4);
    let s = PlusSecond::default();
    let y: GrbVector<f64> = ops::mxv(&s, &a, &x, None::<&Mask<'_, ()>>, &ws(), &pool());
    assert_eq!(y.nvals(), 0);
    let z: GrbVector<f64> = ops::vxm(&s, &x, &a, None::<&Mask<'_, ()>>, &ws(), &pool());
    assert_eq!(z.nvals(), 0);
}
