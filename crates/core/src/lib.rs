//! The benchmark harness — the paper's methodological contribution,
//! reproduced as a library.
//!
//! The study's recipe (§IV, §VI): run every framework on the *same*
//! hardware, under negotiated rules, in two configurations:
//!
//! * **Baseline** — out-of-the-box behaviour: built-in heuristics allowed,
//!   per-graph hand tuning forbidden (except SSSP's delta);
//! * **Optimized** — per-graph tuning allowed, optimizations reported.
//!
//! This crate provides:
//!
//! * [`Kernel`] / [`Mode`] — the 6-kernel × 2-mode test space,
//! * [`BenchGraph`] — a prepared benchmark input (both graph directions,
//!   weighted companion, symmetrized TC view, per-graph delta),
//! * [`Framework`] / [`PreparedKernels`] — the adapter interface each of
//!   the six framework crates implements ([`adapters`]),
//! * [`registry::all_frameworks`] — the evaluated frameworks,
//! * [`runner`] — the trial protocol (rotating seeded sources, best-of-N
//!   timing, per-trial verification via `gapbs-verify`),
//! * [`report`] — renderers for Tables I through V.

pub mod adapters;
pub mod framework;
pub mod kernel;
pub mod registry;
pub mod report;
pub mod runner;
pub mod snapshot_cache;
pub mod spec;

pub use framework::{BenchGraph, Framework, FrameworkInfo, PreparedKernels};
pub use kernel::{Kernel, Mode};
pub use registry::all_frameworks;
pub use report::Report;
pub use runner::{
    run_cell, run_cell_in_pool, run_matrix, run_matrix_in_pool, CellRecord, TrialConfig,
};
pub use snapshot_cache::CacheOutcome;
