//! Adapter for the Graph Kernel Collection (`gapbs-gkc`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_parallel::ThreadPool;

/// GKC: hand-tuned black-box kernels.
#[derive(Debug, Default, Clone, Copy)]
pub struct GkcFramework;

impl Framework for GkcFramework {
    fn name(&self) -> &'static str {
        "GKC"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "GKC",
            kind: "direct implementations",
            data_structure: "outgoing & (opt.) incoming edges",
            abstraction: "arbitrary",
            synchronization: "algorithm-specific, level-synchronous",
            intended_users: "application developers",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice {
                simd: true,
                ..AlgorithmChoice::plain("Direction-optimizing")
            },
            Kernel::Sssp => AlgorithmChoice {
                simd: true,
                ..AlgorithmChoice::plain("Delta-stepping")
            },
            Kernel::Cc => AlgorithmChoice::plain("Shiloach-Vishkin"),
            Kernel::Pr => AlgorithmChoice {
                simd: true,
                ..AlgorithmChoice::plain("Gauss-Seidel SpMV")
            },
            Kernel::Bc => AlgorithmChoice::plain("Brandes"),
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                simd: true,
                ..AlgorithmChoice::plain("Lee & Low")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        _mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // GKC's Optimized gains in the paper came from hyperthreading
        // only; code paths are the same in both modes.
        Box::new(Prepared {
            input,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        gapbs_gkc::bfs(&self.input.graph, source, &self.pool)
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        gapbs_gkc::sssp(&self.input.wgraph, source, self.input.delta, &self.pool)
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        gapbs_gkc::pr(&self.input.graph, 0.85, 1e-4, 100, &self.pool)
    }

    fn cc(&self) -> Vec<NodeId> {
        gapbs_gkc::cc(&self.input.graph, &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        gapbs_gkc::bc(&self.input.graph, sources, &self.pool)
    }

    fn tc(&self) -> u64 {
        gapbs_gkc::tc(&self.input.sym_graph, &self.pool)
    }
}
