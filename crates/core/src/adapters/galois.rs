//! Adapter for the Galois-style framework (`gapbs-galois`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_galois::cc::CcVariant;
use gapbs_galois::tc::Relabeling;
use gapbs_galois::ExecutionStyle;
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_graph::Graph;
use gapbs_parallel::ThreadPool;

/// Galois: operator formulation with asynchronous worklists.
#[derive(Debug, Default, Clone, Copy)]
pub struct GaloisFramework;

impl Framework for GaloisFramework {
    fn name(&self) -> &'static str {
        "Galois"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "Galois",
            kind: "generic high-level library",
            data_structure: "outgoing and/or incoming edges",
            abstraction: "vertex, edge, or chunked-edges centric",
            synchronization: "level-synchronous or asynchronous",
            intended_users: "graph domain experts",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice {
                async_variant: true,
                ..AlgorithmChoice::plain("Direction-optimizing")
            },
            Kernel::Sssp => AlgorithmChoice {
                async_variant: true,
                ..AlgorithmChoice::plain("Delta-stepping")
            },
            Kernel::Cc => AlgorithmChoice {
                async_variant: true,
                ..AlgorithmChoice::plain("Hybrid Afforest")
            },
            Kernel::Pr => AlgorithmChoice::plain("Gauss-Seidel SpMV"),
            Kernel::Bc => AlgorithmChoice {
                async_variant: true,
                ..AlgorithmChoice::plain("Brandes")
            },
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                ..AlgorithmChoice::plain("Order invariant")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // Baseline: degree-sampling heuristic guesses the diameter
        // (wrongly for Urand, §V). Optimized: the team knows the
        // diameter — async only for the genuinely deep Road.
        let style = match mode {
            Mode::Baseline => gapbs_galois::classify(&input.graph),
            Mode::Optimized => {
                if input.spec.high_diameter() {
                    ExecutionStyle::Asynchronous
                } else {
                    ExecutionStyle::BulkSynchronous
                }
            }
        };
        let cc_variant = match mode {
            Mode::Baseline => CcVariant::VertexAfforest,
            Mode::Optimized => CcVariant::EdgeBlockedAfforest,
        };
        // Optimized TC excludes relabel time: relabel during preparation.
        let (tc_graph, tc_relabeling) = match mode {
            Mode::Baseline => (None, Relabeling::HeuristicTimed),
            Mode::Optimized => (
                Some({
                    let _relabel = gapbs_telemetry::Span::enter(gapbs_telemetry::Phase::Relabel);
                    gapbs_galois::tc::relabel_for_optimized(&input.sym_graph, pool)
                }),
                Relabeling::AlreadyRelabeled,
            ),
        };
        Box::new(Prepared {
            input,
            style,
            cc_variant,
            tc_graph,
            tc_relabeling,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    style: ExecutionStyle,
    cc_variant: CcVariant,
    tc_graph: Option<Graph>,
    tc_relabeling: Relabeling,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        gapbs_galois::bfs(&self.input.graph, source, self.style, &self.pool)
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        gapbs_galois::sssp(
            &self.input.wgraph,
            source,
            self.input.delta,
            self.style,
            &self.pool,
        )
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        gapbs_galois::pr(&self.input.graph, 0.85, 1e-4, 100, &self.pool)
    }

    fn cc(&self) -> Vec<NodeId> {
        gapbs_galois::cc(&self.input.graph, self.cc_variant, &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        gapbs_galois::bc(&self.input.graph, sources, self.style, &self.pool)
    }

    fn tc(&self) -> u64 {
        let graph = self.tc_graph.as_ref().unwrap_or(&self.input.sym_graph);
        gapbs_galois::tc(graph, self.tc_relabeling, &self.pool)
    }
}
