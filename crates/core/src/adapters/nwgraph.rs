//! Adapter for the NWGraph-style generic library (`gapbs-nwgraph`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_nwgraph::{InRange, OutRange, WeightedOutRange};
use gapbs_parallel::ThreadPool;

/// NWGraph: generic algorithms over ranges of ranges.
#[derive(Debug, Default, Clone, Copy)]
pub struct NwGraphFramework;

impl Framework for NwGraphFramework {
    fn name(&self) -> &'static str {
        "NWGraph"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "NWGraph",
            kind: "header-only library",
            data_structure: "adjacency list as range of ranges",
            abstraction: "range-centric w/ tuple edge properties",
            synchronization: "algorithm-specific, level-synchronous",
            intended_users: "practicing C++ programmers",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice::plain("Direction-optimizing"),
            Kernel::Sssp => AlgorithmChoice::plain("Delta-stepping"),
            Kernel::Cc => AlgorithmChoice::plain("Afforest"),
            Kernel::Pr => AlgorithmChoice::plain("Gauss-Seidel SpMV"),
            Kernel::Bc => AlgorithmChoice::plain("Brandes"),
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                ..AlgorithmChoice::plain("Order invariant")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        _mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // NWGraph's Optimized gains in the paper came solely from
        // hyperthreading; the code paths are identical ("the low
        // requirement for parameter tuning [is] a feature", §V).
        Box::new(Prepared {
            input,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        gapbs_nwgraph::bfs(
            &OutRange(&self.input.graph),
            &InRange(&self.input.graph),
            source,
            &self.pool,
        )
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        gapbs_nwgraph::sssp(
            &WeightedOutRange(&self.input.wgraph),
            source,
            self.input.delta,
            &self.pool,
        )
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        gapbs_nwgraph::pr(
            &OutRange(&self.input.graph),
            &InRange(&self.input.graph),
            0.85,
            1e-4,
            100,
            &self.pool,
        )
    }

    fn cc(&self) -> Vec<NodeId> {
        // Weak connectivity needs undirected reach; the symmetrized view
        // provides it through the same generic interface.
        gapbs_nwgraph::cc(&OutRange(&self.input.sym_graph), &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        gapbs_nwgraph::bc(&OutRange(&self.input.graph), sources, &self.pool)
    }

    fn tc(&self) -> u64 {
        gapbs_nwgraph::tc(&OutRange(&self.input.sym_graph), &self.pool)
    }
}
