//! Adapter for the GAP reference implementations (`gapbs-ref`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_parallel::ThreadPool;

/// The GAP reference implementations — the study's performance baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct GapReference;

impl Framework for GapReference {
    fn name(&self) -> &'static str {
        "GAP"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "GAP",
            kind: "direct implementations",
            data_structure: "outgoing & incoming edges",
            abstraction: "vertex-centric",
            synchronization: "level-synchronous",
            intended_users: "researchers, benchmarkers",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice::plain("Direction-optimizing"),
            Kernel::Sssp => AlgorithmChoice {
                bucket_fusion: true,
                ..AlgorithmChoice::plain("Delta-stepping")
            },
            Kernel::Cc => AlgorithmChoice::plain("Afforest"),
            Kernel::Pr => AlgorithmChoice::plain("Jacobi SpMV"),
            Kernel::Bc => AlgorithmChoice::plain("Brandes"),
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                ..AlgorithmChoice::plain("Order invariant")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        _mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // The reference runs identical code in both modes; its Optimized
        // gains in the paper come from thread placement, which the shared
        // pool already pins.
        Box::new(Prepared {
            input,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        gapbs_ref::bfs(&self.input.graph, source, &self.pool)
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        gapbs_ref::sssp(&self.input.wgraph, source, self.input.delta, &self.pool)
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        let result = gapbs_ref::pr(&self.input.graph, &self.pool);
        (result.scores, result.iterations)
    }

    fn cc(&self) -> Vec<NodeId> {
        gapbs_ref::cc(&self.input.graph, &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        gapbs_ref::bc(&self.input.graph, sources, &self.pool)
    }

    fn tc(&self) -> u64 {
        gapbs_ref::tc(&self.input.sym_graph, &self.pool)
    }
}
