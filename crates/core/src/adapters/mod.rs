//! Framework adapters: one per evaluated system, mapping the shared
//! [`Framework`](crate::Framework) interface onto each crate's kernels.

mod galois;
mod gkc;
mod graphit;
mod nwgraph;
mod ref_impl;
mod suitesparse;

pub use galois::GaloisFramework;
pub use gkc::GkcFramework;
pub use graphit::GraphItFramework;
pub use nwgraph::NwGraphFramework;
pub use ref_impl::GapReference;
pub use suitesparse::SuiteSparseFramework;
