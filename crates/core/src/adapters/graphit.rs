//! Adapter for the GraphIt-style framework (`gapbs-graphit`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_graphit::Schedule;
use gapbs_parallel::ThreadPool;

/// GraphIt: a DSL decoupling algorithms from schedules.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphItFramework;

impl Framework for GraphItFramework {
    fn name(&self) -> &'static str {
        "GraphIt"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "GraphIt",
            kind: "domain-specific language compiler",
            data_structure: "outgoing & incoming edges w/ (opt.) blocking",
            abstraction: "vertex or edge centric",
            synchronization: "level-synchronous",
            intended_users: "graph domain experts",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice::plain("Direction-optimizing"),
            Kernel::Sssp => AlgorithmChoice {
                bucket_fusion: true,
                ..AlgorithmChoice::plain("Delta-stepping")
            },
            Kernel::Cc => AlgorithmChoice::plain("Label Propagation"),
            Kernel::Pr => AlgorithmChoice::plain("Jacobi SpMV"),
            Kernel::Bc => AlgorithmChoice::plain("Brandes"),
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                ..AlgorithmChoice::plain("Order invariant")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // Baseline: the default schedule (per-graph tuning was not allowed
        // for the Baseline data set, §V). Optimized: the hand-picked
        // per-graph schedules of §V.
        let schedule = match mode {
            Mode::Baseline => Schedule::baseline(),
            Mode::Optimized => Schedule::optimized_for(input.spec),
        };
        Box::new(Prepared {
            input,
            schedule,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    schedule: Schedule,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        gapbs_graphit::bfs(&self.input.graph, source, &self.schedule, &self.pool)
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        gapbs_graphit::sssp(
            &self.input.wgraph,
            source,
            self.input.delta,
            self.schedule.bucket_fusion,
            &self.pool,
        )
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        gapbs_graphit::pr(
            &self.input.graph,
            0.85,
            1e-4,
            100,
            self.schedule.cache_tiling,
            &self.pool,
        )
    }

    fn cc(&self) -> Vec<NodeId> {
        gapbs_graphit::cc(&self.input.graph, self.schedule.short_circuit, &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        gapbs_graphit::bc(
            &self.input.graph,
            sources,
            self.schedule.frontier,
            &self.pool,
        )
    }

    fn tc(&self) -> u64 {
        gapbs_graphit::tc(
            &self.input.sym_graph,
            self.schedule.intersection,
            &self.pool,
        )
    }
}
