//! Adapter for the GraphBLAS/LAGraph stack (`gapbs-grb`).

use crate::framework::{AlgorithmChoice, BenchGraph, Framework, FrameworkInfo, PreparedKernels};
use crate::kernel::{Kernel, Mode};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_grb::lagraph::{self, LaGraphContext};
use gapbs_parallel::ThreadPool;

/// SuiteSparse:GraphBLAS with LAGraph-style kernels.
#[derive(Debug, Default, Clone, Copy)]
pub struct SuiteSparseFramework;

impl Framework for SuiteSparseFramework {
    fn name(&self) -> &'static str {
        "SuiteSparse"
    }

    fn info(&self) -> FrameworkInfo {
        FrameworkInfo {
            name: "SuiteSparse",
            kind: "high-level library",
            data_structure: "outgoing & incoming edges w/ (opt.) hypersparsity",
            abstraction: "sparse linear algebra",
            synchronization: "level-synchronous",
            intended_users: "graph/matrix domain experts",
        }
    }

    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice {
        match kernel {
            Kernel::Bfs => AlgorithmChoice::plain("Direction-optimizing"),
            Kernel::Sssp => AlgorithmChoice::plain("Delta-stepping"),
            Kernel::Cc => AlgorithmChoice::plain("FastSV"),
            Kernel::Pr => AlgorithmChoice::plain("Jacobi SpMV"),
            Kernel::Bc => AlgorithmChoice::plain("Brandes"),
            Kernel::Tc => AlgorithmChoice {
                relabeling: true,
                ..AlgorithmChoice::plain("Order invariant")
            },
        }
    }

    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        _mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g> {
        // A linear-algebra framework's native graph format is the matrix;
        // building it is graph loading, not kernel time. 64-bit indices
        // throughout (the §V index tax).
        let ctx = LaGraphContext::from_wgraph(&input.graph, &input.wgraph);
        let sym_ctx = if input.graph.is_directed() {
            LaGraphContext::from_graph(&input.sym_graph)
        } else {
            ctx.clone()
        };
        Box::new(Prepared {
            input,
            ctx,
            sym_ctx,
            pool: pool.clone(),
        })
    }
}

struct Prepared<'g> {
    input: &'g BenchGraph,
    ctx: LaGraphContext,
    sym_ctx: LaGraphContext,
    pool: ThreadPool,
}

impl PreparedKernels for Prepared<'_> {
    fn bfs(&self, source: NodeId) -> Vec<NodeId> {
        lagraph::bfs(&self.ctx, source, &self.pool)
    }

    fn sssp(&self, source: NodeId) -> Vec<Distance> {
        lagraph::sssp(&self.ctx, source, self.input.delta, &self.pool)
    }

    fn pr(&self) -> (Vec<Score>, usize) {
        lagraph::pr(&self.ctx, 0.85, 1e-4, 100, &self.pool)
    }

    fn cc(&self) -> Vec<NodeId> {
        lagraph::cc(&self.ctx, &self.pool)
    }

    fn bc(&self, sources: &[NodeId]) -> Vec<Score> {
        // The paper's LAGraph BC is a batch algorithm over dense 4-by-n
        // state; the per-source `lagraph::bc` remains available for
        // comparison.
        lagraph::bc_batch(&self.ctx, sources, &self.pool)
    }

    fn tc(&self) -> u64 {
        lagraph::tc(&self.sym_ctx, &self.pool)
    }
}
