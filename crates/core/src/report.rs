//! Table renderers: regenerates Tables I–V of the paper from a benchmark
//! run (plain text and CSV).

use crate::framework::Framework;
use crate::kernel::{Kernel, Mode};
use crate::registry::BASELINE_FRAMEWORK;
use crate::runner::CellRecord;
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_graph::stats;
use gapbs_graph::Graph;
use std::fmt::Write as _;

/// Graph column order used by Tables IV and V.
pub const GRAPH_ORDER: [GraphSpec; 5] = GraphSpec::TABLE_ORDER;

/// Heat-map classification of a speedup ratio (Table V's color coding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heat {
    /// Slower than the GAP reference.
    Red,
    /// Within ±5% of the reference.
    White,
    /// Faster than the reference.
    Green,
}

impl Heat {
    /// Classifies a ratio (1.0 = parity with GAP).
    pub fn from_ratio(ratio: f64) -> Heat {
        if ratio < 0.95 {
            Heat::Red
        } else if ratio <= 1.05 {
            Heat::White
        } else {
            Heat::Green
        }
    }
}

/// A completed benchmark run.
#[derive(Debug, Clone)]
pub struct Report {
    scale: Scale,
    cells: Vec<CellRecord>,
}

impl Report {
    /// Wraps completed cells.
    pub fn new(scale: Scale, cells: Vec<CellRecord>) -> Self {
        Report { scale, cells }
    }

    /// Corpus scale of the run.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// All recorded cells.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// Looks up one cell.
    pub fn find(
        &self,
        framework: &str,
        kernel: Kernel,
        graph: &str,
        mode: Mode,
    ) -> Option<&CellRecord> {
        self.cells.iter().find(|c| {
            c.framework == framework && c.kernel == kernel && c.graph == graph && c.mode == mode
        })
    }

    /// Speedup of `framework` over the GAP reference for a test
    /// (Table V's percentage / 100): above 1.0 = faster than GAP.
    pub fn speedup(&self, framework: &str, kernel: Kernel, graph: &str, mode: Mode) -> Option<f64> {
        let fw = self.find(framework, kernel, graph, mode)?.stat_seconds();
        let gap = self
            .find(BASELINE_FRAMEWORK, kernel, graph, mode)?
            .stat_seconds();
        if fw > 0.0 {
            Some(gap / fw)
        } else {
            None
        }
    }

    /// The fastest framework and its time for a test (one Table IV cell).
    pub fn fastest(&self, kernel: Kernel, graph: &str, mode: Mode) -> Option<(&str, f64)> {
        self.cells
            .iter()
            .filter(|c| c.kernel == kernel && c.graph == graph && c.mode == mode && c.verified)
            .map(|c| (c.framework.as_str(), c.stat_seconds()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Renders Table IV: fastest times for both rule sets, annotated with
    /// the winning framework.
    pub fn table4(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE IV — FASTEST TIMES (seconds), corpus scale {}",
            self.scale
        );
        for mode in Mode::ALL {
            let _ = writeln!(out, "\n  {mode}");
            let _ = write!(out, "  {:>6}", "Kernel");
            for g in GRAPH_ORDER {
                let _ = write!(out, " {:>22}", g.name());
            }
            let _ = writeln!(out);
            for kernel in Kernel::ALL {
                let _ = write!(out, "  {:>6}", kernel.name());
                for g in GRAPH_ORDER {
                    match self.fastest(kernel, g.name(), mode) {
                        Some((fw, t)) => {
                            let _ = write!(out, " {:>12.6} ({:>7})", t, fw);
                        }
                        None => {
                            let _ = write!(out, " {:>22}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Renders Table V: per-framework speedups over the GAP reference as
    /// percentages with heat classes.
    pub fn table5(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE V — SPEEDUP OVER GAP REFERENCE (100% = parity), corpus scale {}",
            self.scale
        );
        let frameworks: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if c.framework != BASELINE_FRAMEWORK && !seen.contains(&c.framework) {
                    seen.push(c.framework.clone());
                }
            }
            seen
        };
        for mode in Mode::ALL {
            let _ = writeln!(out, "\n  {mode}");
            let _ = write!(out, "  {:>12} {:>6}", "Framework", "Kernel");
            for g in GRAPH_ORDER {
                let _ = write!(out, " {:>12}", g.name());
            }
            let _ = writeln!(out);
            for fw in &frameworks {
                for kernel in Kernel::ALL {
                    let _ = write!(out, "  {:>12} {:>6}", fw, kernel.name());
                    for g in GRAPH_ORDER {
                        match self.speedup(fw, kernel, g.name(), mode) {
                            Some(r) => {
                                let heat = match Heat::from_ratio(r) {
                                    Heat::Red => "-",
                                    Heat::White => "=",
                                    Heat::Green => "+",
                                };
                                let _ = write!(out, " {:>10.2}%{}", r * 100.0, heat);
                            }
                            None => {
                                let _ = write!(out, " {:>12}", "-");
                            }
                        }
                    }
                    let _ = writeln!(out);
                }
            }
        }
        out
    }

    /// Parses a report back from [`Report::to_csv`] output, so analyses
    /// (shape claims, custom tables) can run without re-measuring.
    ///
    /// Each row contributes one cell whose single recorded time is the
    /// row's `best_s` (the statistic the tables use).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_csv(text: &str) -> Result<Report, String> {
        let mut cells = Vec::new();
        for (idx, line) in text.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() < 8 {
                return Err(format!("line {}: expected 8+ fields", idx + 1));
            }
            let mode = match fields[0] {
                "Baseline" => Mode::Baseline,
                "Optimized" => Mode::Optimized,
                other => return Err(format!("line {}: bad mode {other:?}", idx + 1)),
            };
            let kernel = Kernel::ALL
                .into_iter()
                .find(|k| k.name() == fields[3])
                .ok_or_else(|| format!("line {}: bad kernel {:?}", idx + 1, fields[3]))?;
            let best: f64 = fields[4]
                .parse()
                .map_err(|_| format!("line {}: bad time {:?}", idx + 1, fields[4]))?;
            let verified: bool = fields[7]
                .parse()
                .map_err(|_| format!("line {}: bad verified flag", idx + 1))?;
            cells.push(CellRecord {
                framework: fields[2].to_string(),
                kernel,
                graph: fields[1].to_string(),
                mode,
                times: vec![best],
                verified,
                note: fields.get(8).unwrap_or(&"").to_string(),
            });
        }
        Ok(Report::new(Scale::Medium, cells))
    }

    /// Serializes every cell as CSV
    /// (`mode,graph,framework,kernel,best,mean,trials,verified,note`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("mode,graph,framework,kernel,best_s,mean_s,trials,verified,note\n");
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.6},{:.6},{},{},{}",
                c.mode,
                c.graph,
                c.framework,
                c.kernel,
                c.best_seconds(),
                c.mean_seconds(),
                c.times.len(),
                c.verified,
                c.note.replace(',', ";")
            );
        }
        out
    }
}

/// Renders Table I for a corpus: graph statistics at the run's scale.
pub fn render_table1(graphs: &[(GraphSpec, &Graph)]) -> String {
    let mut out = String::from(
        "TABLE I — GRAPHS USED FOR EVALUATION\n\
         Name     Vertices    Edges       Directed  Degree  Distribution  ApproxDiameter\n",
    );
    for (spec, g) in graphs {
        let s = stats::summarize(g);
        let _ = writeln!(
            out,
            "{:<8} {:<11} {:<11} {:<9} {:<7.1} {:<13} {}",
            spec.name(),
            s.num_vertices,
            s.num_edges,
            if s.directed { "Y" } else { "N" },
            s.average_degree,
            s.degree_family.to_string(),
            s.approx_diameter
        );
    }
    out
}

/// Renders Table II: framework attribute matrix.
pub fn render_table2(frameworks: &[Box<dyn Framework>]) -> String {
    let mut out = String::from("TABLE II — MAIN ATTRIBUTES OF FRAMEWORKS CONSIDERED\n");
    for fw in frameworks {
        let info = fw.info();
        let _ = writeln!(out, "\n{}", info.name);
        let _ = writeln!(out, "  Type:             {}", info.kind);
        let _ = writeln!(out, "  Data structure:   {}", info.data_structure);
        let _ = writeln!(out, "  Abstraction:      {}", info.abstraction);
        let _ = writeln!(out, "  Synchronization:  {}", info.synchronization);
        let _ = writeln!(out, "  Intended users:   {}", info.intended_users);
    }
    out
}

/// Renders Table III: algorithm used by each framework per kernel, with
/// footnote flags (1 bucket fusion, 2 relabeling, 3 SIMD-analogue,
/// 4 async variant).
pub fn render_table3(frameworks: &[Box<dyn Framework>]) -> String {
    let mut out = String::from("TABLE III — ALGORITHMS USED BY EACH FRAMEWORK\n");
    let _ = write!(out, "{:>6}", "Task");
    for fw in frameworks {
        let _ = write!(out, " {:>24}", fw.name());
    }
    let _ = writeln!(out);
    for kernel in Kernel::ALL {
        let _ = write!(out, "{:>6}", kernel.name());
        for fw in frameworks {
            let _ = write!(out, " {:>24}", fw.algorithm(kernel).render());
        }
        let _ = writeln!(out);
    }
    out.push_str(
        "Footnotes: 1 bucket fusion, 2 heuristic relabeling, 3 SIMD-analogue kernels, 4 async variant\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::all_frameworks;

    fn record(fw: &str, kernel: Kernel, graph: &str, mode: Mode, t: f64) -> CellRecord {
        CellRecord {
            framework: fw.into(),
            kernel,
            graph: graph.into(),
            mode,
            times: vec![t],
            verified: true,
            note: String::new(),
        }
    }

    fn sample_report() -> Report {
        Report::new(
            Scale::Tiny,
            vec![
                record("GAP", Kernel::Bfs, "Kron", Mode::Baseline, 0.2),
                record("GKC", Kernel::Bfs, "Kron", Mode::Baseline, 0.1),
                record("GraphIt", Kernel::Bfs, "Kron", Mode::Baseline, 0.4),
            ],
        )
    }

    #[test]
    fn speedups_are_relative_to_gap() {
        let r = sample_report();
        assert!(
            (r.speedup("GKC", Kernel::Bfs, "Kron", Mode::Baseline)
                .unwrap()
                - 2.0)
                .abs()
                < 1e-12
        );
        assert!(
            (r.speedup("GraphIt", Kernel::Bfs, "Kron", Mode::Baseline)
                .unwrap()
                - 0.5)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn fastest_picks_the_minimum() {
        let r = sample_report();
        let (fw, t) = r.fastest(Kernel::Bfs, "Kron", Mode::Baseline).unwrap();
        assert_eq!(fw, "GKC");
        assert!((t - 0.1).abs() < 1e-12);
    }

    #[test]
    fn heat_classes_split_at_parity() {
        assert_eq!(Heat::from_ratio(0.5), Heat::Red);
        assert_eq!(Heat::from_ratio(1.0), Heat::White);
        assert_eq!(Heat::from_ratio(2.0), Heat::Green);
    }

    #[test]
    fn tables_render_without_panicking() {
        let r = sample_report();
        assert!(r.table4().contains("TABLE IV"));
        assert!(r.table5().contains("TABLE V"));
        assert!(r.to_csv().lines().count() >= 4);
        let fws = all_frameworks();
        assert!(render_table2(&fws).contains("SuiteSparse"));
        let t3 = render_table3(&fws);
        assert!(t3.contains("Label Propagation"));
        assert!(t3.contains("Lee & Low"));
    }

    #[test]
    fn table1_renders_graph_rows() {
        use gapbs_graph::gen::Scale as GScale;
        let g = GraphSpec::Kron.generate(GScale::Tiny);
        let out = render_table1(&[(GraphSpec::Kron, &g)]);
        assert!(out.contains("Kron"));
        assert!(out.contains("power"));
    }
}
