//! Snapshot-dir caching for prepared benchmark inputs.
//!
//! Every binary used to regenerate and rebuild the whole corpus on each
//! start — the dominant cost at the larger scales. With a snapshot
//! directory, each `(spec, scale)` pair is built **once**, written as a
//! [`gapbs_graph::snapshot`] file, and subsequent processes mmap the
//! finished CSR arrays in milliseconds.
//!
//! Cache keying is two-layer:
//!
//! * the **file name** encodes spec, scale and snapshot format version,
//!   so a format bump simply misses the old files rather than
//!   misreading them;
//! * the **params hash** inside the header covers the generator seed
//!   and shape, so a stale file (e.g. a seed change in a newer build)
//!   is detected as [`SnapshotError::ParamsMismatch`] and rebuilt.
//!
//! A cache miss falls back to the ordinary deterministic generation
//! path and then writes the snapshot best-effort — a read-only cache
//! directory degrades to a warning, never a failure.

use crate::framework::BenchGraph;
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_graph::snapshot::{
    self, Compression, LoadOptions, SnapshotContents, WriteStats, FNV1A_OFFSET, FNV1A_PRIME,
    FORMAT_VERSION,
};
use gapbs_graph::{GraphError, Snapshot, SnapshotError};
use gapbs_parallel::ThreadPool;
use std::path::{Path, PathBuf};

/// Whether a cached-load request was served from a snapshot file or had
/// to rebuild (serve's hit/miss counters are fed from this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Loaded from an existing, valid snapshot.
    Hit,
    /// Rebuilt from the generators (no file, stale file, or load error).
    Miss,
}

/// Generator-provenance hash stored in the snapshot header: covers the
/// graph identity (name + seed), the scale, and the snapshot format
/// version. Any change to generator seeds or the format invalidates
/// cached files through this value.
pub fn params_hash(spec: GraphSpec, scale: Scale) -> u64 {
    let mut h = FNV1A_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV1A_PRIME);
        }
    };
    eat(spec.name().as_bytes());
    eat(scale.to_string().as_bytes());
    eat(&spec.seed().to_le_bytes());
    eat(&u64::from(FORMAT_VERSION).to_le_bytes());
    h
}

/// The canonical snapshot file path for a corpus member: the format
/// version is part of the name, so format bumps miss cleanly instead of
/// parsing old files.
pub fn snapshot_path(dir: &Path, spec: GraphSpec, scale: Scale) -> PathBuf {
    dir.join(format!(
        "{}-{}-v{}.gsnap",
        spec.name().to_lowercase(),
        scale,
        FORMAT_VERSION
    ))
}

impl BenchGraph {
    /// Writes this prepared input as a snapshot at the canonical path
    /// under `dir`, returning the per-section size accounting. The
    /// cache always uses [`Compression::Auto`]; `snapshot_bench` pins
    /// the encoding to time the two arms separately.
    pub fn write_snapshot(&self, dir: &Path, scale: Scale) -> Result<WriteStats, GraphError> {
        self.write_snapshot_with(dir, scale, Compression::Auto)
    }

    /// [`Self::write_snapshot`] with an explicit adjacency encoding.
    pub fn write_snapshot_with(
        &self,
        dir: &Path,
        scale: Scale,
        compression: Compression,
    ) -> Result<WriteStats, GraphError> {
        let contents = SnapshotContents {
            graph: &self.graph,
            wgraph: Some(&self.wgraph),
            sym_graph: if self.graph.is_directed() {
                Some(&self.sym_graph)
            } else {
                None
            },
            source_candidates: Some(&self.source_candidates),
            delta: self.delta,
            params_hash: params_hash(self.spec, scale),
        };
        snapshot::write(
            &snapshot_path(dir, self.spec, scale),
            &contents,
            compression,
        )
    }

    /// Loads a prepared input from a snapshot file, verifying the
    /// stored params hash against what this build's generators would
    /// produce (a mismatch means the file is stale, not corrupt).
    pub fn from_snapshot_in(
        spec: GraphSpec,
        scale: Scale,
        path: &Path,
        pool: &ThreadPool,
        paranoid: bool,
    ) -> Result<Self, GraphError> {
        let snap = Snapshot::open_with(
            path,
            LoadOptions {
                paranoid,
                force_heap: false,
            },
        )?;
        let expected = params_hash(spec, scale);
        if snap.params_hash() != expected {
            return Err(GraphError::Snapshot(SnapshotError::ParamsMismatch {
                stored: snap.params_hash(),
                expected,
            }));
        }
        let bundle = snap.bundle_in::<u32>(Some(pool))?;
        Ok(BenchGraph {
            spec,
            graph: bundle.graph,
            wgraph: bundle.wgraph,
            sym_graph: bundle.sym_graph,
            delta: bundle.delta,
            source_candidates: bundle.source_candidates,
        })
    }

    /// The snapshot-dir cache: mmap the canonical file if present and
    /// valid, otherwise rebuild from the generators and write the file
    /// best-effort. Returns the input plus whether this was a cache
    /// hit — the prepared input is identical either way.
    pub fn load_cached_in(
        spec: GraphSpec,
        scale: Scale,
        dir: &Path,
        pool: &ThreadPool,
        paranoid: bool,
    ) -> (Self, CacheOutcome) {
        let path = snapshot_path(dir, spec, scale);
        if path.exists() {
            match Self::from_snapshot_in(spec, scale, &path, pool, paranoid) {
                Ok(bg) => return (bg, CacheOutcome::Hit),
                Err(e) => {
                    eprintln!(
                        "snapshot cache: rebuilding {spec} {scale}: {} failed to load: {e}",
                        path.display()
                    );
                }
            }
        }
        let bg = Self::generate_in(spec, scale, pool);
        if let Err(e) = bg.write_snapshot(dir, scale) {
            eprintln!("snapshot cache: could not write {}: {e}", path.display());
        }
        (bg, CacheOutcome::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gapbs-cache-{}-{tag}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create cache dir");
        dir
    }

    fn assert_same_input(a: &BenchGraph, b: &BenchGraph) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.wgraph, b.wgraph);
        assert_eq!(a.sym_graph, b.sym_graph);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.source_candidates, b.source_candidates);
    }

    #[test]
    fn miss_then_hit_round_trips_every_structure() {
        let dir = tmp_dir("roundtrip");
        let pool = ThreadPool::new(2);
        for spec in [GraphSpec::Road, GraphSpec::Kron] {
            let built = BenchGraph::generate_in(spec, Scale::Tiny, &pool);
            let (first, outcome) =
                BenchGraph::load_cached_in(spec, Scale::Tiny, &dir, &pool, false);
            assert_eq!(outcome, CacheOutcome::Miss, "{spec}: empty dir must miss");
            assert_same_input(&built, &first);

            let (second, outcome) =
                BenchGraph::load_cached_in(spec, Scale::Tiny, &dir, &pool, true);
            assert_eq!(outcome, CacheOutcome::Hit, "{spec}: second load must hit");
            assert_same_input(&built, &second);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_params_hash_rebuilds_instead_of_serving_wrong_data() {
        let dir = tmp_dir("stale");
        let pool = ThreadPool::new(1);
        // Build a Kron snapshot, then present it under Urand's canonical
        // path: the params hash catches the lie and the cache rebuilds.
        let (_, outcome) =
            BenchGraph::load_cached_in(GraphSpec::Kron, Scale::Tiny, &dir, &pool, false);
        assert_eq!(outcome, CacheOutcome::Miss);
        std::fs::rename(
            snapshot_path(&dir, GraphSpec::Kron, Scale::Tiny),
            snapshot_path(&dir, GraphSpec::Urand, Scale::Tiny),
        )
        .expect("rename");
        let (bg, outcome) =
            BenchGraph::load_cached_in(GraphSpec::Urand, Scale::Tiny, &dir, &pool, false);
        assert_eq!(outcome, CacheOutcome::Miss, "stale file must not hit");
        assert_eq!(bg.graph, GraphSpec::Urand.generate(Scale::Tiny));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn params_hash_separates_every_spec_and_scale() {
        let mut seen = std::collections::HashSet::new();
        for spec in GraphSpec::TABLE_ORDER {
            for scale in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large] {
                assert!(
                    seen.insert(params_hash(spec, scale)),
                    "collision at {spec} {scale}"
                );
            }
        }
    }
}
