//! The benchmark specification: trial counts, source selection and
//! kernel parameters, following the GAP spec's rules.

use gapbs_graph::types::NodeId;
use gapbs_graph::Graph;

/// PageRank damping factor.
pub const PR_DAMPING: f64 = 0.85;
/// PageRank L1 tolerance.
pub const PR_TOLERANCE: f64 = 1e-4;
/// PageRank iteration cap.
pub const PR_MAX_ITERS: usize = 100;
/// BC roots per trial (the GAP spec approximates BC with four).
pub const BC_ROOTS: usize = 4;

/// Deterministic source selector: a seeded linear-congruential walk over
/// the non-degenerate vertices (GAP draws uniform random sources with
/// non-zero out-degree; determinism makes runs reproducible and gives
/// every framework identical sources).
#[derive(Debug, Clone)]
pub struct SourcePicker {
    candidates: Vec<NodeId>,
    state: u64,
}

impl SourcePicker {
    /// Builds a picker over vertices with non-zero out-degree.
    pub fn new(g: &Graph, seed: u64) -> Self {
        let candidates: Vec<NodeId> = g.vertices().filter(|&u| g.out_degree(u) > 0).collect();
        Self::from_candidates(candidates, seed)
    }

    /// Builds a picker over an explicit candidate set (the harness passes
    /// the giant component's vertices).
    pub fn from_candidates(candidates: Vec<NodeId>, seed: u64) -> Self {
        SourcePicker {
            candidates,
            state: seed | 1,
        }
    }

    /// Number of eligible sources.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Next source vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertex with outgoing edges.
    pub fn next_source(&mut self) -> NodeId {
        assert!(
            !self.candidates.is_empty(),
            "graph has no vertex with outgoing edges"
        );
        // SplitMix64 step — deterministic, well distributed.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.candidates[(z % self.candidates.len() as u64) as usize]
    }

    /// Next batch of `k` sources (BC roots).
    pub fn next_sources(&mut self, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.next_source()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::edgelist::edges;
    use gapbs_graph::{gen, Builder};

    #[test]
    fn sources_are_deterministic_and_non_degenerate() {
        let g = gen::kron(8, 8, 1);
        let mut a = SourcePicker::new(&g, 42);
        let mut b = SourcePicker::new(&g, 42);
        for _ in 0..10 {
            let (x, y) = (a.next_source(), b.next_source());
            assert_eq!(x, y);
            assert!(g.out_degree(x) > 0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = gen::kron(8, 8, 1);
        let mut a = SourcePicker::new(&g, 1);
        let mut b = SourcePicker::new(&g, 2);
        let xs: Vec<_> = (0..8).map(|_| a.next_source()).collect();
        let ys: Vec<_> = (0..8).map(|_| b.next_source()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "no vertex with outgoing edges")]
    fn empty_graph_panics() {
        let g = Builder::new().num_vertices(3).build(edges([])).unwrap();
        SourcePicker::new(&g, 0).next_source();
    }
}
