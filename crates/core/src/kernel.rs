//! The test space: six kernels × two rule sets.

/// The six GAP kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// Breadth-first search (parent tree).
    Bfs,
    /// Single-source shortest paths (distances).
    Sssp,
    /// Connected components (labels).
    Cc,
    /// PageRank (scores).
    Pr,
    /// Betweenness centrality (approximate, 4 roots).
    Bc,
    /// Triangle counting (scalar count).
    Tc,
}

impl Kernel {
    /// All kernels in the row order of Table IV/V.
    pub const ALL: [Kernel; 6] = [
        Kernel::Bfs,
        Kernel::Sssp,
        Kernel::Cc,
        Kernel::Pr,
        Kernel::Bc,
        Kernel::Tc,
    ];

    /// Upper-case display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Bfs => "BFS",
            Kernel::Sssp => "SSSP",
            Kernel::Cc => "CC",
            Kernel::Pr => "PR",
            Kernel::Bc => "BC",
            Kernel::Tc => "TC",
        }
    }

    /// Whether the kernel takes a source vertex (and thus uses source
    /// rotation across trials).
    pub fn takes_source(self) -> bool {
        matches!(self, Kernel::Bfs | Kernel::Sssp | Kernel::Bc)
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The two rule sets of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Uniform comparison: built-in heuristics only, no per-graph tuning.
    Baseline,
    /// Peak performance: per-graph tuning allowed and reported.
    Optimized,
}

impl Mode {
    /// Both modes, Baseline first (Table IV column order).
    pub const ALL: [Mode; 2] = [Mode::Baseline, Mode::Optimized];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "Baseline",
            Mode::Optimized => "Optimized",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_table_order_matches_paper() {
        let names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["BFS", "SSSP", "CC", "PR", "BC", "TC"]);
    }

    #[test]
    fn source_kernels_are_the_traversals() {
        assert!(Kernel::Bfs.takes_source());
        assert!(Kernel::Sssp.takes_source());
        assert!(Kernel::Bc.takes_source());
        assert!(!Kernel::Pr.takes_source());
        assert!(!Kernel::Cc.takes_source());
        assert!(!Kernel::Tc.takes_source());
    }
}
