//! The roster of evaluated frameworks.

use crate::adapters::{
    GaloisFramework, GapReference, GkcFramework, GraphItFramework, NwGraphFramework,
    SuiteSparseFramework,
};
use crate::framework::Framework;

/// Display order of Table V's framework rows (GAP is the baseline and is
/// listed first here; Table V shows the others relative to it).
pub fn all_frameworks() -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(GapReference),
        Box::new(SuiteSparseFramework),
        Box::new(GaloisFramework),
        Box::new(GraphItFramework),
        Box::new(GkcFramework),
        Box::new(NwGraphFramework),
    ]
}

/// The baseline framework name every Table V ratio is computed against.
pub const BASELINE_FRAMEWORK: &str = "GAP";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    #[test]
    fn six_frameworks_are_registered() {
        let fws = all_frameworks();
        assert_eq!(fws.len(), 6);
        let names: Vec<_> = fws.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            ["GAP", "SuiteSparse", "Galois", "GraphIt", "GKC", "NWGraph"]
        );
    }

    #[test]
    fn every_framework_declares_all_algorithms() {
        for fw in all_frameworks() {
            for kernel in Kernel::ALL {
                let choice = fw.algorithm(kernel);
                assert!(
                    !choice.algorithm.is_empty(),
                    "{} has no algorithm for {kernel}",
                    fw.name()
                );
            }
        }
    }

    #[test]
    fn table_three_distinctive_cells_match_paper() {
        let fws = all_frameworks();
        let by_name = |n: &str| {
            fws.iter()
                .find(|f| f.name() == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert_eq!(
            by_name("GraphIt").algorithm(Kernel::Cc).algorithm,
            "Label Propagation"
        );
        assert_eq!(
            by_name("GKC").algorithm(Kernel::Cc).algorithm,
            "Shiloach-Vishkin"
        );
        assert_eq!(
            by_name("SuiteSparse").algorithm(Kernel::Cc).algorithm,
            "FastSV"
        );
        assert_eq!(by_name("GKC").algorithm(Kernel::Tc).algorithm, "Lee & Low");
        assert!(by_name("GAP").algorithm(Kernel::Sssp).bucket_fusion);
        assert!(!by_name("Galois").algorithm(Kernel::Sssp).bucket_fusion);
        assert_eq!(
            by_name("GAP").algorithm(Kernel::Pr).algorithm,
            "Jacobi SpMV"
        );
        assert_eq!(
            by_name("Galois").algorithm(Kernel::Pr).algorithm,
            "Gauss-Seidel SpMV"
        );
    }
}
