//! The adapter interface between the harness and the six framework
//! crates.

use crate::kernel::{Kernel, Mode};
use gapbs_graph::builder::symmetrize_graph;
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_graph::types::{Distance, NodeId, Score};
use gapbs_graph::{Graph, WGraph, Weight};
use gapbs_parallel::ThreadPool;
use gapbs_telemetry::{Phase, Span};

/// A fully prepared benchmark input: everything every framework may hold
/// before the timer starts (GAP stores both graph directions; TC runs on
/// the symmetrized view; delta is the one per-graph parameter the
/// Baseline rules allow).
#[derive(Debug, Clone)]
pub struct BenchGraph {
    /// Which corpus member this is.
    pub spec: GraphSpec,
    /// The unweighted graph (both directions stored).
    pub graph: Graph,
    /// Weighted companion with identical topology (SSSP input).
    pub wgraph: WGraph,
    /// Symmetrized view for TC (same as `graph` when undirected).
    pub sym_graph: Graph,
    /// Per-graph delta for delta-stepping.
    pub delta: Weight,
    /// Source candidates: the largest SCC (directed) or largest component
    /// (undirected), so every trial has non-trivial reach — preserving
    /// GAP's sampling intent at reproduction scale.
    pub source_candidates: Vec<NodeId>,
}

impl BenchGraph {
    /// Generates a corpus member at the given scale and prepares every
    /// untimed input (serial wrapper over [`BenchGraph::generate_in`]).
    pub fn generate(spec: GraphSpec, scale: Scale) -> Self {
        Self::generate_in(spec, scale, &ThreadPool::new(1))
    }

    /// [`BenchGraph::generate`] with generation and construction on
    /// `pool`. The prepared input is identical for every pool size.
    pub fn generate_in(spec: GraphSpec, scale: Scale, pool: &ThreadPool) -> Self {
        let _build = Span::enter(Phase::Build);
        let graph = spec.generate_in(scale, pool);
        let wgraph = spec.generate_weighted_in(scale, pool);
        Self::from_graphs_in(spec, graph, wgraph, pool)
    }

    /// Prepares inputs from already-built graphs (serial wrapper over
    /// [`BenchGraph::from_graphs_in`]).
    pub fn from_graphs(spec: GraphSpec, graph: Graph, wgraph: WGraph) -> Self {
        Self::from_graphs_in(spec, graph, wgraph, &ThreadPool::new(1))
    }

    /// [`BenchGraph::from_graphs`] with the symmetrized TC view built on
    /// `pool`, straight from the stored adjacency (no edge-list clone).
    pub fn from_graphs_in(
        spec: GraphSpec,
        graph: Graph,
        wgraph: WGraph,
        pool: &ThreadPool,
    ) -> Self {
        let sym_graph = if graph.is_directed() {
            symmetrize_graph(&graph, pool)
        } else {
            graph.clone()
        };
        // GAP permits a per-graph delta; low-degree (road-like) graphs
        // want small buckets, dense graphs large ones.
        let delta = if graph.average_degree() < 4.0 { 2 } else { 32 };
        let mut source_candidates = if graph.is_directed() {
            gapbs_graph::scc::largest_scc(&graph)
        } else {
            gapbs_graph::scc::largest_wcc(&graph)
        };
        source_candidates.retain(|&u| graph.out_degree(u) > 0);
        if source_candidates.is_empty() {
            source_candidates = graph
                .vertices()
                .filter(|&u| graph.out_degree(u) > 0)
                .collect();
        }
        BenchGraph {
            spec,
            graph,
            wgraph,
            sym_graph,
            delta,
            source_candidates,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Resident CSR bytes of the structure `kernel` consumes — the
    /// ledger's `graph_bytes` column: the weighted graph for SSSP, the
    /// symmetrized view for TC, the stored adjacency otherwise.
    pub fn kernel_graph_bytes(&self, kernel: Kernel) -> usize {
        match kernel {
            Kernel::Sssp => self.wgraph.graph_bytes(),
            Kernel::Tc => self.sym_graph.graph_bytes(),
            _ => self.graph.graph_bytes(),
        }
    }

    /// Total resident CSR bytes of every prepared structure (unweighted,
    /// weighted, and symmetrized view — the symmetrized clone is a real
    /// second allocation even for undirected graphs). The serve daemon's
    /// per-graph memory gauge.
    pub fn resident_bytes(&self) -> usize {
        self.graph.graph_bytes() + self.wgraph.graph_bytes() + self.sym_graph.graph_bytes()
    }
}

/// One row of Table II: the descriptive attributes of a framework.
#[derive(Debug, Clone)]
pub struct FrameworkInfo {
    /// Framework display name.
    pub name: &'static str,
    /// "Type" row: direct implementations, generic library, DSL, ...
    pub kind: &'static str,
    /// "Internal Graph Data Structure" row.
    pub data_structure: &'static str,
    /// "Programming Abstraction" row.
    pub abstraction: &'static str,
    /// "Execution Synchronization" row.
    pub synchronization: &'static str,
    /// "Intended Users" row.
    pub intended_users: &'static str,
}

/// One cell of Table III: the algorithm a framework uses for a kernel,
/// with the table's footnote flags.
#[derive(Debug, Clone)]
pub struct AlgorithmChoice {
    /// Algorithm name as Table III prints it.
    pub algorithm: &'static str,
    /// Footnote 1: bucket fusion.
    pub bucket_fusion: bool,
    /// Footnote 2: heuristic-controlled graph relabelling.
    pub relabeling: bool,
    /// Footnote 3: SIMD (here: branch-reduced kernels).
    pub simd: bool,
    /// Footnote 4: an additional asynchronous variant.
    pub async_variant: bool,
}

impl AlgorithmChoice {
    /// A plain algorithm with no footnotes.
    pub fn plain(algorithm: &'static str) -> Self {
        AlgorithmChoice {
            algorithm,
            bucket_fusion: false,
            relabeling: false,
            simd: false,
            async_variant: false,
        }
    }

    /// Renders the Table III cell, footnotes as superscript digits.
    pub fn render(&self) -> String {
        let mut s = self.algorithm.to_string();
        let mut notes = Vec::new();
        if self.bucket_fusion {
            notes.push("1");
        }
        if self.relabeling {
            notes.push("2");
        }
        if self.simd {
            notes.push("3");
        }
        if self.async_variant {
            notes.push("4");
        }
        if !notes.is_empty() {
            s.push('^');
            s.push_str(&notes.join(","));
        }
        s
    }
}

/// The kernels of one framework, prepared for one graph and mode.
///
/// Preparation (building matrices, picking heuristics) happens before the
/// timer; calls on this trait are what the harness times.
pub trait PreparedKernels: Sync {
    /// BFS parent array from `source`.
    fn bfs(&self, source: NodeId) -> Vec<NodeId>;
    /// SSSP distances from `source`.
    fn sssp(&self, source: NodeId) -> Vec<Distance>;
    /// PageRank scores plus iteration count.
    fn pr(&self) -> (Vec<Score>, usize);
    /// Component labels.
    fn cc(&self) -> Vec<NodeId>;
    /// BC scores from the given roots.
    fn bc(&self, sources: &[NodeId]) -> Vec<Score>;
    /// Triangle count.
    fn tc(&self) -> u64;
}

/// A graph analytics framework under evaluation.
///
/// `Send + Sync` so a loaded framework roster can be shared across the
/// serving layer's handler threads.
pub trait Framework: Send + Sync {
    /// Display name as the paper prints it.
    fn name(&self) -> &'static str;
    /// Table II attributes.
    fn info(&self) -> FrameworkInfo;
    /// Table III algorithm choice for a kernel.
    fn algorithm(&self, kernel: Kernel) -> AlgorithmChoice;
    /// Prepares the framework's kernels for one graph under one mode.
    fn prepare<'g>(
        &self,
        input: &'g BenchGraph,
        mode: Mode,
        pool: &ThreadPool,
    ) -> Box<dyn PreparedKernels + 'g>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graph_prepares_symmetric_tc_view() {
        let bg = BenchGraph::generate(GraphSpec::Road, Scale::Tiny);
        assert!(bg.graph.is_directed());
        assert!(!bg.sym_graph.is_directed());
        assert_eq!(bg.delta, 2, "road-like graphs get a small delta");
        let kron = BenchGraph::generate(GraphSpec::Kron, Scale::Tiny);
        assert!(!kron.graph.is_directed());
        assert_eq!(kron.sym_graph, kron.graph);
        assert_eq!(kron.delta, 32);
    }

    #[test]
    fn footnotes_render_like_table_three() {
        let mut c = AlgorithmChoice::plain("Delta-stepping");
        assert_eq!(c.render(), "Delta-stepping");
        c.bucket_fusion = true;
        c.simd = true;
        assert_eq!(c.render(), "Delta-stepping^1,3");
    }
}
