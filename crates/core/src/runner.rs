//! The trial runner: times kernels under the GAP protocol and verifies
//! every trial's output.
//!
//! Protocol per cell (framework × kernel × graph × mode): prepare the
//! framework (untimed), run `trials` timed executions with rotating
//! seeded sources, verify each output with `gapbs-verify`, and report the
//! best time — the statistic Table IV uses.

use crate::framework::{BenchGraph, Framework};
use crate::kernel::{Kernel, Mode};
use crate::report::Report;
use crate::spec::{SourcePicker, BC_ROOTS, PR_TOLERANCE};
use gapbs_graph::gen::Scale;
use gapbs_parallel::ThreadPool;
use gapbs_telemetry::{Ledger, Phase, Span, TrialRecord};
use std::path::PathBuf;
use std::time::Instant;

/// Trial protocol configuration.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Timed executions per cell (Table IV reports the best).
    pub trials: usize,
    /// Verify every trial's output against the sequential oracles.
    pub verify: bool,
    /// Seed for source rotation.
    pub seed: u64,
    /// Worker threads (the paper pins 32 cores for Baseline; we pin
    /// whatever the host has).
    pub threads: usize,
    /// Fixed source vertex for BFS/SSSP/BC (overrides source rotation,
    /// like GAP's `-r` flag).
    pub source_override: Option<gapbs_graph::types::NodeId>,
    /// Minimum wall time a cell's trials should span. Hosts with cgroup
    /// throttling freeze the CPU for ~100ms windows; if all trials of a
    /// fast kernel land inside one window, even the min is contaminated.
    /// Extra trials run (up to [`TrialConfig::max_trials`]) until the
    /// cell spans this duration.
    pub min_cell_seconds: f64,
    /// Hard cap on trials per cell.
    pub max_trials: usize,
    /// Append one JSONL record per trial to this ledger file. Counters in
    /// the records are all-zero unless the build has the `telemetry`
    /// feature; times and phases are always real.
    pub ledger_path: Option<PathBuf>,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            trials: 5,
            verify: true,
            seed: 0x6a70,
            threads: gapbs_parallel::pool::default_threads(),
            source_override: None,
            min_cell_seconds: 0.4,
            max_trials: 16,
            ledger_path: None,
        }
    }
}

/// The timing record of one benchmark cell.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Framework name.
    pub framework: String,
    /// Kernel.
    pub kernel: Kernel,
    /// Graph name.
    pub graph: String,
    /// Rule set.
    pub mode: Mode,
    /// All trial times in seconds.
    pub times: Vec<f64>,
    /// Whether every verified trial passed.
    pub verified: bool,
    /// Optional annotation (e.g. PR iteration count).
    pub note: String,
}

impl CellRecord {
    /// Best (minimum) trial time in seconds.
    pub fn best_seconds(&self) -> f64 {
        self.times.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// The comparison statistic used by Tables IV and V: the *minimum*
    /// trial time. Sources are drawn from the giant component, so every
    /// trial does comparable work, and on hosts with scheduler
    /// interference the minimum is the robust estimator of true kernel
    /// cost (the mean is contaminated by multi-millisecond steal spikes).
    pub fn stat_seconds(&self) -> f64 {
        self.best_seconds()
    }

    /// Arithmetic mean of trial times.
    pub fn mean_seconds(&self) -> f64 {
        if self.times.is_empty() {
            f64::NAN
        } else {
            self.times.iter().sum::<f64>() / self.times.len() as f64
        }
    }
}

/// Runs one cell of the benchmark matrix on a freshly provisioned pool.
///
/// Prefer [`run_cell_in_pool`] when running more than one cell: the
/// persistent pool's worker team should be spawned once per run, not
/// once per cell.
pub fn run_cell(
    framework: &dyn Framework,
    input: &BenchGraph,
    kernel: Kernel,
    mode: Mode,
    config: &TrialConfig,
) -> CellRecord {
    let pool = ThreadPool::new(config.threads);
    run_cell_in_pool(framework, input, kernel, mode, config, &pool)
}

/// Runs one cell of the benchmark matrix on an existing pool.
///
/// The pool's thread count is authoritative for execution; callers
/// should build it from `config.threads` (as [`run_matrix`] does) so
/// ledger records describe the actual team size.
pub fn run_cell_in_pool(
    framework: &dyn Framework,
    input: &BenchGraph,
    kernel: Kernel,
    mode: Mode,
    config: &TrialConfig,
    pool: &ThreadPool,
) -> CellRecord {
    let ledger = config.ledger_path.as_ref().and_then(|path| {
        Ledger::open(path)
            .map_err(|e| eprintln!("ledger {}: {e}", path.display()))
            .ok()
    });
    // Phase/counter marks advance trial by trial; the delta between marks
    // is what one trial (plus, for trial 0, the build) cost.
    let mut phases_mark = gapbs_telemetry::span::phase_times();
    let mut counters_mark = gapbs_telemetry::snapshot();
    let prepared = {
        let _build = Span::enter(Phase::Build);
        framework.prepare(input, mode, pool)
    };
    let mut picker = SourcePicker::from_candidates(input.source_candidates.clone(), config.seed);
    let mut times = Vec::with_capacity(config.trials);
    let mut verified = true;
    let mut note = String::new();
    let cell_start = Instant::now();
    let mut trial = 0usize;
    while trial < config.trials
        || (trial < config.max_trials.max(config.trials)
            && cell_start.elapsed().as_secs_f64() < config.min_cell_seconds)
    {
        // Source-rotating kernels produce a different answer every trial,
        // so each is verified; the fixed kernels (PR, CC, TC) compute the
        // same answer per cell and are verified once.
        let verify_this = config.verify && (kernel.takes_source() || trial == 0);
        // Trace mark: one "Trial" duration event spans the kernel run plus
        // its verification (cold path — records only while a session is
        // active, in any build).
        let trial_trace_start = gapbs_telemetry::trace::now_ns();
        match kernel {
            Kernel::Bfs => {
                let source = config
                    .source_override
                    .unwrap_or_else(|| picker.next_source());
                let start = Instant::now();
                let parent = prepared.bfs(source);
                times.push(start.elapsed().as_secs_f64());
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &= gapbs_verify::verify_bfs(&input.graph, source, &parent).is_ok();
                }
            }
            Kernel::Sssp => {
                let source = config
                    .source_override
                    .unwrap_or_else(|| picker.next_source());
                let start = Instant::now();
                let dist = prepared.sssp(source);
                times.push(start.elapsed().as_secs_f64());
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &= gapbs_verify::verify_sssp(&input.wgraph, source, &dist).is_ok();
                }
            }
            Kernel::Pr => {
                let start = Instant::now();
                let (scores, iterations) = prepared.pr();
                times.push(start.elapsed().as_secs_f64());
                note = format!("{iterations} iters");
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &=
                        gapbs_verify::verify_pr(&input.graph, &scores, PR_TOLERANCE * 50.0).is_ok();
                }
            }
            Kernel::Cc => {
                let start = Instant::now();
                let labels = prepared.cc();
                times.push(start.elapsed().as_secs_f64());
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &= gapbs_verify::verify_cc(&input.graph, &labels).is_ok();
                }
            }
            Kernel::Bc => {
                let sources = match config.source_override {
                    Some(s) => vec![s; 1],
                    None => picker.next_sources(BC_ROOTS),
                };
                let start = Instant::now();
                let scores = prepared.bc(&sources);
                times.push(start.elapsed().as_secs_f64());
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &= gapbs_verify::verify_bc(&input.graph, &sources, &scores).is_ok();
                }
            }
            Kernel::Tc => {
                let start = Instant::now();
                let count = prepared.tc();
                times.push(start.elapsed().as_secs_f64());
                note = format!("{count} triangles");
                if verify_this {
                    let _vs = Span::enter(Phase::Verify);
                    verified &= gapbs_verify::verify_tc(&input.sym_graph, count).is_ok();
                }
            }
        }
        let trial_seconds = *times.last().expect("every arm records a time");
        gapbs_telemetry::span::clock().accrue(Phase::Kernel, (trial_seconds * 1e9) as u64);
        gapbs_telemetry::trace::trial(
            format!(
                "{} {} {} {} #{trial}",
                framework.name(),
                kernel.name().to_lowercase(),
                input.spec.name(),
                mode
            ),
            trial_trace_start,
        );
        if let Some(ledger) = &ledger {
            let now_phases = gapbs_telemetry::span::phase_times();
            let now_counters = gapbs_telemetry::snapshot();
            let phase_delta = now_phases.delta(&phases_mark);
            let record = TrialRecord {
                framework: framework.name().to_string(),
                kernel: kernel.name().to_lowercase(),
                graph: input.spec.name().to_string(),
                mode: mode.to_string(),
                trial: trial as u64,
                seconds: trial_seconds,
                build_seconds: phase_delta.get(Phase::Build),
                relabel_seconds: phase_delta.get(Phase::Relabel),
                verified,
                threads: pool.num_threads() as u64,
                num_vertices: input.graph.num_vertices() as u64,
                num_arcs: input.graph.num_arcs() as u64,
                counters: now_counters.delta(&counters_mark),
                phases: phase_delta,
                peak_rss_bytes: gapbs_telemetry::trace::read_vm_status()
                    .map_or(0, |vm| vm.vm_hwm_bytes),
                graph_bytes: input.kernel_graph_bytes(kernel) as u64,
                git_rev: String::new(),
            };
            phases_mark = now_phases;
            counters_mark = now_counters;
            if let Err(e) = ledger.append(&record) {
                eprintln!("ledger append: {e}");
            }
        }
        trial += 1;
    }
    CellRecord {
        framework: framework.name().to_string(),
        kernel,
        graph: input.spec.name().to_string(),
        mode,
        times,
        verified,
        note,
    }
}

/// Runs the full benchmark matrix: every framework × kernel × graph ×
/// mode, in the paper's table order, and collects a [`Report`].
///
/// `progress` receives one line per completed cell (pass `|_| {}` to run
/// silently).
pub fn run_matrix<F>(
    frameworks: &[Box<dyn Framework>],
    inputs: &[BenchGraph],
    kernels: &[Kernel],
    modes: &[Mode],
    config: &TrialConfig,
    progress: F,
) -> Report
where
    F: FnMut(&CellRecord),
{
    // One persistent worker team for the whole matrix: every cell's
    // regions reuse it, so a full run pays exactly one spawn event.
    let pool = ThreadPool::new(config.threads);
    run_matrix_in_pool(frameworks, inputs, kernels, modes, config, progress, &pool)
}

/// [`run_matrix`] on an existing pool — callers that already own a team
/// (e.g. because they generated the corpus on it) avoid a second spawn.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_in_pool<F>(
    frameworks: &[Box<dyn Framework>],
    inputs: &[BenchGraph],
    kernels: &[Kernel],
    modes: &[Mode],
    config: &TrialConfig,
    mut progress: F,
    pool: &ThreadPool,
) -> Report
where
    F: FnMut(&CellRecord),
{
    let mut cells = Vec::new();
    for mode in modes {
        for input in inputs {
            for framework in frameworks {
                for &kernel in kernels {
                    let record =
                        run_cell_in_pool(framework.as_ref(), input, kernel, *mode, config, pool);
                    progress(&record);
                    cells.push(record);
                }
            }
        }
    }
    Report::new(Scale::Medium, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::all_frameworks;
    use gapbs_graph::gen::GraphSpec;

    fn tiny_config() -> TrialConfig {
        TrialConfig {
            trials: 1,
            verify: true,
            seed: 7,
            threads: 2,
            source_override: None,
            min_cell_seconds: 0.0,
            max_trials: 1,
            ledger_path: None,
        }
    }

    #[test]
    fn every_framework_passes_verification_on_a_tiny_graph() {
        let input = BenchGraph::generate(GraphSpec::Kron, Scale::Tiny);
        let config = tiny_config();
        for framework in all_frameworks() {
            for kernel in Kernel::ALL {
                let record = run_cell(framework.as_ref(), &input, kernel, Mode::Baseline, &config);
                assert!(
                    record.verified,
                    "{} failed verification on {kernel}",
                    framework.name()
                );
                assert_eq!(record.times.len(), 1);
                assert!(record.best_seconds() >= 0.0);
            }
        }
    }

    #[test]
    fn optimized_mode_also_verifies_on_directed_road() {
        let input = BenchGraph::generate(GraphSpec::Road, Scale::Tiny);
        let config = tiny_config();
        for framework in all_frameworks() {
            for kernel in Kernel::ALL {
                let record = run_cell(framework.as_ref(), &input, kernel, Mode::Optimized, &config);
                assert!(
                    record.verified,
                    "{} failed optimized verification on {kernel}",
                    framework.name()
                );
            }
        }
    }

    #[test]
    fn cell_statistics_are_sane() {
        let record = CellRecord {
            framework: "X".into(),
            kernel: Kernel::Bfs,
            graph: "Kron".into(),
            mode: Mode::Baseline,
            times: vec![0.3, 0.1, 0.2],
            verified: true,
            note: String::new(),
        };
        assert_eq!(record.best_seconds(), 0.1);
        assert!((record.mean_seconds() - 0.2).abs() < 1e-12);
    }
}
