//! The query engine: admission, execution, deadlines, accounting.
//!
//! [`Engine::handle`] is the whole per-query lifecycle in one place:
//! acquire an admission permit (deadline-aware), resolve the resident
//! graph and framework, run the kernel on the shared pool, check the
//! deadline, append a ledger record, encode the response line. Handler
//! threads call it concurrently; everything it touches is either
//! immutable ([`GraphRegistry`]), internally synchronized
//! ([`AdmissionGate`], [`LedgerSink`], the pool's leader lock), or local.
//!
//! [`run_query_local`] — resolve + execute + canonicalize, no admission
//! or accounting — is deliberately `pub`: the load generator's
//! `--check` mode and the bit-identity tests call it directly to compute
//! the expected fingerprint for a query, so "server response equals
//! batch-mode result" is asserted against the same code path the daemon
//! itself uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gapbs_core::framework::{BenchGraph, Framework};
use gapbs_graph::types::{NodeId, INF_DIST};
use gapbs_parallel::ThreadPool;
use gapbs_telemetry::json::Json;
use gapbs_telemetry::{Counter, LedgerSink, TrialRecord};

use crate::admission::{AdmissionGate, AdmitError, GateObservation};
use crate::coalesce::{Coalescer, Joined, MemberDepths};
use crate::metrics::{ServeMetrics, PROM_PREFIX};
use crate::protocol::{
    batch_success_line, canonical, error_line, success_line, BatchQuery, ErrorCode, ProtoError,
    Query,
};
use crate::registry::GraphRegistry;

/// The canonical result of one executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Kernel-specific summary fields for the response's `result` object.
    pub result: Json,
    /// FNV-1a hash of the canonical form of the full output.
    pub fingerprint: u64,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Queries executing concurrently (admission gate active slots).
    pub max_active: usize,
    /// Queries allowed to queue for a slot before rejection.
    pub max_waiting: usize,
    /// Deadline applied when a query carries none (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Admission window for transparently coalescing concurrent
    /// single-source BFS queries into one MS-BFS execution (0 = off).
    pub coalesce_window_ms: u64,
    /// Slow-query threshold: a successful query at or past this latency
    /// emits one structured JSON line to stderr (`None` = off).
    pub slow_ms: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_active: 8,
            max_waiting: 128,
            default_deadline_ms: None,
            coalesce_window_ms: 2,
            slow_ms: None,
        }
    }
}

/// Shared, thread-safe query engine; see the module docs.
pub struct Engine {
    registry: Arc<GraphRegistry>,
    pool: ThreadPool,
    gate: AdmissionGate,
    metrics: ServeMetrics,
    ledger: Option<LedgerSink>,
    default_deadline_ms: Option<u64>,
    coalescer: Option<Coalescer>,
    slow_ms: Option<u64>,
    seq: AtomicU64,
}

/// Trace sessions are process-global (one set of lanes, one ACTIVE
/// flag), so inline-traced queries serialize on this lock: one traced
/// query at a time owns the session. Untraced queries are unaffected.
static QUERY_TRACE_LOCK: Mutex<()> = Mutex::new(());

impl Engine {
    /// Builds an engine over a loaded registry.
    pub fn new(
        registry: Arc<GraphRegistry>,
        pool: ThreadPool,
        config: EngineConfig,
        ledger: Option<LedgerSink>,
    ) -> Engine {
        let metrics = ServeMetrics::new();
        // Resident graph bytes and cold-start accounting are fixed at
        // load; registering the gauges once here puts them in every
        // scrape from the first onward.
        for (spec, bench) in registry.graphs() {
            metrics.set_graph_bytes(spec.name(), bench.resident_bytes() as u64);
        }
        metrics.set_time_to_ready(registry.time_to_ready_seconds());
        for record in registry.load_records() {
            metrics.note_snapshot_load(
                record.spec.name(),
                record.outcome == gapbs_core::CacheOutcome::Hit,
            );
        }
        Engine {
            registry,
            pool,
            gate: AdmissionGate::new(config.max_active, config.max_waiting),
            metrics,
            ledger,
            default_deadline_ms: config.default_deadline_ms,
            coalescer: (config.coalesce_window_ms > 0)
                .then(|| Coalescer::new(Duration::from_millis(config.coalesce_window_ms))),
            slow_ms: config.slow_ms,
            seq: AtomicU64::new(0),
        }
    }

    /// The admission gate (drain on shutdown; stats for `{"cmd":"stats"}`).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The serve-side metric instruments.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The resident registry.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The shared execution pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Runs one query end to end and returns the response line.
    pub fn handle(&self, query: &Query) -> String {
        let received = Instant::now();
        let deadline_ms = query.deadline_ms.or(self.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| received + Duration::from_millis(ms));
        let permit = match self.gate.admit(deadline) {
            Ok(permit) => permit,
            Err(err) => return error_line(query.id.as_ref(), &admit_error(err)),
        };
        // Fail fast if the deadline expired while queued for the permit
        // (or arrived already expired): the query must never reach the
        // pool. The post-run check below still covers overlong kernels.
        if let Some(when) = deadline {
            if Instant::now() > when {
                drop(permit);
                self.gate.note_deadline_exceeded();
                let err = ProtoError::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "{}ms deadline expired before execution began",
                        deadline_ms.unwrap_or(0)
                    ),
                );
                return error_line(query.id.as_ref(), &err);
            }
        }
        let queue_wait = permit.admitted_at().duration_since(received);
        let counters_before = gapbs_telemetry::snapshot();
        let mut trace_payload = None;
        let outcome = if query.trace {
            self.run_traced(query, &mut trace_payload)
        } else {
            match self.coalescible(query) {
                Some(bench) => self.run_coalesced(query, &bench),
                None => run_query_local(&self.registry, query, &self.pool),
            }
        };
        let latency = received.elapsed();
        permit.set_latency_us(latency.as_micros() as u64);
        drop(permit); // counts the query completed, records latency, frees the slot
        self.metrics.observe_query(
            &query.kernel.name().to_lowercase(),
            &query.graph.name().to_lowercase(),
            &query.framework,
            latency.as_micros() as u64,
            queue_wait.as_micros() as u64,
        );
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(err) => return error_line(query.id.as_ref(), &err),
        };
        self.log_slow(query, latency, queue_wait, outcome.fingerprint);
        self.append_record(query, latency, &counters_before);
        if let Some(when) = deadline {
            if Instant::now() > when {
                self.gate.note_deadline_exceeded();
                let err = ProtoError::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "query completed in {:.1}ms, past its {}ms deadline",
                        latency.as_secs_f64() * 1e3,
                        deadline_ms.unwrap_or(0)
                    ),
                );
                return error_line(query.id.as_ref(), &err);
            }
        }
        success_line(
            query.id.as_ref(),
            query,
            latency.as_secs_f64() * 1e3,
            outcome.result,
            outcome.fingerprint,
            trace_payload,
        )
    }

    /// Runs one query under an exclusive process-global trace session
    /// and captures its Chrome-trace events into `payload`. Coalescing
    /// is skipped — the session would attribute the whole batch's work
    /// to this query. In default builds the capture holds the per-query
    /// trial span, thread names, and RSS bookends; `--features
    /// telemetry` adds the per-iteration kernel and pool events.
    fn run_traced(
        &self,
        query: &Query,
        payload: &mut Option<Json>,
    ) -> Result<QueryOutcome, ProtoError> {
        let _exclusive = QUERY_TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        gapbs_telemetry::trace::start(Duration::ZERO);
        let started_ns = gapbs_telemetry::trace::now_ns();
        let outcome = run_query_local(&self.registry, query, &self.pool);
        gapbs_telemetry::trace::trial(
            format!(
                "serve:{}:{}",
                query.kernel.name().to_lowercase(),
                query.graph.name().to_lowercase()
            ),
            started_ns,
        );
        *payload = Some(gapbs_telemetry::trace::stop().to_chrome_json());
        self.metrics.note_traced();
        outcome
    }

    /// One structured JSON line on stderr per successful query at or
    /// past the `--slow-ms` threshold (`docs/OPERATIONS.md` documents
    /// the schema).
    fn log_slow(&self, query: &Query, latency: Duration, queue_wait: Duration, fingerprint: u64) {
        let Some(threshold) = self.slow_ms else {
            return;
        };
        let latency_ms = latency.as_secs_f64() * 1e3;
        if latency_ms < threshold as f64 {
            return;
        }
        self.metrics.note_slow();
        let mut fields = vec![
            ("slow_query".to_string(), Json::Bool(true)),
            (
                "kernel".to_string(),
                Json::Str(query.kernel.name().to_lowercase()),
            ),
            (
                "graph".to_string(),
                Json::Str(query.graph.name().to_lowercase()),
            ),
            ("framework".to_string(), Json::Str(query.framework.clone())),
            ("latency_ms".to_string(), Json::Num(latency_ms)),
            (
                "queue_wait_ms".to_string(),
                Json::Num(queue_wait.as_secs_f64() * 1e3),
            ),
            ("threshold_ms".to_string(), Json::Num(threshold as f64)),
            (
                "fingerprint".to_string(),
                Json::Str(format!("{fingerprint:016x}")),
            ),
        ];
        if let Some(s) = query.source {
            fields.push(("source".to_string(), Json::Num(f64::from(s))));
        }
        if let Some(id) = &query.id {
            fields.push(("id".to_string(), id.clone()));
        }
        eprintln!("{}", Json::obj(fields).encode());
    }

    /// Runs an explicit multi-source batch end to end: one permit, one
    /// MS-BFS execution, one response line with a per-source result and
    /// fingerprint. Each source is accounted as one logical query.
    pub fn handle_batch(&self, batch: &BatchQuery) -> String {
        let query = &batch.query;
        let received = Instant::now();
        let deadline_ms = query.deadline_ms.or(self.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| received + Duration::from_millis(ms));
        let permit = match self.gate.admit(deadline) {
            Ok(permit) => permit,
            Err(err) => return error_line(query.id.as_ref(), &admit_error(err)),
        };
        if let Some(when) = deadline {
            if Instant::now() > when {
                drop(permit);
                self.gate.note_deadline_exceeded();
                let err = ProtoError::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "{}ms deadline expired before execution began",
                        deadline_ms.unwrap_or(0)
                    ),
                );
                return error_line(query.id.as_ref(), &err);
            }
        }
        let queue_wait = permit.admitted_at().duration_since(received);
        let counters_before = gapbs_telemetry::snapshot();
        let results = self.run_batch_local(batch);
        let latency = received.elapsed();
        permit.set_latency_us(latency.as_micros() as u64);
        drop(permit);
        let results = match results {
            Ok(results) => results,
            Err(err) => return error_line(query.id.as_ref(), &err),
        };
        let members = batch.sources.len() as u64;
        self.gate
            .note_batch_members(members - 1, latency.as_micros() as u64);
        self.gate.note_batch(members);
        self.metrics.observe_batch_width(members);
        self.metrics.observe_query(
            "bfs",
            &query.graph.name().to_lowercase(),
            &query.framework,
            latency.as_micros() as u64,
            queue_wait.as_micros() as u64,
        );
        self.append_record(query, latency, &counters_before);
        if let Some(when) = deadline {
            if Instant::now() > when {
                self.gate.note_deadline_exceeded();
                let err = ProtoError::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "batch completed in {:.1}ms, past its {}ms deadline",
                        latency.as_secs_f64() * 1e3,
                        deadline_ms.unwrap_or(0)
                    ),
                );
                return error_line(query.id.as_ref(), &err);
            }
        }
        batch_success_line(
            query.id.as_ref(),
            query,
            latency.as_secs_f64() * 1e3,
            results,
        )
    }

    /// Validates and executes a batch, returning one result object per
    /// source (request order).
    fn run_batch_local(&self, batch: &BatchQuery) -> Result<Vec<Json>, ProtoError> {
        let query = &batch.query;
        let bench = self.registry.get(query.graph).ok_or_else(|| {
            ProtoError::new(
                ErrorCode::UnknownGraph,
                format!(
                    "graph {:?} is not resident in this daemon",
                    query.graph.name()
                ),
            )
        })?;
        let n = bench.num_vertices();
        let check = |field: &str, v: NodeId| -> Result<(), ProtoError> {
            if (v as usize) >= n {
                return Err(ProtoError::new(
                    ErrorCode::BadSource,
                    format!(
                        "{field} {v} out of range for {} ({n} vertices)",
                        bench.spec.name()
                    ),
                ));
            }
            Ok(())
        };
        for &s in &batch.sources {
            check("source", s)?;
        }
        if let Some(t) = query.target {
            check("target", t)?;
        }
        let result = gapbs_ref::ms_bfs(&bench.graph, &batch.sources, &self.pool);
        Ok(batch
            .sources
            .iter()
            .zip(&result.depths)
            .map(|(&source, depths)| {
                let mut fields = bfs_result_fields(source, query.target, depths);
                fields.push((
                    "fingerprint".to_string(),
                    Json::Str(format!("{:016x}", canonical::fingerprint_depths(depths))),
                ));
                Json::obj(fields)
            })
            .collect())
    }

    /// Whether `query` may join a coalesced MS-BFS batch: a single-source
    /// BFS on the reference engine against a resident graph, with its
    /// source in range. Everything else takes the solo path (which also
    /// produces the precise error for bad inputs).
    fn coalescible(&self, query: &Query) -> Option<Arc<BenchGraph>> {
        self.coalescer.as_ref()?;
        if query.kernel != gapbs_core::Kernel::Bfs
            || query.framework != "GAP"
            || query.mode != gapbs_core::Mode::Baseline
        {
            return None;
        }
        let source = query.source?;
        let bench = self.registry.get(query.graph)?;
        if (source as usize) >= bench.num_vertices() {
            return None;
        }
        Some(Arc::clone(bench))
    }

    /// Executes one eligible query through the coalescer: the first
    /// member leads (holds the window, runs MS-BFS over everyone's
    /// sources, publishes per-member depth columns); followers park and
    /// wake with their column. Response fields and fingerprint are
    /// exactly what the solo path produces for the same query.
    fn run_coalesced(&self, query: &Query, bench: &BenchGraph) -> Result<QueryOutcome, ProtoError> {
        let coalescer = self.coalescer.as_ref().expect("checked by coalescible");
        let source = query.source.expect("checked by coalescible");
        let depths: MemberDepths = match coalescer.join(query.graph, source) {
            Joined::Leader(batch) => {
                std::thread::sleep(coalescer.window());
                let sources = coalescer.close(query.graph, &batch);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    gapbs_ref::ms_bfs(&bench.graph, &sources, &self.pool)
                }));
                match run {
                    Ok(result) => {
                        let columns: Vec<MemberDepths> =
                            result.depths.into_iter().map(Arc::new).collect();
                        self.gate.note_batch(sources.len() as u64);
                        self.metrics.observe_batch_width(sources.len() as u64);
                        let mine = Arc::clone(&columns[0]);
                        batch.publish(Ok(columns));
                        mine
                    }
                    Err(panic) => {
                        // Wake the followers before unwinding this thread.
                        batch.publish(Err(ProtoError::new(
                            ErrorCode::Internal,
                            "batch leader panicked during MS-BFS",
                        )));
                        std::panic::resume_unwind(panic);
                    }
                }
            }
            Joined::Follower(batch, member) => batch.wait(member)?,
        };
        Ok(bfs_outcome(query, source, &depths))
    }

    /// One coherent gate observation plus this instant's pool stats —
    /// the basis of every scrape.
    pub fn observe(&self) -> GateObservation {
        self.gate.observe()
    }

    /// Daemon statistics for `{"cmd":"stats"}`. The lifecycle fields and
    /// `active`/`waiting` come from one coherent [`GateObservation`], so
    /// within a single response `queries_admitted == queries_completed +
    /// active` holds exactly (and `metrics.latency_us.count ==
    /// queries_completed`); a scrape can never observe an impossible
    /// state.
    pub fn stats_json(&self) -> Json {
        let obs = self.gate.observe();
        let pool_stats = self.pool.stats();
        let metrics = self.metrics.snapshot(&obs, pool_stats);
        let snap = obs.stats;
        let rss = gapbs_telemetry::trace::read_vm_status().map_or(0, |vm| vm.vm_rss_bytes);
        Json::obj([
            ("ok".to_string(), Json::Bool(true)),
            (
                "scale".to_string(),
                Json::Str(format!("{:?}", self.registry.scale()).to_lowercase()),
            ),
            (
                "graphs".to_string(),
                Json::Arr(
                    self.registry
                        .graphs()
                        .map(|(spec, bench)| {
                            Json::obj([
                                ("name".to_string(), Json::Str(spec.name().to_string())),
                                (
                                    "vertices".to_string(),
                                    Json::Num(bench.graph.num_vertices() as f64),
                                ),
                                (
                                    "graph_bytes".to_string(),
                                    Json::Num(bench.resident_bytes() as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "threads".to_string(),
                Json::Num(self.pool.num_threads() as f64),
            ),
            ("active".to_string(), Json::Num(obs.active as f64)),
            ("waiting".to_string(), Json::Num(obs.waiting as f64)),
            (
                "queue_age_us".to_string(),
                Json::Num(obs.queue_age_us as f64),
            ),
            (
                "queries_admitted".to_string(),
                Json::Num(snap.admitted as f64),
            ),
            (
                "queries_rejected".to_string(),
                Json::Num(snap.rejected as f64),
            ),
            (
                "queries_completed".to_string(),
                Json::Num(snap.completed as f64),
            ),
            (
                "deadline_exceeded".to_string(),
                Json::Num(snap.deadline_exceeded as f64),
            ),
            (
                "batch_queries".to_string(),
                Json::Num(snap.batch_queries as f64),
            ),
            (
                "batch_width".to_string(),
                Json::Num(snap.batch_width as f64),
            ),
            ("rss_bytes".to_string(), Json::Num(rss as f64)),
            (
                "pool_regions".to_string(),
                Json::Num(pool_stats.regions as f64),
            ),
            (
                "pool_steals".to_string(),
                Json::Num(pool_stats.steals as f64),
            ),
            ("pool_parks".to_string(), Json::Num(pool_stats.parks as f64)),
            ("draining".to_string(), Json::Bool(self.gate.draining())),
            (
                "ledger_records".to_string(),
                Json::Num(self.ledger.as_ref().map_or(0.0, |l| l.appended() as f64)),
            ),
            ("metrics".to_string(), metrics.to_json()),
        ])
    }

    /// The full metrics plane as Prometheus text exposition (format
    /// 0.0.4), served on the `--metrics-addr` listener's `/metrics`.
    pub fn prometheus_text(&self) -> String {
        let obs = self.gate.observe();
        self.metrics
            .snapshot(&obs, self.pool.stats())
            .to_prometheus(PROM_PREFIX)
    }

    /// Flushes the per-query ledger (shutdown path).
    pub fn flush_ledger(&self) -> std::io::Result<()> {
        match &self.ledger {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    /// One ledger record per executed query. `seconds` is the end-to-end
    /// latency; work counters are the global delta over the query's
    /// window (a slight over-count under concurrency — the window sees
    /// overlapping queries' work too — but always includes its own);
    /// lifecycle counters are *cumulative* gate totals at completion, so
    /// `queries_completed <= queries_admitted` holds in every record no
    /// matter how windows interleave.
    fn append_record(
        &self,
        query: &Query,
        latency: Duration,
        counters_before: &gapbs_telemetry::CounterSet,
    ) {
        let Some(sink) = &self.ledger else { return };
        let Some(bench) = self.registry.get(query.graph) else {
            return;
        };
        let mut counters = gapbs_telemetry::snapshot().delta(counters_before);
        let snap = self.gate.snapshot();
        counters.set(Counter::QueriesAdmitted, snap.admitted);
        counters.set(Counter::QueriesRejected, snap.rejected);
        counters.set(Counter::QueriesCompleted, snap.completed);
        counters.set(Counter::DeadlineExceeded, snap.deadline_exceeded);
        counters.set(Counter::BatchQueries, snap.batch_queries);
        counters.set(Counter::BatchWidth, snap.batch_width);
        let record = TrialRecord {
            framework: query.framework.clone(),
            kernel: query.kernel.name().to_lowercase(),
            graph: query.graph.name().to_string(),
            mode: query.mode.name().to_string(),
            trial: self.seq.fetch_add(1, Ordering::Relaxed),
            seconds: latency.as_secs_f64(),
            build_seconds: 0.0,
            relabel_seconds: 0.0,
            verified: true,
            threads: self.pool.num_threads() as u64,
            num_vertices: bench.graph.num_vertices() as u64,
            num_arcs: bench.graph.num_arcs() as u64,
            counters,
            phases: gapbs_telemetry::PhaseTimes::zero(),
            peak_rss_bytes: gapbs_telemetry::trace::read_vm_status()
                .map_or(0, |vm| vm.vm_hwm_bytes),
            graph_bytes: bench.kernel_graph_bytes(query.kernel) as u64,
            git_rev: String::new(),
        };
        if let Err(e) = sink.append(&record) {
            eprintln!("serve: ledger append: {e}");
        }
    }
}

fn admit_error(err: AdmitError) -> ProtoError {
    match err {
        AdmitError::Rejected => ProtoError::new(
            ErrorCode::Rejected,
            "admission queue full; retry with backoff",
        ),
        AdmitError::DeadlineExceeded => ProtoError::new(
            ErrorCode::DeadlineExceeded,
            "deadline expired while queued for an execution slot",
        ),
        AdmitError::Draining => ProtoError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining; no new queries",
        ),
    }
}

/// Resolves a query against the registry and executes it — no admission,
/// no accounting. The daemon, the load generator's `--check` mode, and
/// the bit-identity tests all produce results through this one function.
///
/// # Errors
///
/// [`ErrorCode::UnknownGraph`] when the graph is not resident,
/// [`ErrorCode::UnknownFramework`] when no adapter matches, and
/// [`ErrorCode::BadSource`] when `source`/`target`/`vertex` fall outside
/// the graph's vertex range.
pub fn run_query_local(
    registry: &GraphRegistry,
    query: &Query,
    pool: &ThreadPool,
) -> Result<QueryOutcome, ProtoError> {
    let bench = registry.get(query.graph).ok_or_else(|| {
        ProtoError::new(
            ErrorCode::UnknownGraph,
            format!(
                "graph {:?} is not resident in this daemon",
                query.graph.name()
            ),
        )
    })?;
    let framework = registry.framework(&query.framework).ok_or_else(|| {
        ProtoError::new(
            ErrorCode::UnknownFramework,
            format!("framework {:?} has no adapter", query.framework),
        )
    })?;
    execute_query(bench, framework, query, pool)
}

/// Executes one validated query on an explicit graph + framework pair.
///
/// # Errors
///
/// [`ErrorCode::BadSource`] when a vertex field is out of range.
pub fn execute_query(
    bench: &BenchGraph,
    framework: &dyn Framework,
    query: &Query,
    pool: &ThreadPool,
) -> Result<QueryOutcome, ProtoError> {
    let n = bench.num_vertices();
    let check = |field: &str, v: Option<NodeId>| -> Result<(), ProtoError> {
        match v {
            Some(v) if (v as usize) >= n => Err(ProtoError::new(
                ErrorCode::BadSource,
                format!(
                    "{field} {v} out of range for {} ({n} vertices)",
                    bench.spec.name()
                ),
            )),
            _ => Ok(()),
        }
    };
    check("source", query.source)?;
    check("target", query.target)?;
    check("vertex", query.vertex)?;
    let prepared = framework.prepare(bench, query.mode, pool);
    let outcome = match query.kernel {
        gapbs_core::Kernel::Bfs => {
            let source = query.source.expect("parser guarantees a source");
            let parents = prepared.bfs(source);
            let depths = canonical::bfs_depths(&parents);
            bfs_outcome(query, source, &depths)
        }
        gapbs_core::Kernel::Sssp => {
            let source = query.source.expect("parser guarantees a source");
            let dist = prepared.sssp(source);
            let reached = dist.iter().filter(|&&d| d != INF_DIST).count();
            let mut fields = vec![
                ("source".to_string(), Json::Num(f64::from(source))),
                ("reached".to_string(), Json::Num(reached as f64)),
            ];
            if let Some(t) = query.target {
                let d = dist[t as usize];
                fields.push((
                    "target_distance".to_string(),
                    if d == INF_DIST {
                        Json::Null
                    } else {
                        Json::Num(d as f64)
                    },
                ));
            }
            QueryOutcome {
                result: Json::obj(fields),
                fingerprint: canonical::fingerprint_distances(&dist),
            }
        }
        gapbs_core::Kernel::Pr => {
            let (scores, iterations) = prepared.pr();
            let fields = vec![
                ("iterations".to_string(), Json::Num(iterations as f64)),
                ("top".to_string(), top_k(&scores, query.k)),
            ];
            QueryOutcome {
                result: Json::obj(fields),
                fingerprint: canonical::fingerprint_scores(&scores),
            }
        }
        gapbs_core::Kernel::Cc => {
            let labels = canonical::cc_labels(&prepared.cc());
            let components = labels
                .iter()
                .enumerate()
                .filter(|&(v, &l)| v as NodeId == l)
                .count();
            let mut fields = vec![("components".to_string(), Json::Num(components as f64))];
            if let Some(v) = query.vertex {
                fields.push((
                    "vertex_component".to_string(),
                    Json::Num(f64::from(labels[v as usize])),
                ));
            }
            QueryOutcome {
                result: Json::obj(fields),
                fingerprint: canonical::fingerprint_labels(&labels),
            }
        }
        gapbs_core::Kernel::Bc => {
            let source = query.source.expect("parser guarantees a source");
            let scores = prepared.bc(&[source]);
            let fields = vec![
                ("source".to_string(), Json::Num(f64::from(source))),
                ("top".to_string(), top_k(&scores, query.k)),
            ];
            QueryOutcome {
                result: Json::obj(fields),
                fingerprint: canonical::fingerprint_scores(&scores),
            }
        }
        gapbs_core::Kernel::Tc => {
            let triangles = prepared.tc();
            QueryOutcome {
                result: Json::obj([("triangles".to_string(), Json::Num(triangles as f64))]),
                fingerprint: canonical::fingerprint_count(triangles),
            }
        }
    };
    Ok(outcome)
}

/// BFS response fields from a canonical depth array. One code path
/// builds these whether the depths came from a solo parent-array run, a
/// coalesced MS-BFS column, or an explicit batch — which is what makes
/// batching invisible in responses.
fn bfs_result_fields(
    source: NodeId,
    target: Option<NodeId>,
    depths: &[u32],
) -> Vec<(String, Json)> {
    let reached = depths
        .iter()
        .filter(|&&d| d != canonical::UNREACHED)
        .count();
    let max_depth = depths
        .iter()
        .filter(|&&d| d != canonical::UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    let mut fields = vec![
        ("source".to_string(), Json::Num(f64::from(source))),
        ("reached".to_string(), Json::Num(reached as f64)),
        ("max_depth".to_string(), Json::Num(f64::from(max_depth))),
    ];
    if let Some(t) = target {
        let d = depths[t as usize];
        fields.push((
            "target_depth".to_string(),
            if d == canonical::UNREACHED {
                Json::Null
            } else {
                Json::Num(f64::from(d))
            },
        ));
    }
    fields
}

/// A BFS [`QueryOutcome`] from canonical depths (see [`bfs_result_fields`]).
fn bfs_outcome(query: &Query, source: NodeId, depths: &[u32]) -> QueryOutcome {
    QueryOutcome {
        result: Json::obj(bfs_result_fields(source, query.target, depths)),
        fingerprint: canonical::fingerprint_depths(depths),
    }
}

/// Top-k vertices by score (descending, vertex id breaking ties) as a
/// JSON array of `{"vertex", "score"}` objects.
fn top_k(scores: &[f64], k: usize) -> Json {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    Json::Arr(
        order
            .into_iter()
            .map(|v| {
                Json::obj([
                    ("vertex".to_string(), Json::Num(v as f64)),
                    ("score".to_string(), Json::Num(scores[v])),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Command};
    use gapbs_graph::gen::{GraphSpec, Scale};
    use std::sync::OnceLock;

    fn tiny_registry() -> &'static Arc<GraphRegistry> {
        static REG: OnceLock<Arc<GraphRegistry>> = OnceLock::new();
        REG.get_or_init(|| {
            let pool = ThreadPool::new(2);
            Arc::new(GraphRegistry::load(Scale::Tiny, &[GraphSpec::Kron], &pool))
        })
    }

    fn query(line: &str) -> Query {
        match parse_request(line).unwrap() {
            Command::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn engine_answers_bfs_with_fingerprint_matching_local_run() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(
            Arc::clone(&registry),
            pool.clone(),
            EngineConfig::default(),
            None,
        );
        let q = query(r#"{"kernel":"bfs","graph":"kron","source":1,"id":9}"#);
        let line = engine.handle(&q);
        let v = Json::parse(&line).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "line: {line}"
        );
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
        let expected = run_query_local(&registry, &q, &pool).unwrap();
        assert_eq!(
            v.get("fingerprint").and_then(Json::as_str),
            Some(format!("{:016x}", expected.fingerprint).as_str())
        );
    }

    #[test]
    fn out_of_range_vertices_are_bad_source() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(1);
        let q = query(r#"{"kernel":"bfs","graph":"kron","source":4000000000}"#);
        let err = run_query_local(&registry, &q, &pool).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadSource);
        let q = query(r#"{"kernel":"cc","graph":"kron","vertex":4000000000}"#);
        let err = run_query_local(&registry, &q, &pool).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadSource);
    }

    #[test]
    fn non_resident_graph_is_unknown_graph() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(1);
        let q = query(r#"{"kernel":"tc","graph":"urand"}"#);
        let err = run_query_local(&registry, &q, &pool).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownGraph);
    }

    #[test]
    fn instant_deadline_yields_deadline_exceeded_then_recovers() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(Arc::clone(&registry), pool, EngineConfig::default(), None);
        let q = query(r#"{"kernel":"tc","graph":"kron","deadline_ms":0}"#);
        let v = Json::parse(&engine.handle(&q)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        // The pool is not poisoned: the next undeadlined query succeeds.
        let q = query(r#"{"kernel":"tc","graph":"kron"}"#);
        let v = Json::parse(&engine.handle(&q)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(engine.gate().snapshot().deadline_exceeded, 1);
    }

    #[test]
    fn expired_deadline_never_executes_a_kernel() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(Arc::clone(&registry), pool, EngineConfig::default(), None);
        let before = gapbs_telemetry::snapshot();
        let q = query(r#"{"kernel":"bfs","graph":"kron","source":1,"deadline_ms":0}"#);
        let v = Json::parse(&engine.handle(&q)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        // The fail-fast path returns before touching the pool: the query
        // examined zero edges (meaningful in telemetry builds; trivially
        // zero otherwise).
        let delta = gapbs_telemetry::snapshot().delta(&before);
        assert_eq!(delta.get(Counter::EdgesExamined), 0);
        assert_eq!(engine.gate().snapshot().deadline_exceeded, 1);
        assert_eq!(engine.gate().snapshot().completed, 1, "permit was released");
    }

    #[test]
    fn batch_request_fingerprints_match_individual_queries() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(
            Arc::clone(&registry),
            pool.clone(),
            EngineConfig::default(),
            None,
        );
        let b =
            match parse_request(r#"{"kernel":"bfs","graph":"kron","sources":[1,5,9],"target":3}"#)
                .unwrap()
            {
                Command::Batch(b) => b,
                other => panic!("expected batch, got {other:?}"),
            };
        let line = engine.handle_batch(&b);
        let v = Json::parse(&line).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "line: {line}"
        );
        assert_eq!(v.get("batch").and_then(Json::as_u64), Some(3));
        let Some(Json::Arr(results)) = v.get("results") else {
            panic!("missing results array: {line}");
        };
        assert_eq!(results.len(), 3);
        for (entry, &source) in results.iter().zip(&b.sources) {
            let solo = query(&format!(
                r#"{{"kernel":"bfs","graph":"kron","source":{source},"target":3}}"#
            ));
            let expected = run_query_local(&registry, &solo, &pool).unwrap();
            assert_eq!(
                entry.get("fingerprint").and_then(Json::as_str),
                Some(format!("{:016x}", expected.fingerprint).as_str()),
                "source {source}"
            );
            assert_eq!(
                entry.get("reached").and_then(Json::as_u64),
                expected.result.get("reached").and_then(Json::as_u64),
            );
            assert_eq!(
                entry.get("target_depth").and_then(Json::as_u64),
                expected.result.get("target_depth").and_then(Json::as_u64),
            );
        }
        // Each batched source is one logical query; the invariant
        // batch_queries <= admitted holds.
        let snap = engine.gate().snapshot();
        assert_eq!(snap.batch_queries, 3);
        assert_eq!(snap.batch_width, 3);
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.completed, 3);
    }

    #[test]
    fn coalesced_queries_fingerprint_identically_to_solo_runs() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        // A generous window so concurrently-spawned queries reliably land
        // in one batch; correctness does not depend on them merging.
        let config = EngineConfig {
            coalesce_window_ms: 200,
            ..EngineConfig::default()
        };
        let engine = Arc::new(Engine::new(
            Arc::clone(&registry),
            pool.clone(),
            config,
            None,
        ));
        let sources = [1u32, 6, 11];
        let lines: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = sources
                .iter()
                .map(|&s| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || {
                        let q = query(&format!(
                            r#"{{"kernel":"bfs","graph":"kron","source":{s}}}"#
                        ));
                        engine.handle(&q)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (line, &s) in lines.iter().zip(&sources) {
            let v = Json::parse(line).unwrap();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "line: {line}"
            );
            let solo = query(&format!(
                r#"{{"kernel":"bfs","graph":"kron","source":{s}}}"#
            ));
            let expected = run_query_local(&registry, &solo, &pool).unwrap();
            assert_eq!(
                v.get("fingerprint").and_then(Json::as_str),
                Some(format!("{:016x}", expected.fingerprint).as_str()),
                "source {s}"
            );
        }
        let snap = engine.gate().snapshot();
        assert_eq!(snap.batch_queries, 3, "all three queries rode batches");
        assert!(snap.batch_width >= 2, "concurrent queries coalesced");
        assert!(snap.batch_queries <= snap.admitted);
    }

    #[test]
    fn traced_query_returns_inline_chrome_events() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(
            Arc::clone(&registry),
            pool.clone(),
            EngineConfig::default(),
            None,
        );
        let q = query(r#"{"kernel":"bfs","graph":"kron","source":1,"trace":true}"#);
        let line = engine.handle(&q);
        let v = Json::parse(&line).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "line: {line}"
        );
        let Some(Json::Arr(events)) = v.get("trace") else {
            panic!("traced response carries no trace array: {line}");
        };
        assert!(!events.is_empty(), "capture holds at least the trial span");
        // The trial span names this query.
        assert!(
            events.iter().any(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.contains("serve:bfs:kron"))
            }),
            "no serve:bfs:kron trial event in {events:?}"
        );
        // Tracing never changes the answer.
        let solo = query(r#"{"kernel":"bfs","graph":"kron","source":1}"#);
        let expected = run_query_local(&registry, &solo, &pool).unwrap();
        assert_eq!(
            v.get("fingerprint").and_then(Json::as_str),
            Some(format!("{:016x}", expected.fingerprint).as_str())
        );
        // An untraced follow-up response carries no trace field.
        let v = Json::parse(&engine.handle(&solo)).unwrap();
        assert!(v.get("trace").is_none());
    }

    #[test]
    fn stats_json_is_internally_consistent() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let engine = Engine::new(Arc::clone(&registry), pool, EngineConfig::default(), None);
        for source in [1u32, 2, 3] {
            let q = query(&format!(
                r#"{{"kernel":"bfs","graph":"kron","source":{source}}}"#
            ));
            engine.handle(&q);
        }
        let stats = engine.stats_json();
        let num = |k: &str| {
            stats
                .get(k)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("missing {k}"))
        };
        assert_eq!(
            num("queries_admitted"),
            num("queries_completed") + num("active")
        );
        let metrics = stats.get("metrics").expect("metrics object");
        assert_eq!(
            metrics
                .get("latency_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(num("queries_completed")),
            "gate latency histogram count == completed"
        );
        assert!(stats.get("waiting").is_some());
        assert!(stats.get("rss_bytes").is_some());
        assert!(num("pool_regions") > 0, "BFS ran parallel regions");
        assert_eq!(stats.get("draining").and_then(Json::as_bool), Some(false));
        // The Prometheus rendering of the same plane is non-empty and
        // carries the gate series.
        let text = engine.prometheus_text();
        assert!(text.contains("gapbs_serve_queries_admitted_total 3"));
        assert!(text.contains("# TYPE gapbs_serve_latency_us histogram"));
    }

    #[test]
    fn slow_query_log_fires_at_zero_threshold() {
        let registry = Arc::clone(tiny_registry());
        let pool = ThreadPool::new(2);
        let config = EngineConfig {
            slow_ms: Some(0),
            ..EngineConfig::default()
        };
        let engine = Engine::new(Arc::clone(&registry), pool, config, None);
        let q = query(r#"{"kernel":"bfs","graph":"kron","source":1}"#);
        engine.handle(&q);
        // The counter is the observable half of the log line (stderr is
        // asserted by verify.sh's smoke stage).
        let json = engine.stats_json();
        let slow = json
            .get("metrics")
            .and_then(|m| m.get("slow_queries_total"))
            .and_then(Json::as_u64);
        assert_eq!(slow, Some(1));
    }

    #[test]
    fn top_k_orders_by_score_then_vertex() {
        let json = top_k(&[0.5, 0.9, 0.5, 0.1], 3);
        let Json::Arr(items) = json else {
            panic!("expected array")
        };
        let vertices: Vec<u64> = items
            .iter()
            .map(|o| o.get("vertex").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(vertices, vec![1, 0, 2]);
    }
}
