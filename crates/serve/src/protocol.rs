//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order, per
//! connection. Concurrency comes from concurrent connections — the
//! shape Gunrock frames for a resident-graph service, and the simplest
//! protocol a load generator or a `nc` session can speak.
//!
//! ```text
//! {"kernel":"bfs","graph":"kron","source":42}
//! {"kernel":"pr","graph":"web","k":5}
//! {"kernel":"sssp","graph":"road","source":0,"target":17,"deadline_ms":250}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are JSON objects with `"ok":true` plus kernel-specific
//! result fields, or `"ok":false` with a stable error `code`. Every
//! success response carries a `fingerprint`: an FNV-1a hash of the
//! *canonical* form of the full kernel output (see [`canonical`]), so a
//! client can assert bit-identity against a batch-mode run without
//! shipping whole parent/distance arrays over the socket.

use gapbs_core::{Kernel, Mode};
use gapbs_graph::gen::GraphSpec;
use gapbs_graph::types::NodeId;
use gapbs_telemetry::json::Json;

/// Stable machine-readable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Malformed,
    /// Valid JSON, but required fields are missing or mistyped.
    BadRequest,
    /// `kernel` is not one of the six.
    UnknownKernel,
    /// `graph` is not resident in the registry.
    UnknownGraph,
    /// `framework` is not one of the evaluated six.
    UnknownFramework,
    /// `source`/`target`/`vertex` is outside the graph's vertex range.
    BadSource,
    /// The admission queue was full.
    Rejected,
    /// The request's deadline expired before a result could be sent.
    DeadlineExceeded,
    /// The daemon is draining and accepts no new queries.
    ShuttingDown,
    /// Verification or another server-side failure.
    Internal,
}

impl ErrorCode {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownKernel => "unknown_kernel",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::UnknownFramework => "unknown_framework",
            ErrorCode::BadSource => "bad_source",
            ErrorCode::Rejected => "rejected",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A protocol-level failure: code plus human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Stable error code.
    pub code: ErrorCode,
    /// Human-readable detail for the `error` field.
    pub message: String,
}

impl ProtoError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// A kernel query.
    Query(Query),
    /// A multi-source BFS batch (`"sources":[...]`).
    Batch(BatchQuery),
    /// `{"cmd":"shutdown"}` — drain and exit.
    Shutdown,
    /// `{"cmd":"stats"}` — daemon statistics.
    Stats,
    /// `{"cmd":"ping"}` — liveness probe.
    Ping,
}

/// An explicit multi-source BFS request: one line carrying a source
/// list, answered by one MS-BFS execution with a per-source result (and
/// per-source canonical fingerprint) in a single response line.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQuery {
    /// Everything but the sources (`query.source` is `None`).
    pub query: Query,
    /// The packed sources, in request order. Never empty.
    pub sources: Vec<NodeId>,
}

/// A validated kernel query (ranges are checked against the graph by the
/// engine, which owns the registry).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Client request id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Which kernel to run.
    pub kernel: Kernel,
    /// Which resident graph to run it on.
    pub graph: GraphSpec,
    /// Framework display name ("GAP", "SuiteSparse", ...).
    pub framework: String,
    /// Rule set (Baseline unless `"mode":"optimized"`).
    pub mode: Mode,
    /// Source vertex (required for bfs/sssp/bc).
    pub source: Option<NodeId>,
    /// Lookup vertex: bfs parent-of / sssp distance-to target.
    pub target: Option<NodeId>,
    /// Lookup vertex for cc membership.
    pub vertex: Option<NodeId>,
    /// Top-k size for pr/bc score listings.
    pub k: usize,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// `"trace": true` — capture this query's Chrome-trace events and
    /// return them inline in the response (`docs/OPERATIONS.md`).
    pub trace: bool,
}

/// Default top-k size for PR/BC responses.
pub const DEFAULT_TOP_K: usize = 10;

fn parse_kernel(s: &str) -> Result<Kernel, ProtoError> {
    match s.to_lowercase().as_str() {
        "bfs" => Ok(Kernel::Bfs),
        "sssp" => Ok(Kernel::Sssp),
        "pr" => Ok(Kernel::Pr),
        "cc" => Ok(Kernel::Cc),
        "bc" => Ok(Kernel::Bc),
        "tc" => Ok(Kernel::Tc),
        other => Err(ProtoError::new(
            ErrorCode::UnknownKernel,
            format!("unknown kernel {other:?}; expected bfs|sssp|pr|cc|bc|tc"),
        )),
    }
}

/// Parses a corpus graph name (the registry key).
pub fn parse_graph(s: &str) -> Result<GraphSpec, ProtoError> {
    match s.to_lowercase().as_str() {
        "web" => Ok(GraphSpec::Web),
        "twitter" => Ok(GraphSpec::Twitter),
        "road" => Ok(GraphSpec::Road),
        "kron" => Ok(GraphSpec::Kron),
        "urand" => Ok(GraphSpec::Urand),
        other => Err(ProtoError::new(
            ErrorCode::UnknownGraph,
            format!("unknown graph {other:?}; expected web|twitter|road|kron|urand"),
        )),
    }
}

/// Resolves a framework alias to its display name (the same aliases the
/// kernel binaries' `-x` flag takes).
pub fn parse_framework(s: &str) -> Result<&'static str, ProtoError> {
    match s.to_lowercase().as_str() {
        "gap" | "ref" => Ok("GAP"),
        "suitesparse" | "graphblas" | "lagraph" => Ok("SuiteSparse"),
        "galois" => Ok("Galois"),
        "graphit" => Ok("GraphIt"),
        "gkc" => Ok("GKC"),
        "nwgraph" => Ok("NWGraph"),
        other => Err(ProtoError::new(
            ErrorCode::UnknownFramework,
            format!(
                "unknown framework {other:?}; expected gap|suitesparse|galois|graphit|gkc|nwgraph"
            ),
        )),
    }
}

fn node_field(v: &Json, key: &str) -> Result<Option<NodeId>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => {
            let n = value.as_u64().ok_or_else(|| {
                ProtoError::new(
                    ErrorCode::BadRequest,
                    format!("field {key:?} must be a non-negative integer"),
                )
            })?;
            NodeId::try_from(n).map(Some).map_err(|_| {
                ProtoError::new(
                    ErrorCode::BadSource,
                    format!("field {key:?} value {n} exceeds the 32-bit vertex space"),
                )
            })
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtoError`] with a stable code on malformed JSON,
/// missing/mistyped fields, or unknown kernel/graph/framework names.
pub fn parse_request(line: &str) -> Result<Command, ProtoError> {
    let v = Json::parse(line)
        .map_err(|e| ProtoError::new(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    }
    if let Some(cmd) = v.get("cmd") {
        let cmd = cmd.as_str().ok_or_else(|| {
            ProtoError::new(ErrorCode::BadRequest, "field \"cmd\" must be a string")
        })?;
        return match cmd {
            "query" => parse_query_or_batch(&v),
            "batch" => parse_batch(&v).map(Command::Batch),
            "shutdown" => Ok(Command::Shutdown),
            "stats" => Ok(Command::Stats),
            "ping" => Ok(Command::Ping),
            other => Err(ProtoError::new(
                ErrorCode::BadRequest,
                format!("unknown cmd {other:?}; expected query|batch|stats|ping|shutdown"),
            )),
        };
    }
    parse_query_or_batch(&v)
}

/// A line with a `sources` array is a batch; anything else is a query.
fn parse_query_or_batch(v: &Json) -> Result<Command, ProtoError> {
    match v.get("sources") {
        None | Some(Json::Null) => parse_query(v).map(Command::Query),
        Some(_) => parse_batch(v).map(Command::Batch),
    }
}

/// Most sources one batch line may carry (bounds the response line and
/// the per-batch state; MS-BFS itself chunks in 64-wide words).
pub const MAX_BATCH_SOURCES: usize = 1024;

fn parse_batch(v: &Json) -> Result<BatchQuery, ProtoError> {
    let query = parse_query_fields(v)?;
    if query.kernel != Kernel::Bfs {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "\"sources\" batches support kernel \"bfs\" only",
        ));
    }
    if query.framework != "GAP" {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "batched bfs executes on the reference MS-BFS engine; framework must be \"gap\"",
        ));
    }
    if query.source.is_some() {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "give either \"source\" or \"sources\", not both",
        ));
    }
    let Some(Json::Arr(items)) = v.get("sources") else {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "field \"sources\" must be an array of vertex ids",
        ));
    };
    if items.is_empty() || items.len() > MAX_BATCH_SOURCES {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            format!("\"sources\" must list 1..={MAX_BATCH_SOURCES} vertices"),
        ));
    }
    let sources = items
        .iter()
        .map(|item| {
            let n = item.as_u64().ok_or_else(|| {
                ProtoError::new(
                    ErrorCode::BadRequest,
                    "field \"sources\" must hold non-negative integers",
                )
            })?;
            NodeId::try_from(n).map_err(|_| {
                ProtoError::new(
                    ErrorCode::BadSource,
                    format!("source {n} exceeds the 32-bit vertex space"),
                )
            })
        })
        .collect::<Result<Vec<NodeId>, ProtoError>>()?;
    Ok(BatchQuery { query, sources })
}

fn parse_query(v: &Json) -> Result<Query, ProtoError> {
    let query = parse_query_fields(v)?;
    if query.kernel.takes_source() && query.source.is_none() {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            format!(
                "kernel {:?} requires a \"source\" vertex",
                query.kernel.name().to_lowercase()
            ),
        ));
    }
    Ok(query)
}

fn parse_query_fields(v: &Json) -> Result<Query, ProtoError> {
    let kernel = parse_kernel(v.get("kernel").and_then(Json::as_str).ok_or_else(|| {
        ProtoError::new(ErrorCode::BadRequest, "missing string field \"kernel\"")
    })?)?;
    let graph = parse_graph(v.get("graph").and_then(Json::as_str).ok_or_else(|| {
        ProtoError::new(ErrorCode::BadRequest, "missing string field \"graph\"")
    })?)?;
    let framework = match v.get("framework") {
        None | Some(Json::Null) => "GAP",
        Some(f) => parse_framework(f.as_str().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                "field \"framework\" must be a string",
            )
        })?)?,
    };
    let mode = match v.get("mode").and_then(Json::as_str) {
        None | Some("baseline") | Some("Baseline") => Mode::Baseline,
        Some("optimized") | Some("Optimized") => Mode::Optimized,
        Some(other) => {
            return Err(ProtoError::new(
                ErrorCode::BadRequest,
                format!("unknown mode {other:?}; expected baseline|optimized"),
            ))
        }
    };
    let source = node_field(v, "source")?;
    let k = match v.get("k") {
        None | Some(Json::Null) => DEFAULT_TOP_K,
        Some(value) => value.as_u64().map(|n| n as usize).ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                "field \"k\" must be a non-negative integer",
            )
        })?,
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(value) => Some(value.as_u64().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                "field \"deadline_ms\" must be a non-negative integer",
            )
        })?),
    };
    let trace = match v.get("trace") {
        None | Some(Json::Null) => false,
        Some(value) => value.as_bool().ok_or_else(|| {
            ProtoError::new(ErrorCode::BadRequest, "field \"trace\" must be a boolean")
        })?,
    };
    Ok(Query {
        id: v.get("id").cloned(),
        kernel,
        graph,
        framework: framework.to_string(),
        mode,
        source,
        target: node_field(v, "target")?,
        vertex: node_field(v, "vertex")?,
        k,
        deadline_ms,
        trace,
    })
}

/// Encodes a success response line (no trailing newline). `trace`, when
/// present, is the query's inline Chrome-trace event array (the
/// `"trace": true` request flag); it rides the response as a `"trace"`
/// field that `trace_stats` and Perfetto can consume directly.
pub fn success_line(
    id: Option<&Json>,
    query: &Query,
    latency_ms: f64,
    result: Json,
    fingerprint: u64,
    trace: Option<Json>,
) -> String {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        (
            "kernel".to_string(),
            Json::Str(query.kernel.name().to_lowercase()),
        ),
        (
            "graph".to_string(),
            Json::Str(query.graph.name().to_string()),
        ),
        ("framework".to_string(), Json::Str(query.framework.clone())),
        ("latency_ms".to_string(), Json::Num(latency_ms)),
        ("result".to_string(), result),
        (
            "fingerprint".to_string(),
            Json::Str(format!("{fingerprint:016x}")),
        ),
    ];
    if let Some(events) = trace {
        fields.push(("trace".to_string(), events));
    }
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    Json::obj(fields).encode()
}

/// Encodes the single response line of a batch request: one entry per
/// source (in request order), each with its own canonical fingerprint.
pub fn batch_success_line(
    id: Option<&Json>,
    query: &Query,
    latency_ms: f64,
    results: Vec<Json>,
) -> String {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        (
            "kernel".to_string(),
            Json::Str(query.kernel.name().to_lowercase()),
        ),
        (
            "graph".to_string(),
            Json::Str(query.graph.name().to_string()),
        ),
        ("framework".to_string(), Json::Str(query.framework.clone())),
        ("latency_ms".to_string(), Json::Num(latency_ms)),
        ("batch".to_string(), Json::Num(results.len() as f64)),
        ("results".to_string(), Json::Arr(results)),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    Json::obj(fields).encode()
}

/// Encodes an error response line (no trailing newline).
pub fn error_line(id: Option<&Json>, err: &ProtoError) -> String {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("code".to_string(), Json::Str(err.code.as_str().to_string())),
        ("error".to_string(), Json::Str(err.message.clone())),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    Json::obj(fields).encode()
}

/// FNV-1a 64-bit over a byte stream — the response fingerprint hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Canonical result forms — what response fingerprints are computed
/// over.
///
/// Raw kernel outputs are not all stable: a direction-optimizing BFS
/// parent array and Afforest's component representatives depend on CAS
/// race winners. The *canonical* forms below are pure functions of the
/// graph and query, so a server response and a batch-mode run hash
/// identically whenever the kernel's value semantics are deterministic
/// (all integer kernels everywhere; float kernels on the SuiteSparse
/// engine, whose PR-5 contract is bit-identical output at every thread
/// count).
pub mod canonical {
    use super::Fnv1a;
    use gapbs_graph::types::{Distance, NodeId, Score, NO_PARENT};

    /// Depth meaning "unreached" in canonical BFS depth arrays.
    pub const UNREACHED: u32 = u32::MAX;

    /// Converts a BFS parent array into the canonical depth array.
    /// Depths are a pure function of graph and source; parent choices
    /// are not. Unreached vertices get [`UNREACHED`].
    pub fn bfs_depths(parents: &[NodeId]) -> Vec<u32> {
        let n = parents.len();
        let mut depth = vec![UNREACHED; n];
        for start in 0..n {
            if depth[start] != UNREACHED || parents[start] == NO_PARENT {
                continue;
            }
            // Chase parents until a known depth or the root, then unwind.
            let mut chain = Vec::new();
            let mut v = start;
            loop {
                if depth[v] != UNREACHED {
                    break;
                }
                let p = parents[v] as usize;
                if p == v {
                    depth[v] = 0; // root: parent[source] == source
                    break;
                }
                chain.push(v);
                v = p;
            }
            let mut d = depth[v];
            while let Some(u) = chain.pop() {
                d += 1;
                depth[u] = d;
            }
        }
        depth
    }

    /// Canonicalizes component labels: every vertex gets the minimum
    /// vertex id of its component, regardless of which representative
    /// the union-find races elected.
    pub fn cc_labels(labels: &[NodeId]) -> Vec<NodeId> {
        let n = labels.len();
        let mut min_of = vec![NodeId::MAX; n];
        for (v, &l) in labels.iter().enumerate() {
            let slot = &mut min_of[l as usize];
            *slot = (*slot).min(v as NodeId);
        }
        labels.iter().map(|&l| min_of[l as usize]).collect()
    }

    /// Fingerprint of a canonical BFS depth array.
    pub fn fingerprint_depths(depths: &[u32]) -> u64 {
        let mut h = Fnv1a::new();
        for &d in depths {
            h.write_u64(u64::from(d));
        }
        h.finish()
    }

    /// Fingerprint of an SSSP distance array (distances are the unique
    /// shortest-path values — deterministic for any schedule).
    pub fn fingerprint_distances(dist: &[Distance]) -> u64 {
        let mut h = Fnv1a::new();
        for &d in dist {
            h.write_u64(d as u64);
        }
        h.finish()
    }

    /// Fingerprint of canonical component labels.
    pub fn fingerprint_labels(labels: &[NodeId]) -> u64 {
        let mut h = Fnv1a::new();
        for &l in labels {
            h.write_u64(u64::from(l));
        }
        h.finish()
    }

    /// Fingerprint of a score vector, over exact f64 bit patterns.
    pub fn fingerprint_scores(scores: &[Score]) -> u64 {
        let mut h = Fnv1a::new();
        for &s in scores {
            h.write_u64(s.to_bits());
        }
        h.finish()
    }

    /// Fingerprint of a scalar count (TC).
    pub fn fingerprint_count(count: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(count);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapbs_graph::types::NO_PARENT;

    #[test]
    fn queries_parse_with_defaults() {
        let cmd = parse_request(r#"{"kernel":"bfs","graph":"kron","source":42}"#).unwrap();
        let Command::Query(q) = cmd else {
            panic!("expected query")
        };
        assert_eq!(q.kernel, Kernel::Bfs);
        assert_eq!(q.graph, GraphSpec::Kron);
        assert_eq!(q.framework, "GAP");
        assert_eq!(q.mode, Mode::Baseline);
        assert_eq!(q.source, Some(42));
        assert_eq!(q.k, DEFAULT_TOP_K);
        assert_eq!(q.deadline_ms, None);
        assert!(!q.trace);
    }

    #[test]
    fn trace_flag_parses_and_rides_the_response() {
        let Command::Query(q) =
            parse_request(r#"{"kernel":"bfs","graph":"kron","source":1,"trace":true}"#).unwrap()
        else {
            panic!("expected query")
        };
        assert!(q.trace);
        assert_eq!(
            parse_request(r#"{"kernel":"bfs","graph":"kron","source":1,"trace":"yes"}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        let events = Json::Arr(vec![Json::obj([(
            "ph".to_string(),
            Json::Str("X".to_string()),
        )])]);
        let line = success_line(None, &q, 2.0, Json::obj([]), 1, Some(events));
        let v = Json::parse(&line).unwrap();
        let Some(Json::Arr(trace)) = v.get("trace") else {
            panic!("trace array missing: {line}")
        };
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn full_query_round_trips_every_field() {
        let cmd = parse_request(
            r#"{"cmd":"query","id":7,"kernel":"sssp","graph":"road","source":1,"target":9,
                "framework":"graphblas","mode":"optimized","k":3,"deadline_ms":250}"#,
        )
        .unwrap();
        let Command::Query(q) = cmd else {
            panic!("expected query")
        };
        assert_eq!(q.id, Some(Json::Num(7.0)));
        assert_eq!(q.kernel, Kernel::Sssp);
        assert_eq!(q.framework, "SuiteSparse");
        assert_eq!(q.mode, Mode::Optimized);
        assert_eq!(q.target, Some(9));
        assert_eq!(q.k, 3);
        assert_eq!(q.deadline_ms, Some(250));
    }

    #[test]
    fn batch_requests_parse_and_validate() {
        let cmd = parse_request(r#"{"kernel":"bfs","graph":"kron","sources":[1,2,2,7]}"#).unwrap();
        let Command::Batch(b) = cmd else {
            panic!("expected batch, got {cmd:?}")
        };
        assert_eq!(b.sources, vec![1, 2, 2, 7]);
        assert_eq!(b.query.kernel, Kernel::Bfs);
        assert_eq!(b.query.source, None);
        // The explicit cmd form works too.
        assert!(matches!(
            parse_request(r#"{"cmd":"batch","kernel":"bfs","graph":"road","sources":[0]}"#),
            Ok(Command::Batch(_))
        ));
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(
            code(r#"{"kernel":"sssp","graph":"kron","sources":[1]}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","sources":[]}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","sources":7}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","source":1,"sources":[2]}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","sources":[1],"framework":"galois"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","sources":[5000000000]}"#),
            ErrorCode::BadSource
        );
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Command::Shutdown
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Command::Stats);
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Command::Ping);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("{nope"), ErrorCode::Malformed);
        assert_eq!(code("[1,2]"), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"graph":"kron"}"#), ErrorCode::BadRequest);
        assert_eq!(
            code(r#"{"kernel":"mst","graph":"kron"}"#),
            ErrorCode::UnknownKernel
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"orkut","source":0}"#),
            ErrorCode::UnknownGraph
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","source":0,"framework":"ligra"}"#),
            ErrorCode::UnknownFramework
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","source":-3}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"kernel":"bfs","graph":"kron","source":5000000000}"#),
            ErrorCode::BadSource
        );
        assert_eq!(code(r#"{"cmd":"reboot"}"#), ErrorCode::BadRequest);
    }

    #[test]
    fn response_lines_are_well_formed_json() {
        let Command::Query(q) =
            parse_request(r#"{"id":"a1","kernel":"tc","graph":"urand"}"#).unwrap()
        else {
            panic!("expected query")
        };
        let line = success_line(
            q.id.as_ref(),
            &q,
            1.25,
            Json::obj([("triangles".to_string(), Json::Num(3.0))]),
            0xabcd,
            None,
        );
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a1"));
        assert_eq!(
            v.get("fingerprint").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("triangles"))
                .and_then(Json::as_u64),
            Some(3)
        );

        let err = error_line(None, &ProtoError::new(ErrorCode::Rejected, "queue full"));
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("rejected"));
    }

    #[test]
    fn bfs_depths_are_parent_choice_invariant() {
        // A diamond: 0->1, 0->2, 1->3, 2->3. Vertex 3's parent can be 1
        // or 2 depending on the race; its depth is 2 either way.
        let with_parent_1 = [0, 0, 0, 1, NO_PARENT];
        let with_parent_2 = [0, 0, 0, 2, NO_PARENT];
        let a = canonical::bfs_depths(&with_parent_1);
        let b = canonical::bfs_depths(&with_parent_2);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 1, 2, canonical::UNREACHED]);
        assert_eq!(
            canonical::fingerprint_depths(&a),
            canonical::fingerprint_depths(&b)
        );
    }

    #[test]
    fn cc_labels_are_representative_invariant() {
        // Two components {0,1,2} and {3,4}; different elected reps.
        let by_rep_0 = [0, 0, 0, 4, 4];
        let by_rep_2 = [2, 2, 2, 3, 3];
        let a = canonical::cc_labels(&by_rep_0);
        let b = canonical::cc_labels(&by_rep_2);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
