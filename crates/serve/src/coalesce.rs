//! Transparent batching of concurrent single-source BFS queries.
//!
//! A resident daemon sees many users' traversal queries against the same
//! graph; running them one at a time sweeps the identical adjacency once
//! per source. The [`Coalescer`] is an admission-window collector: the
//! first eligible query to arrive for a graph becomes the batch *leader*,
//! holds the window open for a configurable few milliseconds, then runs
//! one multi-source BFS ([`gapbs_ref::ms_bfs`]) over every source that
//! joined. *Followers* park on the batch and wake with their own depth
//! column.
//!
//! Coalescing is invisible on the wire: each member still gets one
//! response line with the same result fields and the same canonical
//! fingerprint a solo run produces, because fingerprints hash canonical
//! depth arrays and MS-BFS depths are bit-identical to single-source
//! depths (a pure function of graph and source). What changes is the
//! aggregate cost — one sweep per level for the whole batch — and the
//! `batch_queries` / `batch_width` lifecycle counters.
//!
//! Synchronization: the pending-batch map and each batch's member state
//! are mutex-protected, always locked map-then-batch. The leader removes
//! the batch from the map *before* closing it, so a query can never join
//! a batch whose source list has already been read. Members hold their
//! own admission permits while parked, so a batch is never wider than
//! the gate's `max_active`.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gapbs_graph::gen::GraphSpec;
use gapbs_graph::types::NodeId;

use crate::protocol::ProtoError;

/// Per-source output of a coalesced batch: the canonical depth array the
/// response fields and fingerprint derive from.
pub type MemberDepths = Arc<Vec<u32>>;

#[derive(Debug, Default)]
struct BatchState {
    /// Source per member, in join order (member index = position).
    sources: Vec<NodeId>,
    /// Set when the leader has read the source list; no more joins.
    closed: bool,
    /// Depth column per member, published by the leader.
    output: Option<Result<Vec<MemberDepths>, ProtoError>>,
}

/// One pending or executing batch; members rendezvous here.
#[derive(Debug, Default)]
pub struct PendingBatch {
    state: Mutex<BatchState>,
    cond: Condvar,
}

impl PendingBatch {
    /// Leader: hands every parked member its result (or the shared
    /// error) and wakes them.
    pub fn publish(&self, output: Result<Vec<MemberDepths>, ProtoError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.output = Some(output);
        self.cond.notify_all();
    }

    /// Follower: parks until the leader publishes, then returns this
    /// member's depth column.
    pub fn wait(&self, member: usize) -> Result<MemberDepths, ProtoError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(output) = &state.output {
                return match output {
                    Ok(columns) => Ok(Arc::clone(&columns[member])),
                    Err(err) => Err(err.clone()),
                };
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// How a query entered a batch.
pub enum Joined {
    /// First member: owns the window and the MS-BFS execution.
    Leader(Arc<PendingBatch>),
    /// Subsequent member at the given index; waits for the leader.
    Follower(Arc<PendingBatch>, usize),
}

/// The admission-window collector; see the module docs.
#[derive(Debug)]
pub struct Coalescer {
    window: Duration,
    pending: Mutex<HashMap<GraphSpec, Arc<PendingBatch>>>,
}

impl Coalescer {
    /// Collector holding each batch's window open for `window`.
    pub fn new(window: Duration) -> Coalescer {
        Coalescer {
            window,
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// How long a leader holds the window open.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Joins (or opens) the pending batch for `graph`. The caller must
    /// have validated `source` against the graph's vertex range.
    pub fn join(&self, graph: GraphSpec, source: NodeId) -> Joined {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(batch) = pending.get(&graph) {
            let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            if !state.closed {
                state.sources.push(source);
                let member = state.sources.len() - 1;
                drop(state);
                return Joined::Follower(Arc::clone(batch), member);
            }
        }
        let batch = Arc::new(PendingBatch::default());
        batch
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sources
            .push(source);
        pending.insert(graph, Arc::clone(&batch));
        Joined::Leader(batch)
    }

    /// Leader, after the window: unregisters the batch and returns its
    /// member sources (index = member). No query can join past this.
    pub fn close(&self, graph: GraphSpec, batch: &Arc<PendingBatch>) -> Vec<NodeId> {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending
            .get(&graph)
            .is_some_and(|current| Arc::ptr_eq(current, batch))
        {
            pending.remove(&graph);
        }
        let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        state.sources.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn members_accumulate_until_close_then_a_new_batch_opens() {
        let c = Coalescer::new(Duration::from_millis(5));
        let Joined::Leader(batch) = c.join(GraphSpec::Kron, 3) else {
            panic!("first join leads");
        };
        let Joined::Follower(_, member) = c.join(GraphSpec::Kron, 9) else {
            panic!("second join follows");
        };
        assert_eq!(member, 1);
        // A different graph opens its own batch.
        assert!(matches!(c.join(GraphSpec::Road, 0), Joined::Leader(_)));
        let sources = c.close(GraphSpec::Kron, &batch);
        assert_eq!(sources, vec![3, 9]);
        // Post-close arrivals lead a fresh batch.
        assert!(matches!(c.join(GraphSpec::Kron, 4), Joined::Leader(_)));
    }

    #[test]
    fn followers_wake_with_their_own_column() {
        let c = Coalescer::new(Duration::from_millis(5));
        let Joined::Leader(batch) = c.join(GraphSpec::Kron, 1) else {
            panic!("leader");
        };
        let Joined::Follower(handle, member) = c.join(GraphSpec::Kron, 2) else {
            panic!("follower");
        };
        let waiter = std::thread::spawn(move || handle.wait(member));
        let sources = c.close(GraphSpec::Kron, &batch);
        let columns: Vec<MemberDepths> = sources
            .iter()
            .map(|&s| Arc::new(vec![u32::from(s)]))
            .collect();
        batch.publish(Ok(columns));
        assert_eq!(*waiter.join().unwrap().unwrap(), vec![2]);
    }

    #[test]
    fn leader_errors_propagate_to_followers() {
        let c = Coalescer::new(Duration::ZERO);
        let Joined::Leader(batch) = c.join(GraphSpec::Kron, 1) else {
            panic!("leader");
        };
        let Joined::Follower(handle, member) = c.join(GraphSpec::Kron, 2) else {
            panic!("follower");
        };
        c.close(GraphSpec::Kron, &batch);
        batch.publish(Err(ProtoError::new(ErrorCode::Internal, "boom")));
        assert_eq!(handle.wait(member).unwrap_err().code, ErrorCode::Internal);
    }
}
