//! `gapbs-serve`: graph analytics as a service on the persistent pool.
//!
//! The paper's harness is batch-shaped: build a graph, time 16 trials,
//! print a table. This crate turns the same machinery into a resident
//! daemon — the deployment shape where framework overheads the paper
//! measures per-trial (graph construction, kernel preparation) are paid
//! once and amortized over a query stream:
//!
//! * [`registry`] — the corpus, generated once at startup and shared
//!   immutably (`Arc<BenchGraph>`) by every handler thread;
//! * [`protocol`] — line-delimited JSON requests/responses with stable
//!   error codes and canonical-form response fingerprints;
//! * [`admission`] — a bounded concurrency gate with deadline-aware
//!   queueing, so overload degrades into fast rejections instead of
//!   unbounded queueing inside the pool;
//! * [`coalesce`] — an admission-window collector that transparently
//!   merges concurrent same-graph single-source BFS queries into one
//!   multi-source (MS-BFS) execution, with per-source fan-out and
//!   unchanged canonical fingerprints;
//! * [`engine`] — per-query lifecycle: admit, execute on the shared
//!   [`ThreadPool`], deadline-check, account one ledger record;
//! * [`metrics`] — the live metrics plane: per-{kernel, graph,
//!   framework} latency histograms, queue/RSS gauges, and pool rates,
//!   scraped via `{"cmd":"stats"}` and the `--metrics-addr` listener's
//!   Prometheus `/metrics` + `/health`/`/ready` probes
//!   (`docs/OPERATIONS.md`);
//! * [`server`] — the TCP accept loop, per-connection handler threads,
//!   and the graceful drain sequence (SIGINT or `{"cmd":"shutdown"}`);
//! * [`bench`] — the `serve_bench` closed-loop load generator with
//!   latency percentiles, a `--min-qps` CI gate, and a `--check` mode
//!   that asserts response fingerprints are bit-identical to local
//!   batch-mode runs.
//!
//! Concurrency model: handler threads are plain OS threads; kernel
//! parallelism comes from the one shared [`ThreadPool`], whose regions
//! serialize on its leader lock. The admission gate bounds how many
//! queries contend for that lock, which keeps tail latency legible:
//! `max_active` × per-kernel runtime is the worst-case queueing delay a
//! query sees once admitted.
//!
//! [`ThreadPool`]: gapbs_parallel::ThreadPool

pub mod admission;
pub mod bench;
pub mod coalesce;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod signal;

pub use admission::{AdmissionGate, AdmitError, GateObservation, GateSnapshot, Permit};
pub use bench::{bench_main, run_bench, BenchConfig, BenchSummary};
pub use coalesce::Coalescer;
pub use engine::{execute_query, run_query_local, Engine, EngineConfig, QueryOutcome};
pub use metrics::ServeMetrics;
pub use protocol::{parse_request, BatchQuery, Command, ErrorCode, ProtoError, Query};
pub use registry::{GraphRegistry, LoadRecord, RegistryOptions};
pub use server::{serve_main, ServeConfig, ServeSummary, Server};
