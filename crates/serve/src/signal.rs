//! Dependency-free SIGINT/SIGTERM notification.
//!
//! The repo's no-external-crates rule leaves `libc`'s `signal(2)` binding
//! to a two-line `extern "C"` declaration. The handler does the only
//! thing that is async-signal-safe here: store into a static
//! `AtomicBool`. The server's accept loop polls [`shutdown_requested`]
//! between accepts and starts its drain sequence when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once a registered signal has been delivered (or
/// [`request_shutdown`] was called in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Flips the shutdown flag from inside the process (the
/// `{"cmd":"shutdown"}` path, and tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM to the shutdown flag.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off-unix; `{"cmd":"shutdown"}` still works.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_request_flips_the_flag() {
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
