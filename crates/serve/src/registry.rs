//! The resident graph registry.
//!
//! The daemon's core premise — and the reason a serving layer makes
//! sense on top of a benchmark harness — is that graph construction
//! dominates single-query latency. The registry pays that cost once at
//! startup: every corpus member is generated and prepared on the
//! persistent pool, wrapped in an [`Arc`], and served immutably for the
//! daemon's lifetime. Handlers clone `Arc`s, never graphs.

use std::sync::Arc;
use std::time::Instant;

use gapbs_core::framework::{BenchGraph, Framework};
use gapbs_core::registry::all_frameworks;
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_parallel::ThreadPool;

/// Immutable corpus + framework registry shared by every handler thread.
pub struct GraphRegistry {
    scale: Scale,
    graphs: Vec<(GraphSpec, Arc<BenchGraph>)>,
    frameworks: Vec<Box<dyn Framework>>,
}

impl GraphRegistry {
    /// Generates and prepares `specs` at `scale` on `pool`, logging one
    /// line per graph to stderr (the daemon's operator channel).
    pub fn load(scale: Scale, specs: &[GraphSpec], pool: &ThreadPool) -> GraphRegistry {
        let graphs = specs
            .iter()
            .map(|&spec| {
                let start = Instant::now();
                let bg = BenchGraph::generate_in(spec, scale, pool);
                eprintln!(
                    "serve: loaded {} ({} vertices, {} edges) in {:.2}s",
                    spec.name(),
                    bg.graph.num_vertices(),
                    bg.graph.num_edges(),
                    start.elapsed().as_secs_f64()
                );
                (spec, Arc::new(bg))
            })
            .collect();
        GraphRegistry {
            scale,
            graphs,
            frameworks: all_frameworks(),
        }
    }

    /// Loads the full five-graph corpus.
    pub fn load_corpus(scale: Scale, pool: &ThreadPool) -> GraphRegistry {
        Self::load(scale, &GraphSpec::TABLE_ORDER, pool)
    }

    /// The scale every resident graph was generated at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Looks up a resident graph. `None` means the graph exists in the
    /// corpus vocabulary but was not loaded into this daemon.
    pub fn get(&self, spec: GraphSpec) -> Option<&Arc<BenchGraph>> {
        self.graphs
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, bg)| bg)
    }

    /// Looks up a framework by display name.
    pub fn framework(&self, name: &str) -> Option<&dyn Framework> {
        self.frameworks
            .iter()
            .find(|f| f.name() == name)
            .map(|f| f.as_ref())
    }

    /// The resident graphs, in load order.
    pub fn graphs(&self) -> impl Iterator<Item = (GraphSpec, &Arc<BenchGraph>)> {
        self.graphs.iter().map(|(s, bg)| (*s, bg))
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("scale", &self.scale)
            .field("graphs", &self.graphs.iter().map(|(s, _)| s).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_requested_graphs_and_resolves_frameworks() {
        let pool = ThreadPool::new(2);
        let reg = GraphRegistry::load(Scale::Tiny, &[GraphSpec::Kron, GraphSpec::Road], &pool);
        assert!(reg.get(GraphSpec::Kron).is_some());
        assert!(reg.get(GraphSpec::Road).is_some());
        assert!(reg.get(GraphSpec::Web).is_none(), "web was not loaded");
        assert!(reg.framework("GAP").is_some());
        assert!(reg.framework("SuiteSparse").is_some());
        assert!(reg.framework("Ligra").is_none());
        assert_eq!(reg.graphs().count(), 2);
    }
}
