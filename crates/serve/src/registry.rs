//! The resident graph registry.
//!
//! The daemon's core premise — and the reason a serving layer makes
//! sense on top of a benchmark harness — is that graph construction
//! dominates single-query latency. The registry pays that cost once at
//! startup: every corpus member is generated and prepared on the
//! persistent pool, wrapped in an [`Arc`], and served immutably for the
//! daemon's lifetime. Handlers clone `Arc`s, never graphs.
//!
//! With a snapshot directory ([`RegistryOptions::snapshot_dir`], the
//! `--snapshot-dir` flag), "pays that cost once" becomes literal across
//! *processes*: the first daemon builds and snapshots each graph, every
//! later one mmaps the finished CSR arrays in milliseconds. The
//! registry records per-graph cache outcomes and the total time to
//! ready so the metrics plane can expose cold-start behaviour.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gapbs_core::framework::{BenchGraph, Framework};
use gapbs_core::registry::all_frameworks;
use gapbs_core::CacheOutcome;
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_parallel::ThreadPool;

/// How the registry sources its graphs at startup.
#[derive(Debug, Clone, Default)]
pub struct RegistryOptions {
    /// Snapshot cache directory. `None` regenerates every graph from
    /// the seeded generators (the prepared inputs are identical either
    /// way; only load time differs).
    pub snapshot_dir: Option<PathBuf>,
    /// Run the full O(V+E) structural validation on snapshot loads
    /// instead of the default checksum-only verification.
    pub paranoid: bool,
}

/// One graph's startup accounting: how it was sourced and how long the
/// load took (generation+preparation on a miss, mmap+decode on a hit).
#[derive(Debug, Clone, Copy)]
pub struct LoadRecord {
    /// Which graph.
    pub spec: GraphSpec,
    /// Snapshot cache hit or rebuild. Without a snapshot directory
    /// every load is a [`CacheOutcome::Miss`] — it rebuilt from source.
    pub outcome: CacheOutcome,
    /// Wall-clock seconds for this graph's load.
    pub seconds: f64,
}

/// Immutable corpus + framework registry shared by every handler thread.
pub struct GraphRegistry {
    scale: Scale,
    graphs: Vec<(GraphSpec, Arc<BenchGraph>)>,
    frameworks: Vec<Box<dyn Framework>>,
    loads: Vec<LoadRecord>,
    time_to_ready_seconds: f64,
}

impl GraphRegistry {
    /// Generates and prepares `specs` at `scale` on `pool`, logging one
    /// line per graph to stderr (the daemon's operator channel).
    pub fn load(scale: Scale, specs: &[GraphSpec], pool: &ThreadPool) -> GraphRegistry {
        Self::load_with(scale, specs, pool, &RegistryOptions::default())
    }

    /// [`GraphRegistry::load`] with explicit sourcing options: when
    /// `opts.snapshot_dir` is set, each graph mmaps its cached snapshot
    /// if present (building and writing it on first use).
    pub fn load_with(
        scale: Scale,
        specs: &[GraphSpec],
        pool: &ThreadPool,
        opts: &RegistryOptions,
    ) -> GraphRegistry {
        let started = Instant::now();
        let mut loads = Vec::with_capacity(specs.len());
        let graphs = specs
            .iter()
            .map(|&spec| {
                let start = Instant::now();
                let (bg, outcome) = match &opts.snapshot_dir {
                    Some(dir) => BenchGraph::load_cached_in(spec, scale, dir, pool, opts.paranoid),
                    None => (
                        BenchGraph::generate_in(spec, scale, pool),
                        CacheOutcome::Miss,
                    ),
                };
                let seconds = start.elapsed().as_secs_f64();
                let source = match (opts.snapshot_dir.is_some(), outcome) {
                    (true, CacheOutcome::Hit) => "snapshot",
                    (true, CacheOutcome::Miss) => "built, snapshot written",
                    (false, _) => "built",
                };
                eprintln!(
                    "serve: loaded {} ({} vertices, {} edges) in {seconds:.2}s [{source}]",
                    spec.name(),
                    bg.graph.num_vertices(),
                    bg.graph.num_edges(),
                );
                loads.push(LoadRecord {
                    spec,
                    outcome,
                    seconds,
                });
                (spec, Arc::new(bg))
            })
            .collect();
        GraphRegistry {
            scale,
            graphs,
            frameworks: all_frameworks(),
            loads,
            time_to_ready_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Loads the full five-graph corpus.
    pub fn load_corpus(scale: Scale, pool: &ThreadPool) -> GraphRegistry {
        Self::load(scale, &GraphSpec::TABLE_ORDER, pool)
    }

    /// The scale every resident graph was generated at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Wall-clock seconds from load start until every graph was
    /// resident — the daemon's cold-start cost, exposed as the
    /// `time_to_ready_seconds` gauge.
    pub fn time_to_ready_seconds(&self) -> f64 {
        self.time_to_ready_seconds
    }

    /// Per-graph startup accounting, in load order.
    pub fn load_records(&self) -> &[LoadRecord] {
        &self.loads
    }

    /// Looks up a resident graph. `None` means the graph exists in the
    /// corpus vocabulary but was not loaded into this daemon.
    pub fn get(&self, spec: GraphSpec) -> Option<&Arc<BenchGraph>> {
        self.graphs
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, bg)| bg)
    }

    /// Looks up a framework by display name.
    pub fn framework(&self, name: &str) -> Option<&dyn Framework> {
        self.frameworks
            .iter()
            .find(|f| f.name() == name)
            .map(|f| f.as_ref())
    }

    /// The resident graphs, in load order.
    pub fn graphs(&self) -> impl Iterator<Item = (GraphSpec, &Arc<BenchGraph>)> {
        self.graphs.iter().map(|(s, bg)| (*s, bg))
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("scale", &self.scale)
            .field(
                "graphs",
                &self.graphs.iter().map(|(s, _)| s).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_requested_graphs_and_resolves_frameworks() {
        let pool = ThreadPool::new(2);
        let reg = GraphRegistry::load(Scale::Tiny, &[GraphSpec::Kron, GraphSpec::Road], &pool);
        assert!(reg.get(GraphSpec::Kron).is_some());
        assert!(reg.get(GraphSpec::Road).is_some());
        assert!(reg.get(GraphSpec::Web).is_none(), "web was not loaded");
        assert!(reg.framework("GAP").is_some());
        assert!(reg.framework("SuiteSparse").is_some());
        assert!(reg.framework("Ligra").is_none());
        assert_eq!(reg.graphs().count(), 2);
        // Without a snapshot dir every load is a rebuild.
        assert!(reg
            .load_records()
            .iter()
            .all(|r| r.outcome == CacheOutcome::Miss));
        assert!(reg.time_to_ready_seconds() > 0.0);
    }

    #[test]
    fn snapshot_dir_misses_then_hits_with_identical_graphs() {
        let dir = std::env::temp_dir().join(format!("gapbs-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create snapshot dir");
        let pool = ThreadPool::new(2);
        let opts = RegistryOptions {
            snapshot_dir: Some(dir.clone()),
            paranoid: false,
        };
        let cold = GraphRegistry::load_with(Scale::Tiny, &[GraphSpec::Kron], &pool, &opts);
        assert_eq!(cold.load_records()[0].outcome, CacheOutcome::Miss);
        let warm = GraphRegistry::load_with(Scale::Tiny, &[GraphSpec::Kron], &pool, &opts);
        assert_eq!(warm.load_records()[0].outcome, CacheOutcome::Hit);
        let a = cold.get(GraphSpec::Kron).expect("cold graph");
        let b = warm.get(GraphSpec::Kron).expect("warm graph");
        assert_eq!(a.graph, b.graph, "snapshot load must be bit-identical");
        assert_eq!(a.source_candidates, b.source_candidates);
        std::fs::remove_dir_all(&dir).ok();
    }
}
