//! The TCP server: accept loop, per-connection handlers, drain sequence.
//!
//! One OS thread per connection, reading line-delimited requests and
//! writing one response line each, in order. All cross-connection
//! concurrency control lives in the engine's admission gate, so handler
//! threads stay trivially simple.
//!
//! # Shutdown
//!
//! SIGINT/SIGTERM (when enabled) and `{"cmd":"shutdown"}` both set a stop
//! flag. The accept loop then:
//!
//! 1. stops accepting connections;
//! 2. drains the admission gate — queued waiters fail fast with
//!    `shutting_down`, in-flight queries run to completion and their
//!    responses are written;
//! 3. half-closes every connection's *read* side, which unblocks idle
//!    `read_line` calls with EOF while leaving the write side usable;
//! 4. joins every handler thread, flushes the query ledger, exits.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_parallel::ThreadPool;
use gapbs_telemetry::json::Json;
use gapbs_telemetry::LedgerSink;

use crate::admission::GateSnapshot;
use crate::engine::{Engine, EngineConfig};
use crate::protocol::{error_line, parse_request, Command};
use crate::registry::{GraphRegistry, RegistryOptions};
use crate::signal;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// If set, the bound port is written here (harness handshake).
    pub port_file: Option<PathBuf>,
    /// If set, a second HTTP listener binds here serving `/metrics`
    /// (Prometheus text exposition), `/stats` (the JSON snapshot),
    /// `/health`, and `/ready` (`docs/OPERATIONS.md`).
    pub metrics_addr: Option<String>,
    /// If set, the metrics listener's bound port is written here.
    pub metrics_port_file: Option<PathBuf>,
    /// Corpus scale to load.
    pub scale: Scale,
    /// Which corpus members to load.
    pub graphs: Vec<GraphSpec>,
    /// Pool worker threads.
    pub threads: usize,
    /// Admission and deadline parameters.
    pub engine: EngineConfig,
    /// If set, one ledger record is appended per executed query.
    pub ledger_path: Option<PathBuf>,
    /// Route SIGINT/SIGTERM to graceful shutdown (off in tests).
    pub handle_signals: bool,
    /// Snapshot cache directory (`--snapshot-dir`): cold-start by
    /// mmapping cached snapshot files, writing them on first use.
    pub snapshot_dir: Option<PathBuf>,
    /// Full O(V+E) validation of snapshot loads (`--paranoid`) instead
    /// of the default checksum-only verification.
    pub paranoid: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7447".to_string(),
            port_file: None,
            metrics_addr: None,
            metrics_port_file: None,
            scale: Scale::Small,
            graphs: GraphSpec::TABLE_ORDER.to_vec(),
            threads: gapbs_parallel::pool::default_threads(),
            engine: EngineConfig::default(),
            ledger_path: None,
            handle_signals: false,
            snapshot_dir: None,
            paranoid: false,
        }
    }
}

/// What a completed daemon run did, for the operator log and tests.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Address the daemon actually listened on.
    pub addr: SocketAddr,
    /// Final cumulative gate statistics.
    pub queries: GateSnapshot,
    /// Ledger records appended (0 without a ledger).
    pub ledger_records: u64,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    handle_signals: bool,
}

impl Server {
    /// Loads the corpus, builds the engine, and binds the listener.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let pool = ThreadPool::new(config.threads.max(1));
        let opts = RegistryOptions {
            snapshot_dir: config.snapshot_dir.clone(),
            paranoid: config.paranoid,
        };
        let registry = Arc::new(GraphRegistry::load_with(
            config.scale,
            &config.graphs,
            &pool,
            &opts,
        ));
        Self::bind_with_registry(config, registry, pool)
    }

    /// [`Server::bind`] over an already-loaded registry (tests share one
    /// corpus across servers). `pool` is the execution pool.
    pub fn bind_with_registry(
        config: &ServeConfig,
        registry: Arc<GraphRegistry>,
        pool: ThreadPool,
    ) -> std::io::Result<Server> {
        let ledger = match &config.ledger_path {
            Some(path) => Some(LedgerSink::open(path)?),
            None => None,
        };
        let engine = Arc::new(Engine::new(registry, pool, config.engine.clone(), ledger));
        let listener = TcpListener::bind(&config.addr)?;
        let write_port = |file: &PathBuf, port: u16| -> std::io::Result<()> {
            if let Some(parent) = file.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(file, format!("{port}\n"))
        };
        if let Some(port_file) = &config.port_file {
            write_port(port_file, listener.local_addr()?.port())?;
        }
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                if let Some(port_file) = &config.metrics_port_file {
                    write_port(port_file, l.local_addr()?.port())?;
                }
                Some(l)
            }
            None => None,
        };
        if config.handle_signals {
            signal::install();
        }
        Ok(Server {
            listener,
            metrics_listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            handle_signals: config.handle_signals,
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The metrics listener's bound address, when one is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The engine (tests inspect gate stats through it).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// A handle that stops this server from another thread.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || (self.handle_signals && signal::shutdown_requested())
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(mut self) -> std::io::Result<ServeSummary> {
        let addr = self.listener.local_addr()?;
        eprintln!("serve: listening on {addr}");
        self.listener.set_nonblocking(true)?;
        // The metrics listener outlives the accept loop on purpose: it
        // keeps answering scrapes and probes (with `/ready` = 503)
        // through the drain window, and stops only on its own flag once
        // every handler has been joined.
        let metrics_stop = Arc::new(AtomicBool::new(false));
        let metrics_thread = self.metrics_listener.take().map(|listener| {
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&metrics_stop);
            if let Ok(maddr) = listener.local_addr() {
                eprintln!("serve: metrics on http://{maddr}/metrics");
            }
            std::thread::spawn(move || metrics_http_loop(&listener, &engine, &stop))
        });
        let connections: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handlers = Vec::new();
        while !self.should_stop() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    // Line-delimited request/response: without nodelay,
                    // Nagle + delayed ACK adds ~40ms per small write and
                    // client-observed latency stops measuring the daemon.
                    let _ = stream.set_nodelay(true);
                    if let Ok(reader_half) = stream.try_clone() {
                        connections
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(reader_half);
                    }
                    let engine = Arc::clone(&self.engine);
                    let stop = Arc::clone(&self.stop);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &engine, &stop);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        eprintln!(
            "serve: draining {} active queries",
            self.engine.gate().active()
        );
        // In-flight queries finish and answer; queued waiters fail fast.
        self.engine.gate().drain();
        // Unblock idle readers with EOF; write halves stay open so any
        // response still being written goes out.
        for conn in connections.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for handle in handlers {
            let _ = handle.join();
        }
        metrics_stop.store(true, Ordering::SeqCst);
        if let Some(thread) = metrics_thread {
            let _ = thread.join();
        }
        self.engine.flush_ledger()?;
        let queries = self.engine.gate().snapshot();
        eprintln!(
            "serve: shut down cleanly ({} admitted, {} rejected, {} completed, {} past deadline)",
            queries.admitted, queries.rejected, queries.completed, queries.deadline_exceeded
        );
        let ledger_records = self
            .engine
            .stats_json()
            .get("ledger_records")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        Ok(ServeSummary {
            addr,
            queries,
            ledger_records,
        })
    }
}

/// Accept loop of the metrics/observability listener: a dependency-free
/// HTTP/1.0 responder. Requests are served inline (scrapes are cheap and
/// infrequent) and every response closes the connection.
fn metrics_http_loop(listener: &TcpListener, engine: &Engine, stop: &AtomicBool) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = serve_http_request(stream, engine);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answers one HTTP GET on the metrics listener.
///
/// Routes: `/metrics` (Prometheus text exposition 0.0.4), `/stats` (the
/// same JSON snapshot as `{"cmd":"stats"}`), `/health` (liveness: 200
/// while the process runs), `/ready` (readiness: 503 once draining).
fn serve_http_request(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers to the blank line so the client sees a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                engine.prometheus_text(),
            ),
            "/stats" => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", engine.stats_json().encode()),
            ),
            "/health" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/ready" => {
                if engine.gate().draining() {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "draining\n".to_string(),
                    )
                } else {
                    ("200 OK", "text/plain; charset=utf-8", "ready\n".to_string())
                }
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    writer.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF (client closed, or drain half-closed us)
            Ok(_) => {}
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match parse_request(trimmed) {
            Err(err) => error_line(None, &err),
            Ok(Command::Query(query)) => engine.handle(&query),
            Ok(Command::Batch(batch)) => engine.handle_batch(&batch),
            Ok(Command::Stats) => engine.stats_json().encode(),
            Ok(Command::Ping) => Json::obj([
                ("ok".to_string(), Json::Bool(true)),
                ("pong".to_string(), Json::Bool(true)),
            ])
            .encode(),
            Ok(Command::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                Json::obj([
                    ("ok".to_string(), Json::Bool(true)),
                    ("shutting_down".to_string(), Json::Bool(true)),
                ])
                .encode()
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Parses a corpus scale name.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s.to_lowercase().as_str() {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "large" => Ok(Scale::Large),
        other => Err(format!(
            "unknown scale {other:?}; expected tiny|small|medium|large"
        )),
    }
}

/// Parses `--graphs web,kron,...` lists.
pub fn parse_graph_list(s: &str) -> Result<Vec<GraphSpec>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| crate::protocol::parse_graph(part).map_err(|e| e.message))
        .collect()
}

/// CLI entry point for the `serve` binary. Returns the exit code.
pub fn serve_main(args: impl Iterator<Item = String>) -> i32 {
    let mut config = ServeConfig {
        handle_signals: true,
        ..ServeConfig::default()
    };
    let mut args = args.peekable();
    let usage =
        "usage: serve [--addr HOST:PORT] [--port-file PATH] [--scale tiny|small|medium|large] \
                 [--graphs a,b,...] [--threads N] [--max-active N] [--max-waiting N] \
                 [--deadline-ms N] [--coalesce-ms N] [--slow-ms N] [--ledger PATH] \
                 [--metrics-addr HOST:PORT] [--metrics-port-file PATH] \
                 [--snapshot-dir DIR] [--paranoid]";
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parsed: Result<(), String> = match arg.as_str() {
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--port-file" => value("--port-file").map(|v| config.port_file = Some(v.into())),
            "--scale" => value("--scale")
                .and_then(|v| parse_scale(&v))
                .map(|s| config.scale = s),
            "--graphs" => value("--graphs")
                .and_then(|v| parse_graph_list(&v))
                .map(|g| config.graphs = g),
            "--threads" => value("--threads")
                .and_then(|v| gapbs_parallel::pool::parse_threads(&v))
                .map(|n| config.threads = n),
            "--max-active" => value("--max-active")
                .and_then(|v| v.parse().map_err(|_| "bad --max-active".to_string()))
                .map(|n| config.engine.max_active = n),
            "--max-waiting" => value("--max-waiting")
                .and_then(|v| v.parse().map_err(|_| "bad --max-waiting".to_string()))
                .map(|n| config.engine.max_waiting = n),
            "--deadline-ms" => value("--deadline-ms")
                .and_then(|v| v.parse().map_err(|_| "bad --deadline-ms".to_string()))
                .map(|n| config.engine.default_deadline_ms = Some(n)),
            "--coalesce-ms" => value("--coalesce-ms")
                .and_then(|v| v.parse().map_err(|_| "bad --coalesce-ms".to_string()))
                .map(|n| config.engine.coalesce_window_ms = n),
            "--slow-ms" => value("--slow-ms")
                .and_then(|v| v.parse().map_err(|_| "bad --slow-ms".to_string()))
                .map(|n| config.engine.slow_ms = Some(n)),
            "--metrics-addr" => value("--metrics-addr").map(|v| config.metrics_addr = Some(v)),
            "--metrics-port-file" => {
                value("--metrics-port-file").map(|v| config.metrics_port_file = Some(v.into()))
            }
            "--ledger" => value("--ledger").map(|v| config.ledger_path = Some(v.into())),
            "--snapshot-dir" => {
                value("--snapshot-dir").map(|v| config.snapshot_dir = Some(v.into()))
            }
            "--paranoid" => {
                config.paranoid = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{usage}");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}\n{usage}")),
        };
        if let Err(e) = parsed {
            eprintln!("serve: {e}");
            return 2;
        }
    }
    let server = match Server::bind(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: bind {}: {e}", config.addr);
            return 1;
        }
    };
    match server.run() {
        Ok(_summary) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_graph_lists_parse() {
        assert_eq!(parse_scale("TINY").unwrap(), Scale::Tiny);
        assert!(parse_scale("huge").is_err());
        assert_eq!(
            parse_graph_list("kron, road").unwrap(),
            vec![GraphSpec::Kron, GraphSpec::Road]
        );
        assert!(parse_graph_list("kron,orkut").is_err());
    }
}
