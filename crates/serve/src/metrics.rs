//! The daemon's live metrics plane.
//!
//! [`ServeMetrics`] owns one [`MetricsRegistry`] holding everything the
//! daemon exposes beyond the admission gate's own lifecycle counters:
//! per-{kernel, graph, framework} latency histograms, queue-wait and
//! coalescing batch-width histograms, slow-query and traced-query
//! counters, and pool/RSS instruments that are synchronized at scrape
//! time rather than on the query path.
//!
//! [`ServeMetrics::snapshot`] stitches the two sources together: it
//! takes a [`GateObservation`] (stats + gauges + the end-to-end latency
//! histogram, all coherent under the gate's lock — see
//! `admission`'s module docs) and prepends those as synthetic entries
//! ahead of the registry's own, so one snapshot renders to both the
//! `{"cmd":"stats"}` JSON and the Prometheus exposition with the
//! gate-derived series guaranteed internally consistent.

use std::collections::BTreeMap;
use std::sync::Mutex;

use gapbs_parallel::PoolStats;
use gapbs_telemetry::metrics::{
    CounterHandle, FloatGaugeHandle, GaugeHandle, HistogramHandle, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};

use crate::admission::GateObservation;

/// The Prometheus metric-name prefix for every exposed series.
pub const PROM_PREFIX: &str = "gapbs_serve_";

/// All serve-side instruments; see the module docs.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    /// Lazily registered per-{kernel, graph, framework} latency
    /// histograms (µs). Lazy because 6×5×6 combinations exist but a
    /// given daemon serves a handful; the lock is off the kernel's hot
    /// loop (once per query, microseconds next to a millisecond kernel).
    latency_by_label: Mutex<BTreeMap<(String, String, String), HistogramHandle>>,
    /// Time from request receipt to permit grant (µs), all queries.
    queue_wait_us: HistogramHandle,
    /// Members per executed MS-BFS batch (explicit or coalesced).
    batch_width: HistogramHandle,
    /// Queries past the `--slow-ms` threshold (0 when unset).
    slow_queries: CounterHandle,
    /// Queries served with an inline `"trace": true` capture.
    traced_queries: CounterHandle,
    /// Pool lifetime counters, mirrored from [`PoolStats`] at scrape
    /// time (see [`sync_pool`](Self::snapshot)).
    pool_regions: CounterHandle,
    pool_steals: CounterHandle,
    pool_parks: CounterHandle,
    /// Resident set size, refreshed from `/proc/self/status` per scrape.
    rss_bytes: GaugeHandle,
    /// Wall-clock seconds from load start until every graph was
    /// resident — the daemon's cold-start cost, set once at startup.
    time_to_ready_seconds: FloatGaugeHandle,
    /// Per-graph snapshot-cache outcome counters, registered at load
    /// time: each resident graph gets a `snapshot_hit{graph=...}` and a
    /// `snapshot_miss{graph=...}` pair summing to exactly 1 (loads
    /// without a snapshot dir count as misses — they rebuilt).
    snapshot_loads: Mutex<BTreeMap<String, (CounterHandle, CounterHandle)>>,
    /// Per-graph resident CSR bytes, registered lazily by graph name.
    /// Fixed at load time (the registry is immutable) but kept as a
    /// gauge so dashboards can plot layout-width savings across deploys.
    graph_bytes: Mutex<BTreeMap<String, GaugeHandle>>,
    /// Last pool stats folded into the mirrors, so concurrent scrapes
    /// can't double-add a delta.
    pool_seen: Mutex<PoolStats>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Registers every fixed instrument.
    pub fn new() -> ServeMetrics {
        let registry = MetricsRegistry::new();
        let queue_wait_us = registry.histogram(
            "queue_wait_us",
            "Microseconds from request receipt to admission-permit grant",
        );
        let batch_width = registry.histogram(
            "batch_width",
            "Logical queries answered per executed MS-BFS batch",
        );
        let slow_queries = registry.counter(
            "slow_queries_total",
            "Queries whose end-to-end latency exceeded the --slow-ms threshold",
        );
        let traced_queries = registry.counter(
            "traced_queries_total",
            "Queries served with an inline trace capture",
        );
        let pool_regions = registry.counter(
            "pool_regions_total",
            "Parallel regions launched on the shared thread pool",
        );
        let pool_steals = registry.counter(
            "pool_steals_total",
            "Ranges stolen between pool workers by dynamic/guided loops",
        );
        let pool_parks = registry.counter(
            "pool_parks_total",
            "Times a pool worker parked on the region barrier",
        );
        let rss_bytes = registry.gauge(
            "rss_bytes",
            "Resident set size from /proc/self/status, sampled per scrape",
        );
        let time_to_ready_seconds = registry.float_gauge(
            "time_to_ready_seconds",
            "Wall-clock seconds from daemon start until every graph was resident",
        );
        ServeMetrics {
            registry,
            latency_by_label: Mutex::new(BTreeMap::new()),
            queue_wait_us,
            batch_width,
            slow_queries,
            traced_queries,
            pool_regions,
            pool_steals,
            pool_parks,
            rss_bytes,
            time_to_ready_seconds,
            snapshot_loads: Mutex::new(BTreeMap::new()),
            graph_bytes: Mutex::new(BTreeMap::new()),
            pool_seen: Mutex::new(PoolStats::default()),
        }
    }

    /// Sets the startup time-to-ready gauge (seconds until every graph
    /// was resident). Called once when the engine is built.
    pub fn set_time_to_ready(&self, seconds: f64) {
        self.time_to_ready_seconds.set(seconds);
    }

    /// Records how one resident graph was sourced at startup: a
    /// snapshot-cache hit bumps `snapshot_hit{graph=...}`, a rebuild
    /// bumps `snapshot_miss{graph=...}`. Both series are registered so
    /// every resident graph exposes the pair (one at 1, one at 0).
    pub fn note_snapshot_load(&self, graph: &str, hit: bool) {
        let mut map = self
            .snapshot_loads
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let (hits, misses) = map.entry(graph.to_string()).or_insert_with(|| {
            (
                self.registry.counter_with_labels(
                    "snapshot_hit",
                    &[("graph", graph)],
                    "Startup loads of this graph served from a snapshot file",
                ),
                self.registry.counter_with_labels(
                    "snapshot_miss",
                    &[("graph", graph)],
                    "Startup loads of this graph rebuilt from the generators",
                ),
            )
        });
        if hit {
            hits.add(1);
        } else {
            misses.add(1);
        }
    }

    /// Sets the resident-bytes gauge for one loaded graph (labelled
    /// `graph_bytes{graph="..."}` in the exposition).
    pub fn set_graph_bytes(&self, graph: &str, bytes: u64) {
        let mut map = self.graph_bytes.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(graph.to_string())
            .or_insert_with(|| {
                self.registry.gauge_with_labels(
                    "graph_bytes",
                    &[("graph", graph)],
                    "Resident CSR bytes of one loaded graph (all prepared structures)",
                )
            })
            .set(bytes as i64);
    }

    /// Records one completed query: its end-to-end latency into the
    /// {kernel, graph, framework} histogram and its queue wait into the
    /// global wait histogram.
    pub fn observe_query(
        &self,
        kernel: &str,
        graph: &str,
        framework: &str,
        latency_us: u64,
        queue_wait_us: u64,
    ) {
        self.latency_histogram(kernel, graph, framework)
            .record(latency_us);
        self.queue_wait_us.record(queue_wait_us);
    }

    /// The per-label latency histogram, registering it on first use.
    fn latency_histogram(&self, kernel: &str, graph: &str, framework: &str) -> HistogramHandle {
        let mut map = self
            .latency_by_label
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.entry((kernel.to_string(), graph.to_string(), framework.to_string()))
            .or_insert_with(|| {
                self.registry.histogram_with_labels(
                    "query_latency_us",
                    &[
                        ("kernel", kernel),
                        ("graph", graph),
                        ("framework", framework),
                    ],
                    "End-to-end query latency in microseconds",
                )
            })
            .clone()
    }

    /// Records the width of one executed MS-BFS batch.
    pub fn observe_batch_width(&self, members: u64) {
        self.batch_width.record(members);
    }

    /// Counts one slow query (already logged by the engine).
    pub fn note_slow(&self) {
        self.slow_queries.add(1);
    }

    /// Counts one inline-traced query.
    pub fn note_traced(&self) {
        self.traced_queries.add(1);
    }

    /// One point-in-time snapshot of everything the daemon exposes.
    ///
    /// The gate-derived series come verbatim from `gate` (one coherent
    /// observation; the caller takes it) and lead the entry list; the
    /// registry's instruments follow. Pool counters are brought current
    /// by folding in the delta versus the last scrape, and the RSS gauge
    /// is refreshed from procfs.
    pub fn snapshot(&self, gate: &GateObservation, pool: PoolStats) -> MetricsSnapshot {
        {
            let mut seen = self.pool_seen.lock().unwrap_or_else(|e| e.into_inner());
            let delta = pool.delta(&seen);
            self.pool_regions.add(delta.regions);
            self.pool_steals.add(delta.steals);
            self.pool_parks.add(delta.parks);
            *seen = pool;
        }
        if let Some(vm) = gapbs_telemetry::trace::read_vm_status() {
            self.rss_bytes.set(vm.vm_rss_bytes as i64);
        }
        let counter = |name: &str, help: &str, v: u64| {
            (
                name.to_string(),
                String::new(),
                help.to_string(),
                MetricValue::Counter(v),
            )
        };
        let gauge = |name: &str, help: &str, v: i64| {
            (
                name.to_string(),
                String::new(),
                help.to_string(),
                MetricValue::Gauge(v),
            )
        };
        let mut snapshot = MetricsSnapshot {
            metrics: vec![
                counter(
                    "queries_admitted_total",
                    "Queries granted an execution slot",
                    gate.stats.admitted,
                ),
                counter(
                    "queries_rejected_total",
                    "Queries refused at admission",
                    gate.stats.rejected,
                ),
                counter(
                    "queries_completed_total",
                    "Queries that released their slot",
                    gate.stats.completed,
                ),
                counter(
                    "deadline_exceeded_total",
                    "Queries that missed their deadline (queued or executed)",
                    gate.stats.deadline_exceeded,
                ),
                counter(
                    "batch_queries_total",
                    "Logical queries answered via MS-BFS batches",
                    gate.stats.batch_queries,
                ),
                gauge(
                    "batch_width_max",
                    "Widest batch executed so far",
                    gate.stats.batch_width as i64,
                ),
                gauge(
                    "active_queries",
                    "Admission permits currently held",
                    gate.active as i64,
                ),
                gauge(
                    "waiting_queries",
                    "Queries parked waiting for a slot",
                    gate.waiting as i64,
                ),
                gauge(
                    "queue_age_us",
                    "Age of the oldest parked waiter in microseconds",
                    gate.queue_age_us as i64,
                ),
                (
                    "latency_us".to_string(),
                    String::new(),
                    "End-to-end latency of every completed query in microseconds".to_string(),
                    MetricValue::Histogram(Box::new(gate.latency)),
                ),
            ],
        };
        snapshot.metrics.extend(self.registry.snapshot().metrics);
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionGate;
    use gapbs_telemetry::json::Json;

    fn observation(gate: &AdmissionGate) -> GateObservation {
        gate.observe()
    }

    #[test]
    fn snapshot_leads_with_coherent_gate_series() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(2, 4);
        let p = gate.admit(None).unwrap();
        p.set_latency_us(1234);
        drop(p);
        let _held = gate.admit(None).unwrap();
        metrics.observe_query("bfs", "kron", "GAP", 1234, 12);
        metrics.observe_batch_width(3);
        metrics.note_slow();

        let snap = metrics.snapshot(&observation(&gate), PoolStats::default());
        let json = snap.to_json();
        assert_eq!(
            json.get("queries_admitted_total").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            json.get("queries_completed_total").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("active_queries").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("latency_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1),
            "gate latency histogram count tracks completed"
        );
        let hist = json
            .get("query_latency_us{framework=\"GAP\",graph=\"kron\",kernel=\"bfs\"}")
            .or_else(|| {
                json.get("query_latency_us{kernel=\"bfs\",graph=\"kron\",framework=\"GAP\"}")
            })
            .expect("labeled latency histogram present");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("slow_queries_total").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("batch_width")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn pool_deltas_fold_once_across_scrapes() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(1, 0);
        let stats1 = PoolStats {
            spawn_events: 1,
            regions: 10,
            steals: 4,
            parks: 2,
        };
        let snap = metrics.snapshot(&observation(&gate), stats1);
        let regions = |s: &MetricsSnapshot| {
            s.metrics
                .iter()
                .find(|(name, ..)| name == "pool_regions_total")
                .map(|(.., v)| match v {
                    MetricValue::Counter(c) => *c,
                    _ => panic!("counter"),
                })
                .unwrap()
        };
        assert_eq!(regions(&snap), 10);
        // Same stats again: no double-add.
        let snap = metrics.snapshot(&observation(&gate), stats1);
        assert_eq!(regions(&snap), 10);
        // Progress folds in as a delta.
        let stats2 = PoolStats {
            spawn_events: 1,
            regions: 25,
            steals: 9,
            parks: 2,
        };
        let snap = metrics.snapshot(&observation(&gate), stats2);
        assert_eq!(regions(&snap), 25);
    }

    #[test]
    fn cold_start_series_reach_both_renderings() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(1, 0);
        metrics.set_time_to_ready(0.125);
        metrics.note_snapshot_load("kron", true);
        metrics.note_snapshot_load("road", false);

        let snap = metrics.snapshot(&observation(&gate), PoolStats::default());
        let json = snap.to_json();
        assert_eq!(
            json.get("time_to_ready_seconds").and_then(Json::as_f64),
            Some(0.125)
        );
        assert_eq!(
            json.get("snapshot_hit{graph=\"kron\"}")
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("snapshot_miss{graph=\"kron\"}")
                .and_then(Json::as_u64),
            Some(0),
            "the zero side of the pair is still exposed"
        );
        assert_eq!(
            json.get("snapshot_hit{graph=\"road\"}")
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            json.get("snapshot_miss{graph=\"road\"}")
                .and_then(Json::as_u64),
            Some(1)
        );

        let text = snap.to_prometheus(PROM_PREFIX);
        assert!(text.contains("# TYPE gapbs_serve_time_to_ready_seconds gauge"));
        assert!(text.contains("gapbs_serve_time_to_ready_seconds 0.125"));
        assert!(text.contains("gapbs_serve_snapshot_hit{graph=\"kron\"} 1"));
        assert!(text.contains("gapbs_serve_snapshot_miss{graph=\"road\"} 1"));
    }

    #[test]
    fn prometheus_exposition_carries_both_sources() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(1, 0);
        drop(gate.admit(None).unwrap());
        metrics.observe_query("pr", "road", "SuiteSparse", 900, 5);
        let text = metrics
            .snapshot(&observation(&gate), PoolStats::default())
            .to_prometheus(PROM_PREFIX);
        assert!(text.contains("# TYPE gapbs_serve_queries_admitted_total counter"));
        assert!(text.contains("gapbs_serve_queries_admitted_total 1"));
        assert!(text.contains("# TYPE gapbs_serve_latency_us histogram"));
        assert!(text.contains("gapbs_serve_latency_us_count 1"));
        assert!(text.contains("kernel=\"pr\""));
        assert!(text.contains("gapbs_serve_query_latency_us_count"));
    }
}
