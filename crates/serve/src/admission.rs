//! Admission control for the serve daemon.
//!
//! The persistent pool serializes parallel regions on a leader lock, so
//! unbounded concurrent queries would not crash — they would queue
//! invisibly inside the pool and blow through every deadline at once.
//! The [`AdmissionGate`] makes that queue explicit and bounded: at most
//! `max_active` queries execute concurrently, at most `max_waiting` more
//! may block waiting for a slot, and everything beyond that is rejected
//! immediately with a `rejected` error the client can retry against.
//!
//! Waits are deadline-aware: a query whose deadline expires while still
//! queued is failed with `deadline_exceeded` without ever touching the
//! pool. Shutdown flips the gate into draining mode — new admissions
//! fail fast while in-flight permits finish normally — and [`drain`]
//! blocks until the last permit is returned.
//!
//! # Coherent observation
//!
//! The gate is also the daemon's source of lifecycle truth for the live
//! metrics plane, and a scrape must never observe impossible states
//! (`completed > admitted`, or a latency histogram whose count disagrees
//! with `completed`). Every transition that participates in those
//! invariants — admit, release, batch member accounting — mutates the
//! stats *inside the state-mutex critical section*, and [`observe`]
//! reads everything under that same lock. Within one
//! [`GateObservation`] the equalities are exact:
//!
//! * `admitted == completed + active`
//! * `latency.count == completed`
//!
//! (`rejected` / `deadline_exceeded` stay plain monotone atomics — they
//! participate in no cross-field equality.)
//!
//! [`drain`]: AdmissionGate::drain
//! [`observe`]: AdmissionGate::observe

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use gapbs_telemetry::metrics::{Histogram, HistogramSnapshot};

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Active and waiting capacity were both full.
    Rejected,
    /// The deadline expired while the query was queued for a slot.
    DeadlineExceeded,
    /// The gate is draining for shutdown.
    Draining,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
    draining: bool,
    /// `(token, enqueued-at)` per parked waiter, for the queue-age gauge.
    /// Bounded by `max_waiting`; removal is a linear scan by token.
    waiting_since: Vec<(u64, Instant)>,
    next_wait_token: u64,
}

/// Cumulative gate statistics, monotone over the daemon lifetime.
///
/// These are always-on, independent of the `telemetry` feature: the
/// serve ledger and the `stats` command report them in every build. The
/// cells are atomics only so [`GateSnapshot`]-free readers stay legal;
/// the invariant-bearing ones are written exclusively under the gate's
/// state mutex (see the module docs).
#[derive(Debug, Default)]
struct GateStats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    batch_queries: AtomicU64,
    batch_width: AtomicU64,
}

/// Point-in-time copy of the gate's cumulative statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSnapshot {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub deadline_exceeded: u64,
    /// Logical queries answered out of a multi-source batch (cumulative).
    pub batch_queries: u64,
    /// Widest batch executed so far (monotone max).
    pub batch_width: u64,
}

/// One coherent reading of the whole gate, taken under the state lock:
/// cumulative stats, instantaneous queue gauges, and the end-to-end
/// latency histogram, all from the same instant.
#[derive(Debug, Clone)]
pub struct GateObservation {
    /// Cumulative lifecycle stats.
    pub stats: GateSnapshot,
    /// Permits currently held.
    pub active: usize,
    /// Queries parked waiting for a slot.
    pub waiting: usize,
    /// Age of the oldest parked waiter, in microseconds (0 when none).
    pub queue_age_us: u64,
    /// End-to-end latency distribution (µs) of every completed query;
    /// `latency.count == stats.completed` exactly.
    pub latency: HistogramSnapshot,
}

/// Bounded concurrency gate; see the module docs.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cond: Condvar,
    max_active: usize,
    max_waiting: usize,
    stats: GateStats,
    /// End-to-end latency histogram (µs), recorded at permit release in
    /// the same critical section that counts the query completed.
    latency_us: Histogram,
}

/// RAII token for an admitted query; releasing it frees the slot, counts
/// the query as completed, and records its latency histogram entry.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
    admitted_at: Instant,
    /// End-to-end latency set by the engine before release; `u64::MAX`
    /// means unset and release falls back to the permit's own hold time.
    latency_us: AtomicU64,
}

impl AdmissionGate {
    /// Gate allowing `max_active` concurrent holders and `max_waiting`
    /// queued waiters. Both floors are clamped to at least 1 active.
    pub fn new(max_active: usize, max_waiting: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
            stats: GateStats::default(),
            latency_us: Histogram::new(),
        }
    }

    fn permit(&self) -> Permit<'_> {
        Permit {
            gate: self,
            admitted_at: Instant::now(),
            latency_us: AtomicU64::new(u64::MAX),
        }
    }

    /// Acquires an execution slot, blocking until one frees up or
    /// `deadline` passes. `None` waits without a deadline.
    pub fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmitError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.draining {
            return Err(self.fail(AdmitError::Draining));
        }
        if state.active < self.max_active {
            state.active += 1;
            self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            record_global(gapbs_telemetry::Counter::QueriesAdmitted);
            return Ok(self.permit());
        }
        if state.waiting >= self.max_waiting {
            return Err(self.fail(AdmitError::Rejected));
        }
        state.waiting += 1;
        let token = state.next_wait_token;
        state.next_wait_token += 1;
        state.waiting_since.push((token, Instant::now()));
        let outcome = loop {
            if state.draining {
                break Err(AdmitError::Draining);
            }
            if state.active < self.max_active {
                // Claim the slot and count the admission while still
                // inside the critical section, so no observation can see
                // `active` grow before `admitted` does.
                state.active += 1;
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                break Ok(());
            }
            match deadline {
                None => {
                    state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some(when) => {
                    let now = Instant::now();
                    if now >= when {
                        break Err(AdmitError::DeadlineExceeded);
                    }
                    let (guard, _timeout) = self
                        .cond
                        .wait_timeout(state, when - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                }
            }
        };
        state.waiting -= 1;
        if let Some(pos) = state.waiting_since.iter().position(|&(t, _)| t == token) {
            state.waiting_since.swap_remove(pos);
        }
        drop(state);
        match outcome {
            Ok(()) => {
                record_global(gapbs_telemetry::Counter::QueriesAdmitted);
                Ok(self.permit())
            }
            Err(err) => Err(self.fail(err)),
        }
    }

    /// Flips the gate into draining mode and blocks until every
    /// outstanding permit has been released. Waiters are woken and fail
    /// with [`AdmitError::Draining`].
    pub fn drain(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.draining = true;
        self.cond.notify_all();
        while state.active > 0 {
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// `true` once [`drain`](Self::drain) has begun (readiness probes).
    pub fn draining(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .draining
    }

    /// Number of permits currently held.
    pub fn active(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).active
    }

    /// Copies the cumulative lifecycle stats. Unsynchronized with
    /// in-flight transitions — use [`observe`](Self::observe) when the
    /// cross-field invariants matter (scrapes, lint).
    pub fn snapshot(&self) -> GateSnapshot {
        GateSnapshot {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::Relaxed),
            batch_queries: self.stats.batch_queries.load(Ordering::Relaxed),
            batch_width: self.stats.batch_width.load(Ordering::Relaxed),
        }
    }

    /// One coherent reading of stats, queue gauges, and the latency
    /// histogram, taken under the state lock. The invariant-bearing
    /// writers hold the same lock, so within the returned observation
    /// `admitted == completed + active` and `latency.count == completed`
    /// hold exactly — even mid-load.
    pub fn observe(&self) -> GateObservation {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let queue_age_us = state
            .waiting_since
            .iter()
            .map(|&(_, since)| since.elapsed().as_micros() as u64)
            .max()
            .unwrap_or(0);
        GateObservation {
            stats: GateSnapshot {
                admitted: self.stats.admitted.load(Ordering::Relaxed),
                rejected: self.stats.rejected.load(Ordering::Relaxed),
                completed: self.stats.completed.load(Ordering::Relaxed),
                deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::Relaxed),
                batch_queries: self.stats.batch_queries.load(Ordering::Relaxed),
                batch_width: self.stats.batch_width.load(Ordering::Relaxed),
            },
            active: state.active,
            waiting: state.waiting,
            queue_age_us,
            latency: self.latency_us.snapshot(),
        }
    }

    /// Counts one executed multi-source batch: `members` logical queries
    /// answered by a single MS-BFS sweep. Every member is separately
    /// accounted as admitted (its own permit, or
    /// [`note_batch_members`](Self::note_batch_members) for sources that
    /// share one), so `batch_queries <= admitted` is an invariant.
    pub fn note_batch(&self, members: u64) {
        let _state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.stats
            .batch_queries
            .fetch_add(members, Ordering::Relaxed);
        self.stats.batch_width.fetch_max(members, Ordering::Relaxed);
        gapbs_telemetry::record(gapbs_telemetry::Counter::BatchQueries, members);
    }

    /// Accounts `extra` logical queries that rode one already-admitted
    /// permit (an explicit batch request: one permit, many sources). They
    /// are admitted and completed at the same instant — the batch answers
    /// as a unit — and each contributes one `latency_us` histogram entry
    /// at the batch's end-to-end latency, keeping `latency.count ==
    /// completed` exact.
    pub fn note_batch_members(&self, extra: u64, latency_us: u64) {
        let _state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.stats.admitted.fetch_add(extra, Ordering::Relaxed);
        self.stats.completed.fetch_add(extra, Ordering::Relaxed);
        for _ in 0..extra {
            self.latency_us.record(latency_us);
        }
        gapbs_telemetry::record(gapbs_telemetry::Counter::QueriesAdmitted, extra);
        gapbs_telemetry::record(gapbs_telemetry::Counter::QueriesCompleted, extra);
    }

    /// Counts a query that finished execution past its deadline (admitted
    /// and completed, but answered with a `deadline_exceeded` error).
    pub fn note_deadline_exceeded(&self) {
        self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        record_global(gapbs_telemetry::Counter::DeadlineExceeded);
    }

    fn fail(&self, err: AdmitError) -> AdmitError {
        match err {
            AdmitError::Rejected | AdmitError::Draining => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                record_global(gapbs_telemetry::Counter::QueriesRejected);
            }
            AdmitError::DeadlineExceeded => {
                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                record_global(gapbs_telemetry::Counter::DeadlineExceeded);
            }
        }
        err
    }
}

impl Permit<'_> {
    /// When the slot was granted (queue wait = this minus receive time).
    pub fn admitted_at(&self) -> Instant {
        self.admitted_at
    }

    /// Sets the end-to-end latency (µs) this permit's release will record
    /// into the gate's histogram. Unset permits record their own hold
    /// time, so every release contributes exactly one entry either way.
    pub fn set_latency_us(&self, us: u64) {
        self.latency_us
            .store(us.min(u64::MAX - 1), Ordering::Relaxed);
    }

    fn release(&self) {
        let latency_us = match self.latency_us.load(Ordering::Relaxed) {
            u64::MAX => self.admitted_at.elapsed().as_micros() as u64,
            set => set,
        };
        let gate = self.gate;
        let mut state = gate.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active -= 1;
        gate.stats.completed.fetch_add(1, Ordering::Relaxed);
        // Same critical section as the completed count: an observation
        // can never see the two disagree.
        gate.latency_us.record(latency_us);
        record_global(gapbs_telemetry::Counter::QueriesCompleted);
        // Wake both slot waiters and a drainer waiting for active == 0.
        gate.cond.notify_all();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

fn record_global(counter: gapbs_telemetry::Counter) {
    gapbs_telemetry::record(counter, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(2, 0);
        let a = gate.admit(None).unwrap();
        let b = gate.admit(None).unwrap();
        assert_eq!(gate.admit(None).unwrap_err(), AdmitError::Rejected);
        drop(a);
        let c = gate.admit(None).unwrap();
        drop(b);
        drop(c);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 3);
        assert!(snap.completed <= snap.admitted);
    }

    #[test]
    fn batch_accounting_keeps_members_under_admitted() {
        let gate = AdmissionGate::new(2, 0);
        // Explicit batch: one permit carries 5 sources.
        let permit = gate.admit(None).unwrap();
        gate.note_batch_members(4, 100);
        gate.note_batch(5);
        drop(permit);
        // Coalesced batch: three members, each with its own permit.
        let a = gate.admit(None).unwrap();
        let b = gate.admit(None).unwrap();
        gate.note_batch(2);
        drop(a);
        drop(b);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 7);
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.batch_queries, 7);
        assert_eq!(snap.batch_width, 5, "width is a monotone max");
        assert!(snap.batch_queries <= snap.admitted);
    }

    #[test]
    fn queued_waiter_times_out_at_deadline() {
        let gate = AdmissionGate::new(1, 4);
        let held = gate.admit(None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let err = gate.admit(Some(deadline)).unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExceeded);
        assert_eq!(gate.snapshot().deadline_exceeded, 1);
        drop(held);
    }

    #[test]
    fn waiter_wakes_when_slot_frees() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let held = gate.admit(None).unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(None).map(|permit| drop(permit)).is_ok())
        };
        // Give the waiter time to park, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap());
        assert_eq!(gate.snapshot().admitted, 2);
    }

    #[test]
    fn drain_rejects_new_and_waits_for_active() {
        let gate = AdmissionGate::new(1, 4);
        assert!(!gate.draining());
        std::thread::scope(|scope| {
            let held = gate.admit(None).unwrap();
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                drop(held);
            });
            gate.drain();
            assert!(gate.draining());
            assert_eq!(gate.active(), 0);
            assert_eq!(gate.admit(None).unwrap_err(), AdmitError::Draining);
        });
    }

    #[test]
    fn observation_sees_waiting_queue_and_its_age() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let held = gate.admit(None).unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || drop(gate.admit(None).unwrap()))
        };
        // Let the waiter park, then observe it.
        let mut obs = gate.observe();
        for _ in 0..200 {
            if obs.waiting == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
            obs = gate.observe();
        }
        assert_eq!(obs.waiting, 1);
        assert_eq!(obs.active, 1);
        assert!(obs.queue_age_us > 0, "parked waiter has nonzero age");
        drop(held);
        waiter.join().unwrap();
        let obs = gate.observe();
        assert_eq!(obs.waiting, 0);
        assert_eq!(obs.queue_age_us, 0);
    }

    #[test]
    fn observation_invariants_hold_exactly_under_churn() {
        // Hammer the gate from N threads while an observer thread
        // continuously asserts the coherent-snapshot equalities the
        // metrics plane advertises. With the pre-fix code (stats bumped
        // outside the state lock) this fails within a few iterations.
        let gate = Arc::new(AdmissionGate::new(3, 64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..6 {
                let gate = Arc::clone(&gate);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let Ok(permit) = gate.admit(None) {
                            permit.set_latency_us(100 + t * 10 + i % 7);
                            drop(permit);
                        }
                        i += 1;
                    }
                });
            }
            let observer = {
                let gate = Arc::clone(&gate);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut observations = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let obs = gate.observe();
                        assert_eq!(
                            obs.stats.admitted,
                            obs.stats.completed + obs.active as u64,
                            "admitted == completed + active must hold in every observation"
                        );
                        assert_eq!(
                            obs.latency.count, obs.stats.completed,
                            "latency histogram count must equal completed"
                        );
                        observations += 1;
                    }
                    observations
                })
            };
            std::thread::sleep(Duration::from_millis(150));
            stop.store(true, Ordering::Relaxed);
            let observations = observer.join().unwrap();
            assert!(observations > 10, "observer barely ran");
        });
        let final_obs = gate.observe();
        assert_eq!(final_obs.active, 0);
        assert_eq!(final_obs.stats.admitted, final_obs.stats.completed);
        assert!(final_obs.latency.quantile(0.5).unwrap() >= 64);
    }

    #[test]
    fn release_records_explicit_latency() {
        let gate = AdmissionGate::new(1, 0);
        let permit = gate.admit(None).unwrap();
        permit.set_latency_us(5000);
        drop(permit);
        let obs = gate.observe();
        assert_eq!(obs.latency.count, 1);
        // 5000 µs lands in bucket [4096, 8192).
        assert_eq!(obs.latency.quantile(1.0), Some(4096));
    }
}
