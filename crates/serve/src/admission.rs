//! Admission control for the serve daemon.
//!
//! The persistent pool serializes parallel regions on a leader lock, so
//! unbounded concurrent queries would not crash — they would queue
//! invisibly inside the pool and blow through every deadline at once.
//! The [`AdmissionGate`] makes that queue explicit and bounded: at most
//! `max_active` queries execute concurrently, at most `max_waiting` more
//! may block waiting for a slot, and everything beyond that is rejected
//! immediately with a `rejected` error the client can retry against.
//!
//! Waits are deadline-aware: a query whose deadline expires while still
//! queued is failed with `deadline_exceeded` without ever touching the
//! pool. Shutdown flips the gate into draining mode — new admissions
//! fail fast while in-flight permits finish normally — and [`drain`]
//! blocks until the last permit is returned.
//!
//! [`drain`]: AdmissionGate::drain

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Active and waiting capacity were both full.
    Rejected,
    /// The deadline expired while the query was queued for a slot.
    DeadlineExceeded,
    /// The gate is draining for shutdown.
    Draining,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
    draining: bool,
}

/// Cumulative gate statistics, monotone over the daemon lifetime.
///
/// These are always-on atomics, independent of the `telemetry` feature:
/// the serve ledger and the `stats` command report them in every build.
#[derive(Debug, Default)]
pub struct GateStats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    batch_queries: AtomicU64,
    batch_width: AtomicU64,
}

/// Point-in-time copy of [`GateStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSnapshot {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub deadline_exceeded: u64,
    /// Logical queries answered out of a multi-source batch (cumulative).
    pub batch_queries: u64,
    /// Widest batch executed so far (monotone max).
    pub batch_width: u64,
}

/// Bounded concurrency gate; see the module docs.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cond: Condvar,
    max_active: usize,
    max_waiting: usize,
    stats: GateStats,
}

/// RAII token for an admitted query; releasing it frees the slot and
/// counts the query as completed.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl AdmissionGate {
    /// Gate allowing `max_active` concurrent holders and `max_waiting`
    /// queued waiters. Both floors are clamped to at least 1 active.
    pub fn new(max_active: usize, max_waiting: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
            stats: GateStats::default(),
        }
    }

    /// Acquires an execution slot, blocking until one frees up or
    /// `deadline` passes. `None` waits without a deadline.
    pub fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmitError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.draining {
            return Err(self.fail(AdmitError::Draining));
        }
        if state.active < self.max_active {
            state.active += 1;
            self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            record_global(gapbs_telemetry::Counter::QueriesAdmitted);
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.max_waiting {
            return Err(self.fail(AdmitError::Rejected));
        }
        state.waiting += 1;
        let outcome = loop {
            if state.draining {
                break Err(AdmitError::Draining);
            }
            if state.active < self.max_active {
                state.active += 1;
                break Ok(());
            }
            match deadline {
                None => {
                    state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some(when) => {
                    let now = Instant::now();
                    if now >= when {
                        break Err(AdmitError::DeadlineExceeded);
                    }
                    let (guard, _timeout) = self
                        .cond
                        .wait_timeout(state, when - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                }
            }
        };
        state.waiting -= 1;
        drop(state);
        match outcome {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                record_global(gapbs_telemetry::Counter::QueriesAdmitted);
                Ok(Permit { gate: self })
            }
            Err(err) => Err(self.fail(err)),
        }
    }

    /// Flips the gate into draining mode and blocks until every
    /// outstanding permit has been released. Waiters are woken and fail
    /// with [`AdmitError::Draining`].
    pub fn drain(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.draining = true;
        self.cond.notify_all();
        while state.active > 0 {
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of permits currently held.
    pub fn active(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).active
    }

    /// Copies the cumulative lifecycle stats.
    pub fn snapshot(&self) -> GateSnapshot {
        GateSnapshot {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::Relaxed),
            batch_queries: self.stats.batch_queries.load(Ordering::Relaxed),
            batch_width: self.stats.batch_width.load(Ordering::Relaxed),
        }
    }

    /// Counts one executed multi-source batch: `members` logical queries
    /// answered by a single MS-BFS sweep. Every member is separately
    /// accounted as admitted (its own permit, or
    /// [`note_batch_members`](Self::note_batch_members) for sources that
    /// share one), so `batch_queries <= admitted` is an invariant.
    pub fn note_batch(&self, members: u64) {
        self.stats.batch_queries.fetch_add(members, Ordering::Relaxed);
        self.stats.batch_width.fetch_max(members, Ordering::Relaxed);
        gapbs_telemetry::record(gapbs_telemetry::Counter::BatchQueries, members);
    }

    /// Accounts `extra` logical queries that rode one already-admitted
    /// permit (an explicit batch request: one permit, many sources). They
    /// are admitted and completed at the same instant — the batch answers
    /// as a unit.
    pub fn note_batch_members(&self, extra: u64) {
        self.stats.admitted.fetch_add(extra, Ordering::Relaxed);
        self.stats.completed.fetch_add(extra, Ordering::Relaxed);
        gapbs_telemetry::record(gapbs_telemetry::Counter::QueriesAdmitted, extra);
        gapbs_telemetry::record(gapbs_telemetry::Counter::QueriesCompleted, extra);
    }

    /// Counts a query that finished execution past its deadline (admitted
    /// and completed, but answered with a `deadline_exceeded` error).
    pub fn note_deadline_exceeded(&self) {
        self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        record_global(gapbs_telemetry::Counter::DeadlineExceeded);
    }

    fn fail(&self, err: AdmitError) -> AdmitError {
        match err {
            AdmitError::Rejected | AdmitError::Draining => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                record_global(gapbs_telemetry::Counter::QueriesRejected);
            }
            AdmitError::DeadlineExceeded => {
                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                record_global(gapbs_telemetry::Counter::DeadlineExceeded);
            }
        }
        err
    }
}

impl Permit<'_> {
    fn release(&self) {
        let gate = self.gate;
        let mut state = gate.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active -= 1;
        gate.stats.completed.fetch_add(1, Ordering::Relaxed);
        record_global(gapbs_telemetry::Counter::QueriesCompleted);
        // Wake both slot waiters and a drainer waiting for active == 0.
        gate.cond.notify_all();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

fn record_global(counter: gapbs_telemetry::Counter) {
    gapbs_telemetry::record(counter, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(2, 0);
        let a = gate.admit(None).unwrap();
        let b = gate.admit(None).unwrap();
        assert_eq!(gate.admit(None).unwrap_err(), AdmitError::Rejected);
        drop(a);
        let c = gate.admit(None).unwrap();
        drop(b);
        drop(c);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 3);
        assert!(snap.completed <= snap.admitted);
    }

    #[test]
    fn batch_accounting_keeps_members_under_admitted() {
        let gate = AdmissionGate::new(2, 0);
        // Explicit batch: one permit carries 5 sources.
        let permit = gate.admit(None).unwrap();
        gate.note_batch_members(4);
        gate.note_batch(5);
        drop(permit);
        // Coalesced batch: three members, each with its own permit.
        let a = gate.admit(None).unwrap();
        let b = gate.admit(None).unwrap();
        gate.note_batch(2);
        drop(a);
        drop(b);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 7);
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.batch_queries, 7);
        assert_eq!(snap.batch_width, 5, "width is a monotone max");
        assert!(snap.batch_queries <= snap.admitted);
    }

    #[test]
    fn queued_waiter_times_out_at_deadline() {
        let gate = AdmissionGate::new(1, 4);
        let held = gate.admit(None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let err = gate.admit(Some(deadline)).unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExceeded);
        assert_eq!(gate.snapshot().deadline_exceeded, 1);
        drop(held);
    }

    #[test]
    fn waiter_wakes_when_slot_frees() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let held = gate.admit(None).unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(None).map(|permit| drop(permit)).is_ok())
        };
        // Give the waiter time to park, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap());
        assert_eq!(gate.snapshot().admitted, 2);
    }

    #[test]
    fn drain_rejects_new_and_waits_for_active() {
        let gate = AdmissionGate::new(1, 4);
        std::thread::scope(|scope| {
            let held = gate.admit(None).unwrap();
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                drop(held);
            });
            gate.drain();
            assert_eq!(gate.active(), 0);
            assert_eq!(gate.admit(None).unwrap_err(), AdmitError::Draining);
        });
    }
}
