//! `serve_bench`: the closed-loop load generator.
//!
//! N client threads each hold one connection and issue a deterministic
//! (seeded) mixed workload — kernels × resident graphs × frameworks —
//! measuring per-request latency at the client. The summary reports
//! p50/p99 latency and aggregate QPS, and `--min-qps` turns the run into
//! a CI gate.
//!
//! `--check` makes every response's `fingerprint` field load-bearing:
//! the generator builds the same corpus locally (same `--scale` the
//! daemon was started with) and compares each response fingerprint
//! against [`run_query_local`] — the daemon's own execution path — so a
//! mismatch means the server returned a result that is not bit-identical
//! to a batch-mode run. The check workload sticks to deterministic
//! cells: SuiteSparse for all six kernels (its engine is bit-identical
//! at every thread count), the GAP reference for the integer-valued
//! kernels (canonical forms are schedule-invariant).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

use gapbs_core::{Kernel, Mode};
use gapbs_graph::gen::{GraphSpec, Scale};
use gapbs_parallel::ThreadPool;
use gapbs_telemetry::json::Json;
use gapbs_telemetry::metrics::{bucket_of, HistogramSnapshot, BUCKETS};

use crate::engine::run_query_local;
use crate::protocol::{parse_graph, Query, DEFAULT_TOP_K};
use crate::registry::GraphRegistry;
use crate::server::parse_scale;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Fail the run if aggregate QPS lands below this.
    pub min_qps: Option<f64>,
    /// Deadline attached to every query.
    pub deadline_ms: Option<u64>,
    /// Verify every response fingerprint against a local run.
    pub check: bool,
    /// Corpus scale for `--check`'s local registry (must match the daemon).
    pub scale: Scale,
    /// Local pool threads for `--check` recomputation.
    pub threads: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Send `{"cmd":"shutdown"}` after the workload and require success.
    pub shutdown: bool,
    /// Cross-check client-side sorted-vector p50/p99 against the
    /// daemon's own log₂ histogram quantiles (within one bucket).
    pub check_quantiles: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:7447".to_string(),
            clients: 8,
            requests: 25,
            min_qps: None,
            deadline_ms: None,
            check: false,
            scale: Scale::Small,
            threads: gapbs_parallel::pool::default_threads(),
            seed: 0x5eed,
            shutdown: false,
            check_quantiles: false,
        }
    }
}

/// Aggregate results of one load-generator run.
#[derive(Debug, Clone, Default)]
pub struct BenchSummary {
    /// Requests issued.
    pub requests: usize,
    /// `ok:true` responses.
    pub ok: usize,
    /// Admission rejections.
    pub rejected: usize,
    /// Deadline-exceeded responses.
    pub deadline_exceeded: usize,
    /// Any other error response (always a failure).
    pub errors: usize,
    /// Responses whose fingerprint contradicted the local run.
    pub check_failures: usize,
    /// Quantiles where daemon histogram and client sorted-vector
    /// diverged by more than one log₂ bucket (`--check-quantiles`).
    pub quantile_failures: usize,
    /// Successful queries per wall-clock second.
    pub qps: f64,
    /// Median latency of successful queries, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency of successful queries, milliseconds.
    pub p99_ms: f64,
}

impl BenchSummary {
    /// Whether the run is gate-clean (optionally against a QPS floor).
    pub fn passed(&self, min_qps: Option<f64>) -> bool {
        self.errors == 0
            && self.check_failures == 0
            && self.quantile_failures == 0
            && self.ok > 0
            && min_qps.is_none_or(|floor| self.qps >= floor)
    }

    fn to_json(&self, min_qps: Option<f64>) -> Json {
        Json::obj([
            ("ok".to_string(), Json::Bool(self.passed(min_qps))),
            ("requests".to_string(), Json::Num(self.requests as f64)),
            ("ok_count".to_string(), Json::Num(self.ok as f64)),
            ("rejected".to_string(), Json::Num(self.rejected as f64)),
            (
                "deadline_exceeded".to_string(),
                Json::Num(self.deadline_exceeded as f64),
            ),
            ("errors".to_string(), Json::Num(self.errors as f64)),
            (
                "check_failures".to_string(),
                Json::Num(self.check_failures as f64),
            ),
            (
                "quantile_failures".to_string(),
                Json::Num(self.quantile_failures as f64),
            ),
            ("qps".to_string(), Json::Num(self.qps)),
            ("p50_ms".to_string(), Json::Num(self.p50_ms)),
            ("p99_ms".to_string(), Json::Num(self.p99_ms)),
        ])
    }
}

/// One workload slot: a query template the RNG fills a source into.
#[derive(Debug, Clone, Copy)]
struct Cell {
    kernel: Kernel,
    framework: &'static str,
}

/// Deterministic cells only — see the module docs.
const CHECK_CELLS: [Cell; 10] = [
    Cell {
        kernel: Kernel::Bfs,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Sssp,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Pr,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Cc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Bc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Tc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Bfs,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Sssp,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Cc,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Tc,
        framework: "GAP",
    },
];

/// The unchecked mix adds the reference float kernels (their values are
/// race-dependent, so only `--check` excludes them).
const MIXED_CELLS: [Cell; 12] = [
    Cell {
        kernel: Kernel::Bfs,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Sssp,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Pr,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Cc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Bc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Tc,
        framework: "SuiteSparse",
    },
    Cell {
        kernel: Kernel::Bfs,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Sssp,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Pr,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Cc,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Bc,
        framework: "GAP",
    },
    Cell {
        kernel: Kernel::Tc,
        framework: "GAP",
    },
];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One `{"cmd":"stats"}` round trip, parsed.
fn fetch_stats(addr: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"cmd\":\"stats\"}\n")
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    Json::parse(line.trim()).map_err(|e| format!("stats response: {e}"))
}

/// The daemon's resident graphs (name + vertex count) from a stats snapshot.
fn resident_graphs(stats: &Json) -> Result<Vec<(GraphSpec, u64)>, String> {
    let Some(Json::Arr(graphs)) = stats.get("graphs") else {
        return Err("stats response missing graphs".to_string());
    };
    graphs
        .iter()
        .map(|g| {
            let name = g
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "graph entry missing name".to_string())?;
            let vertices = g
                .get("vertices")
                .and_then(Json::as_u64)
                .ok_or_else(|| "graph entry missing vertices".to_string())?;
            let spec = parse_graph(name).map_err(|e| e.message)?;
            Ok((spec, vertices))
        })
        .collect()
}

/// Maps a stats-JSON `le` (a bucket's exclusive upper bound) back to its
/// bucket index. `le` values at or above 2⁶³ — including the last
/// bucket's `u64::MAX`, which round-trips lossily through f64 — collapse
/// into the open-ended final bucket.
fn le_bucket_index(le: &Json) -> usize {
    match le.as_u64() {
        Some(1) => 0,
        Some(v) if v.is_power_of_two() => (v.trailing_zeros() as usize).min(BUCKETS - 1),
        _ => BUCKETS - 1,
    }
}

/// Reconstructs the daemon's gate-latency histogram from the sparse
/// cumulative bucket table under `metrics.latency_us` in a stats
/// snapshot. The rebuilt snapshot carries a zero `sum` (the table does
/// not encode it); only bucket counts and quantiles are meaningful.
fn parse_latency_histogram(stats: &Json) -> Result<HistogramSnapshot, String> {
    let hist = stats
        .get("metrics")
        .and_then(|m| m.get("latency_us"))
        .ok_or_else(|| "stats response missing metrics.latency_us".to_string())?;
    let Some(Json::Arr(entries)) = hist.get("buckets") else {
        return Err("metrics.latency_us missing buckets table".to_string());
    };
    let mut snap = HistogramSnapshot::default();
    let mut prev = 0u64;
    for entry in entries {
        let cumulative = entry
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| "bucket entry missing count".to_string())?;
        let le = entry
            .get("le")
            .ok_or_else(|| "bucket entry missing le".to_string())?;
        let idx = le_bucket_index(le);
        snap.buckets[idx] = snap.buckets[idx].wrapping_add(cumulative.saturating_sub(prev));
        prev = cumulative;
    }
    snap.count = snap.buckets.iter().sum();
    Ok(snap)
}

/// Per-bucket `after - before`, for isolating one run's worth of
/// recordings out of the daemon's cumulative histogram.
fn bucket_delta(after: &HistogramSnapshot, before: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for i in 0..BUCKETS {
        out.buckets[i] = after.buckets[i].saturating_sub(before.buckets[i]);
    }
    out.count = out.buckets.iter().sum();
    out
}

/// Whether a client-side latency and the daemon histogram's quantile
/// lower bound land within one log₂ bucket of each other. One bucket of
/// slack absorbs the genuine skew between the two measurements: the
/// client adds loopback RTT on top of the daemon's `received → responded`
/// window, and a true value sitting near a power-of-two boundary can
/// land the two readings in adjacent buckets.
fn quantiles_agree(client_ms: f64, daemon_lower_us: u64) -> bool {
    let client_bucket = bucket_of((client_ms * 1e3).round().max(0.0) as u64) as i64;
    let daemon_bucket = bucket_of(daemon_lower_us) as i64;
    (client_bucket - daemon_bucket).abs() <= 1
}

fn request_line(
    cell: Cell,
    graph: GraphSpec,
    source: u64,
    deadline_ms: Option<u64>,
    id: u64,
) -> String {
    let mut fields = vec![
        ("id".to_string(), Json::Num(id as f64)),
        (
            "kernel".to_string(),
            Json::Str(cell.kernel.name().to_lowercase()),
        ),
        ("graph".to_string(), Json::Str(graph.name().to_lowercase())),
        (
            "framework".to_string(),
            Json::Str(cell.framework.to_string()),
        ),
    ];
    if cell.kernel.takes_source() {
        fields.push(("source".to_string(), Json::Num(source as f64)));
    }
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".to_string(), Json::Num(ms as f64)));
    }
    Json::obj(fields).encode()
}

/// Lazily-computed expected fingerprints for `--check`, shared across
/// client threads. PR/CC/TC are source-independent so the cache
/// collapses most of the workload onto a handful of local runs.
struct Checker {
    registry: GraphRegistry,
    pool: ThreadPool,
    cache: Mutex<HashMap<String, u64>>,
}

impl Checker {
    fn expected(&self, cell: Cell, graph: GraphSpec, source: u64) -> u64 {
        let source_key = if cell.kernel.takes_source() {
            source
        } else {
            0
        };
        let key = format!(
            "{}|{}|{}|{}",
            cell.kernel.name(),
            graph.name(),
            cell.framework,
            source_key
        );
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&fp) = cache.get(&key) {
            return fp;
        }
        let query = Query {
            id: None,
            kernel: cell.kernel,
            graph,
            framework: cell.framework.to_string(),
            mode: Mode::Baseline,
            source: cell.kernel.takes_source().then_some(source as u32),
            target: None,
            vertex: None,
            k: DEFAULT_TOP_K,
            deadline_ms: None,
            trace: false,
        };
        let outcome = run_query_local(&self.registry, &query, &self.pool)
            .unwrap_or_else(|e| panic!("local check run failed for {key}: {}", e.message));
        cache.insert(key, outcome.fingerprint);
        outcome.fingerprint
    }
}

struct ClientResult {
    latencies_ms: Vec<f64>,
    rejected: usize,
    deadline_exceeded: usize,
    errors: usize,
    check_failures: usize,
}

fn run_client(
    client: usize,
    config: &BenchConfig,
    graphs: &[(GraphSpec, u64)],
    cells: &[Cell],
    checker: Option<&Checker>,
) -> Result<ClientResult, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect {}: {e}", config.addr))?;
    // Latency is the product under test: without nodelay, Nagle plus
    // delayed ACK adds tens of milliseconds per small request line and
    // the client-side percentiles measure the TCP stack instead.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut rng = config.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = ClientResult {
        latencies_ms: Vec::with_capacity(config.requests),
        rejected: 0,
        deadline_exceeded: 0,
        errors: 0,
        check_failures: 0,
    };
    let mut line = String::new();
    for i in 0..config.requests {
        let cell = cells[(splitmix(&mut rng) % cells.len() as u64) as usize];
        let (graph, vertices) = graphs[(splitmix(&mut rng) % graphs.len() as u64) as usize];
        let source = splitmix(&mut rng) % vertices.max(1);
        let id = (client * config.requests + i) as u64;
        let request = request_line(cell, graph, source, config.deadline_ms, id);
        let start = Instant::now();
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("write: {e}"))?;
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        if line.is_empty() {
            return Err("server closed the connection mid-workload".to_string());
        }
        let v = Json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            out.latencies_ms.push(latency_ms);
            if let Some(checker) = checker {
                let got = v.get("fingerprint").and_then(Json::as_str).unwrap_or("");
                let expected = format!("{:016x}", checker.expected(cell, graph, source));
                if got != expected {
                    out.check_failures += 1;
                    eprintln!(
                        "serve_bench: fingerprint mismatch for {} {} on {}: got {got}, expected {expected}",
                        cell.framework,
                        cell.kernel.name(),
                        graph.name()
                    );
                }
            }
        } else {
            match v.get("code").and_then(Json::as_str) {
                Some("rejected") => out.rejected += 1,
                Some("deadline_exceeded") => out.deadline_exceeded += 1,
                other => {
                    out.errors += 1;
                    eprintln!(
                        "serve_bench: error response (code {:?}): {}",
                        other.unwrap_or("?"),
                        line.trim()
                    );
                }
            }
        }
    }
    Ok(out)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Runs the full load-generation workload against a live daemon.
///
/// # Errors
///
/// Returns `Err` on connection/protocol failures (not on gate failures —
/// those are reported in the summary so the caller can exit nonzero).
pub fn run_bench(config: &BenchConfig) -> Result<BenchSummary, String> {
    let stats_before = fetch_stats(&config.addr)?;
    let graphs = resident_graphs(&stats_before)?;
    if graphs.is_empty() {
        return Err("daemon has no resident graphs".to_string());
    }
    // Baseline for `--check-quantiles`: the daemon histogram is
    // cumulative since startup, so the run's own distribution is the
    // per-bucket delta across the workload.
    let hist_before = if config.check_quantiles {
        if config.deadline_ms.is_some() {
            return Err(
                "--check-quantiles requires a run without --deadline-ms: queries that \
                 blow their deadline complete in the daemon histogram but are excluded \
                 from the client's sorted vector, so the two distributions diverge by \
                 construction"
                    .to_string(),
            );
        }
        Some(parse_latency_histogram(&stats_before)?)
    } else {
        None
    };
    let checker = if config.check {
        let pool = ThreadPool::new(config.threads.max(1));
        let specs: Vec<GraphSpec> = graphs.iter().map(|&(spec, _)| spec).collect();
        eprintln!(
            "serve_bench: building local {:?}-scale corpus for --check",
            config.scale
        );
        Some(Checker {
            registry: GraphRegistry::load(config.scale, &specs, &pool),
            pool,
            cache: Mutex::new(HashMap::new()),
        })
    } else {
        None
    };
    let cells: &[Cell] = if config.check {
        &CHECK_CELLS
    } else {
        &MIXED_CELLS
    };
    let start = Instant::now();
    let results: Vec<Result<ClientResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client| {
                let graphs = &graphs;
                let checker = checker.as_ref();
                scope.spawn(move || run_client(client, config, graphs, cells, checker))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let mut summary = BenchSummary::default();
    let mut latencies = Vec::new();
    for result in results {
        let r = result?;
        summary.rejected += r.rejected;
        summary.deadline_exceeded += r.deadline_exceeded;
        summary.errors += r.errors;
        summary.check_failures += r.check_failures;
        latencies.extend(r.latencies_ms);
    }
    summary.requests = config.clients.max(1) * config.requests;
    summary.ok = latencies.len();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    summary.p50_ms = percentile(&latencies, 0.50);
    summary.p99_ms = percentile(&latencies, 0.99);
    summary.qps = if wall > 0.0 {
        summary.ok as f64 / wall
    } else {
        0.0
    };
    if let Some(before) = hist_before {
        let after = parse_latency_histogram(&fetch_stats(&config.addr)?)?;
        let delta = bucket_delta(&after, &before);
        for (q, client_ms, label) in [(0.50, summary.p50_ms, "p50"), (0.99, summary.p99_ms, "p99")]
        {
            match delta.quantile(q) {
                Some(lower_us) if quantiles_agree(client_ms, lower_us) => {}
                Some(lower_us) => {
                    summary.quantile_failures += 1;
                    eprintln!(
                        "serve_bench: {label} divergence: client sorted-vector {client_ms:.2}ms \
                         vs daemon histogram bucket [{lower_us}us, {}us)",
                        lower_us.saturating_mul(2).max(1)
                    );
                }
                None => {
                    summary.quantile_failures += 1;
                    eprintln!(
                        "serve_bench: {label}: daemon histogram recorded no queries over the run"
                    );
                }
            }
        }
        if summary.quantile_failures == 0 {
            eprintln!(
                "serve_bench: quantile cross-check ok ({} daemon-side recordings)",
                delta.count
            );
        }
    }
    if config.shutdown {
        shutdown_daemon(&config.addr)?;
    }
    Ok(summary)
}

/// Sends `{"cmd":"shutdown"}` and requires an affirmative response.
pub fn shutdown_daemon(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"cmd\":\"shutdown\"}\n")
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let v = Json::parse(line.trim()).map_err(|e| format!("shutdown response: {e}"))?;
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(format!("shutdown refused: {}", line.trim()))
    }
}

/// CLI entry point for the `serve_bench` binary. Returns the exit code.
pub fn bench_main(args: impl Iterator<Item = String>) -> i32 {
    let mut config = BenchConfig::default();
    let mut args = args;
    let usage = "usage: serve_bench --addr HOST:PORT [--clients N] [--requests N] [--min-qps Q] \
                 [--deadline-ms N] [--check] [--check-quantiles] \
                 [--scale tiny|small|medium|large] [--threads N] [--seed N] [--shutdown]";
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parsed: Result<(), String> = match arg.as_str() {
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--clients" => value("--clients")
                .and_then(|v| v.parse().map_err(|_| "bad --clients".to_string()))
                .map(|n| config.clients = n),
            "--requests" => value("--requests")
                .and_then(|v| v.parse().map_err(|_| "bad --requests".to_string()))
                .map(|n| config.requests = n),
            "--min-qps" => value("--min-qps")
                .and_then(|v| v.parse().map_err(|_| "bad --min-qps".to_string()))
                .map(|q| config.min_qps = Some(q)),
            "--deadline-ms" => value("--deadline-ms")
                .and_then(|v| v.parse().map_err(|_| "bad --deadline-ms".to_string()))
                .map(|n| config.deadline_ms = Some(n)),
            "--check" => {
                config.check = true;
                Ok(())
            }
            "--check-quantiles" => {
                config.check_quantiles = true;
                Ok(())
            }
            "--scale" => value("--scale")
                .and_then(|v| parse_scale(&v))
                .map(|s| config.scale = s),
            "--threads" => value("--threads")
                .and_then(|v| gapbs_parallel::pool::parse_threads(&v))
                .map(|n| config.threads = n),
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|_| "bad --seed".to_string()))
                .map(|s| config.seed = s),
            "--shutdown" => {
                config.shutdown = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{usage}");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}\n{usage}")),
        };
        if let Err(e) = parsed {
            eprintln!("serve_bench: {e}");
            return 2;
        }
    }
    match run_bench(&config) {
        Ok(summary) => {
            eprintln!(
                "serve_bench: {}/{} ok ({} rejected, {} past deadline, {} errors, {} check \
                 failures, {} quantile failures), {:.1} qps, p50 {:.2}ms, p99 {:.2}ms",
                summary.ok,
                summary.requests,
                summary.rejected,
                summary.deadline_exceeded,
                summary.errors,
                summary.check_failures,
                summary.quantile_failures,
                summary.qps,
                summary.p50_ms,
                summary.p99_ms
            );
            println!("{}", summary.to_json(config.min_qps).encode());
            if summary.passed(config.min_qps) {
                0
            } else {
                if let Some(floor) = config.min_qps {
                    if summary.qps < floor {
                        eprintln!(
                            "serve_bench: FAIL qps {:.1} below floor {floor:.1}",
                            summary.qps
                        );
                    }
                }
                1
            }
        }
        Err(e) => {
            eprintln!("serve_bench: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<u64> = (0..8).map(|_| splitmix(&mut a)).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| splitmix(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = 43u64;
        let seq_c: Vec<u64> = (0..8).map(|_| splitmix(&mut c)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn request_lines_parse_back() {
        let line = request_line(
            Cell {
                kernel: Kernel::Bfs,
                framework: "GAP",
            },
            GraphSpec::Kron,
            17,
            Some(250),
            3,
        );
        let cmd = crate::protocol::parse_request(&line).unwrap();
        let crate::protocol::Command::Query(q) = cmd else {
            panic!("expected query")
        };
        assert_eq!(q.kernel, Kernel::Bfs);
        assert_eq!(q.graph, GraphSpec::Kron);
        assert_eq!(q.source, Some(17));
        assert_eq!(q.deadline_ms, Some(250));
    }

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.50), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn summary_gate_logic() {
        let mut s = BenchSummary {
            ok: 10,
            qps: 50.0,
            ..BenchSummary::default()
        };
        assert!(s.passed(None));
        assert!(s.passed(Some(20.0)));
        assert!(!s.passed(Some(80.0)));
        s.check_failures = 1;
        assert!(!s.passed(None));
        s.check_failures = 0;
        s.quantile_failures = 1;
        assert!(!s.passed(None));
    }

    #[test]
    fn le_values_round_trip_to_bucket_indices() {
        use gapbs_telemetry::metrics::bucket_hi;
        assert_eq!(le_bucket_index(&Json::Num(1.0)), 0);
        assert_eq!(le_bucket_index(&Json::Num(2.0)), 1);
        assert_eq!(le_bucket_index(&Json::Num(1024.0)), 10);
        // The last bucket's u64::MAX survives the f64 round trip only as
        // the open-ended bucket; so does any unparseable le.
        assert_eq!(le_bucket_index(&Json::Num(u64::MAX as f64)), BUCKETS - 1);
        assert_eq!(le_bucket_index(&Json::Str("+Inf".to_string())), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert_eq!(
                le_bucket_index(&Json::Num(bucket_hi(i) as f64)),
                i.min(BUCKETS - 1),
                "bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_reconstruction_inverts_to_json() {
        use gapbs_telemetry::metrics::Histogram;
        let h = Histogram::new();
        for v in [0, 1, 3, 100, 5000, 5000, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let stats = Json::obj([(
            "metrics".to_string(),
            Json::obj([("latency_us".to_string(), snap.to_json())]),
        )]);
        let rebuilt = parse_latency_histogram(&stats).expect("reconstruct");
        assert_eq!(rebuilt.buckets, snap.buckets);
        assert_eq!(rebuilt.count, snap.count);
    }

    #[test]
    fn bucket_delta_isolates_one_run() {
        use gapbs_telemetry::metrics::Histogram;
        let h = Histogram::new();
        h.record(100);
        h.record(3000);
        let before = h.snapshot();
        h.record(3000);
        h.record(70_000);
        let delta = bucket_delta(&h.snapshot(), &before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets[bucket_of(3000)], 1);
        assert_eq!(delta.buckets[bucket_of(70_000)], 1);
        assert_eq!(delta.buckets[bucket_of(100)], 0);
    }

    #[test]
    fn quantile_agreement_is_one_bucket_wide() {
        // 5 ms client → 5000 us → bucket [4096, 8192).
        assert!(quantiles_agree(5.0, 4096), "same bucket");
        assert!(quantiles_agree(5.0, 2048), "one bucket below");
        assert!(quantiles_agree(5.0, 8192), "one bucket above");
        assert!(!quantiles_agree(5.0, 1024), "two buckets below");
        assert!(!quantiles_agree(5.0, 1 << 20), "far above");
    }
}
